// Abstract syntax tree for the ESL-EV dialect.
//
// The dialect covers everything used by the paper's Examples 1-8:
//   * CREATE STREAM / CREATE TABLE (CREATE keyword optional, as in the
//     paper's listings: `STREAM readings(reader_id, tag_id, read_time);`)
//   * INSERT INTO <stream-or-table> SELECT ...
//   * SELECT ... FROM ... WHERE ... [GROUP BY ...] [HAVING ...]
//   * windows: OVER (RANGE n unit PRECEDING CURRENT) on TABLE(stream ...),
//     OVER [n unit PRECEDING|FOLLOWING|PRECEDING AND FOLLOWING anchor]
//   * (NOT) EXISTS (subquery), LIKE, BETWEEN, arithmetic, comparisons
//   * SEQ / EXCEPTION_SEQ / CLEVEL_SEQ with star arguments, OVER windows
//     and MODE clauses
//   * star aggregates FIRST(S*) / LAST(S*) / COUNT(S*), `.previous.` refs

#ifndef ESLEV_SQL_AST_H_
#define ESLEV_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cep/pairing_mode.h"
#include "common/time.h"
#include "sql/source_span.h"
#include "types/schema.h"
#include "types/value.h"

namespace eslev {

// ---------------------------------------------------------------------------
// Windows
// ---------------------------------------------------------------------------

/// \brief Which side(s) of the anchor tuple the window covers.
enum class WindowDirection : int {
  kPreceding = 0,
  kFollowing,
  kPrecedingAndFollowing,
};

const char* WindowDirectionToString(WindowDirection d);

/// \brief A sliding window specification.
///
/// `anchor` names the stream alias (or SEQ argument position) the window
/// is measured from; empty or "CURRENT" means the current tuple of the
/// enclosing evaluation.
struct WindowSpec {
  bool row_based = false;   // true: ROWS n; false: RANGE of time
  int64_t length = 0;       // rows, or microseconds
  WindowDirection direction = WindowDirection::kPreceding;
  std::string anchor;
  SourceSpan span;          // the bracketed window text

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct SelectStmt;

enum class ExprKind : int {
  kLiteral = 0,
  kColumnRef,
  kFuncCall,
  kStarAgg,
  kUnary,
  kBinary,
  kExists,
  kSeq,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// \brief Base class of all expression nodes.
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  virtual std::string ToString() const = 0;

  const ExprKind kind;
  /// Source range of this expression; invalid (line 0) for synthesized
  /// nodes that have no surface syntax.
  SourceSpan span;
};

/// \brief A constant. Interval literals like `5 SECONDS` become
/// kTimestamp-typed values holding the duration in microseconds.
struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  std::string ToString() const override { return value.ToString(); }

  Value value;
};

/// \brief `col`, `alias.col`, or `alias.previous.col` (the paper's
/// inter-arrival operator on star sequences).
struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string q, std::string c, bool prev = false)
      : Expr(ExprKind::kColumnRef),
        qualifier(std::move(q)),
        column(std::move(c)),
        previous(prev) {}
  std::string ToString() const override {
    std::string out = qualifier;
    if (!out.empty()) out += ".";
    if (previous) out += "previous.";
    out += column;
    return out;
  }

  std::string qualifier;  // empty when unqualified
  std::string column;
  bool previous;          // alias.previous.column
};

/// \brief Scalar or aggregate function call: `count(tid)`,
/// `extract_serial(tid)`, `count(*)` (represented by zero args +
/// `star_arg`).
struct FuncCallExpr : Expr {
  FuncCallExpr(std::string n, std::vector<ExprPtr> a, bool star = false)
      : Expr(ExprKind::kFuncCall),
        name(std::move(n)),
        args(std::move(a)),
        star_arg(star) {}
  std::string ToString() const override;

  std::string name;
  std::vector<ExprPtr> args;
  bool star_arg;  // COUNT(*)
};

/// \brief Star-sequence aggregate functions (paper §3.1.2):
/// FIRST(S*).col, LAST(S*).col, COUNT(S*).
enum class StarAggFn : int { kFirst = 0, kLast, kCount };

const char* StarAggFnToString(StarAggFn f);

struct StarAggExpr : Expr {
  StarAggExpr(StarAggFn f, std::string s, std::string c)
      : Expr(ExprKind::kStarAgg),
        fn(f),
        stream(std::move(s)),
        column(std::move(c)) {}
  std::string ToString() const override {
    std::string out = StarAggFnToString(fn);
    out += "(" + stream + "*)";
    if (!column.empty()) out += "." + column;
    return out;
  }

  StarAggFn fn;
  std::string stream;  // the starred SEQ argument's alias
  std::string column;  // empty for COUNT
};

enum class UnaryOp : int { kNot = 0, kNeg };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  std::string ToString() const override;

  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp : int {
  kAnd = 0,
  kOr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kLike,
  kNotLike,
};

const char* BinaryOpToString(BinaryOp op);

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  std::string ToString() const override;

  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// \brief `[NOT] EXISTS (subquery)`.
struct ExistsExpr : Expr {
  ExistsExpr(bool neg, std::unique_ptr<SelectStmt> sub);
  ~ExistsExpr() override;
  std::string ToString() const override;

  bool negated;
  std::unique_ptr<SelectStmt> subquery;
};

/// \brief Which sequence operator (paper §3.1.1, §3.1.3).
enum class SeqKind : int { kSeq = 0, kExceptionSeq, kClevelSeq };

const char* SeqKindToString(SeqKind k);

/// \brief One argument of a SEQ operator: a stream alias, optionally
/// starred (`R1*`) or negated (`!B` — the event must NOT occur between
/// its neighbours; the negation operator of the paper's core set [17]).
struct SeqArg {
  std::string stream;
  bool star = false;
  bool negated = false;
  SourceSpan span;
};

/// \brief SEQ(...) / EXCEPTION_SEQ(...) / CLEVEL_SEQ(...) with optional
/// OVER window and MODE clause. SEQ and EXCEPTION_SEQ are boolean
/// predicates; CLEVEL_SEQ evaluates to the integer completion level.
struct SeqExpr : Expr {
  SeqExpr() : Expr(ExprKind::kSeq) {}
  std::string ToString() const override;

  SeqKind seq_kind = SeqKind::kSeq;
  std::vector<SeqArg> args;
  std::optional<WindowSpec> window;
  PairingMode mode = PairingMode::kUnrestricted;
  bool mode_explicit = false;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// \brief One item of a SELECT list.
struct SelectItem {
  ExprPtr expr;        // null when is_star
  std::string alias;   // empty unless AS given
  bool is_star = false;

  std::string ToString() const;
};

/// \brief One entry of the FROM clause.
///
/// Plain form: `readings AS r1 [OVER [window]]`.
/// Windowed-table form (Example 1):
/// `TABLE( readings OVER (RANGE 1 SECONDS PRECEDING CURRENT) ) AS r2`.
struct TableRef {
  std::string name;
  std::string alias;   // defaults to name
  std::optional<WindowSpec> window;
  SourceSpan span;

  std::string ToString() const;
};

/// \brief One ORDER BY key.
struct OrderKey {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                 // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;                // may be null
  std::vector<OrderKey> order_by;  // snapshot queries only
  int64_t limit = -1;              // -1 = no limit (snapshot queries only)

  std::string ToString() const;
};

enum class StatementKind : int {
  kCreateStream = 0,
  kCreateTable,
  kCreateAggregate,
  kInsert,
  kSelect,
  kExplain,
};

struct Statement {
  explicit Statement(StatementKind k) : kind(k) {}
  virtual ~Statement() = default;
  virtual std::string ToString() const = 0;

  const StatementKind kind;
  SourceSpan span;  // the full statement text (excluding ';')
};

using StatementPtr = std::unique_ptr<Statement>;

/// \brief CREATE STREAM / CREATE TABLE. Column types default to VARCHAR
/// when omitted, except that a column whose name contains "time" defaults
/// to TIMESTAMP — this matches the paper's untyped listings, e.g.
/// `STREAM readings(reader_id, tag_id, read_time)`.
struct CreateStmt : Statement {
  CreateStmt(bool stream, std::string n, std::vector<Field> f)
      : Statement(stream ? StatementKind::kCreateStream
                         : StatementKind::kCreateTable),
        is_stream(stream),
        name(std::move(n)),
        fields(std::move(f)) {}
  std::string ToString() const override;

  bool is_stream;
  std::string name;
  std::vector<Field> fields;
};

/// \brief A UDA defined in native SQL (ESL's signature extensibility
/// feature, paper §2.1):
///
///   CREATE AGGREGATE name AS
///     INITIALIZE <expr>          -- evaluated on the first input
///     ITERATE    <expr>          -- evaluated on each further input
///     [TERMINATE <expr>]         -- evaluated to produce the result
///     [RETURNS <type>]           -- declared result type (default: the
///                                   argument's type)
///
/// Inside the expressions, `state` is the accumulator, `next` the
/// incoming value, and `n` the number of inputs accumulated so far.
struct CreateAggregateStmt : Statement {
  CreateAggregateStmt(std::string n, ExprPtr init, ExprPtr iter, ExprPtr term,
                      TypeId ret)
      : Statement(StatementKind::kCreateAggregate),
        name(std::move(n)),
        initialize(std::move(init)),
        iterate(std::move(iter)),
        terminate(std::move(term)),
        return_type(ret) {}
  std::string ToString() const override;

  std::string name;
  ExprPtr initialize;
  ExprPtr iterate;
  ExprPtr terminate;  // may be null
  TypeId return_type; // kNull = same as the argument
};

/// \brief INSERT INTO <target> SELECT ... — a continuous transducer when
/// the target is a stream, a stream-to-DB update when it is a table.
struct InsertStmt : Statement {
  InsertStmt(std::string t, std::unique_ptr<SelectStmt> s)
      : Statement(StatementKind::kInsert),
        target(std::move(t)),
        select(std::move(s)) {}
  std::string ToString() const override;

  std::string target;
  std::unique_ptr<SelectStmt> select;
};

/// \brief A bare SELECT — continuous when registered, or a snapshot when
/// executed ad hoc.
struct SelectStatement : Statement {
  explicit SelectStatement(std::unique_ptr<SelectStmt> s)
      : Statement(StatementKind::kSelect), select(std::move(s)) {}
  std::string ToString() const override { return select->ToString(); }

  std::unique_ptr<SelectStmt> select;
};

/// \brief How an EXPLAIN statement inspects its inner query.
enum class ExplainMode : int {
  kPlan = 0,  // describe the would-be pipeline
  kAnalyze,   // annotate the matching registered query's live counters
  kLint,      // run the static analyzer; output is JSON (DESIGN.md §11)
  kCost,      // static cost & state-bound report as JSON (DESIGN.md §16)
};

/// \brief EXPLAIN [ANALYZE | LINT] <SELECT | INSERT ... SELECT>. Plain
/// EXPLAIN describes the would-be pipeline without registering it;
/// EXPLAIN ANALYZE additionally locates an already-registered query with
/// the same plan and annotates each step with its live counters
/// (DESIGN.md §9); EXPLAIN LINT reports static-analysis diagnostics as
/// JSON (DESIGN.md §11).
struct ExplainStmt : Statement {
  ExplainStmt(ExplainMode m, StatementPtr i)
      : Statement(StatementKind::kExplain), mode(m), inner(std::move(i)) {}
  std::string ToString() const override {
    std::string out = "EXPLAIN ";
    if (mode == ExplainMode::kAnalyze) out += "ANALYZE ";
    if (mode == ExplainMode::kLint) out += "LINT ";
    if (mode == ExplainMode::kCost) out += "COST ";
    return out + inner->ToString();
  }

  ExplainMode mode;
  StatementPtr inner;  // kSelect or kInsert
};

}  // namespace eslev

#endif  // ESLEV_SQL_AST_H_
