#include "sql/canonical.h"

#include <cstdio>

#include "common/time.h"
#include "sql/parser.h"

namespace eslev {

namespace {

Result<std::string> CanonicalExpr(const Expr& expr);
Result<std::string> CanonicalSelect(const SelectStmt& select);

// The AST's own ToString prints durations in the `30s` shorthand the
// parser does not accept; the canonical printer re-derives a parseable
// `RANGE <n> <UNIT>` spelling instead.
std::string CanonicalWindow(const WindowSpec& w) {
  std::string out = "[";
  if (w.row_based) {
    out += "ROWS " + std::to_string(w.length);
  } else {
    struct Unit {
      Duration micros;
      const char* name;
    };
    static constexpr Unit kUnits[] = {
        {kDay, "DAYS"},         {kHour, "HOURS"},
        {kMinute, "MINUTES"},   {kSecond, "SECONDS"},
        {kMillisecond, "MILLISECONDS"}, {1, "MICROSECONDS"},
    };
    Duration n = w.length;
    const char* unit = "SECONDS";
    for (const Unit& u : kUnits) {
      if (n % u.micros == 0) {
        n /= u.micros;
        unit = u.name;
        break;
      }
    }
    if (w.length == 0) {
      n = 0;
      unit = "SECONDS";
    }
    out += "RANGE " + std::to_string(n) + " " + unit;
  }
  out += " ";
  out += WindowDirectionToString(w.direction);
  if (!w.anchor.empty()) out += " " + w.anchor;
  out += "]";
  return out;
}

Result<std::string> CanonicalLiteral(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return std::string("NULL");
    case TypeId::kBool:
      return std::string(v.bool_value() ? "TRUE" : "FALSE");
    case TypeId::kInt64: {
      const int64_t n = v.int_value();
      if (n < 0) {
        // The grammar has no negative literals (unary minus is an
        // operator node); keep the value while staying parseable.
        return "(0 - " + std::to_string(-n) + ")";
      }
      return std::to_string(n);
    }
    case TypeId::kDouble: {
      const double d = v.double_value();
      if (!(d == d) || d > 1.7e308 || d < -1.7e308) {
        return Status::Invalid(
            "non-finite double literal has no SQL spelling");
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d < 0 ? -d : d);
      std::string s = buf;
      if (s.find_first_of(".eE") == std::string::npos) s += ".0";
      if (d < 0) return "(0 - " + s + ")";
      return s;
    }
    case TypeId::kString: {
      std::string out = "'";
      for (char c : v.string_value()) {
        if (c == '\'') out += '\'';
        out += c;
      }
      out += "'";
      return out;
    }
    case TypeId::kTimestamp:
      return Status::Invalid("timestamp literal has no SQL spelling");
  }
  return Status::Invalid("unknown literal type");
}

Result<std::string> CanonicalExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return CanonicalLiteral(static_cast<const LiteralExpr&>(expr).value);
    case ExprKind::kColumnRef:
      return expr.ToString();
    case ExprKind::kFuncCall: {
      const auto& call = static_cast<const FuncCallExpr&>(expr);
      std::string out = call.name + "(";
      if (call.star_arg) {
        out += "*";
      } else {
        for (size_t i = 0; i < call.args.size(); ++i) {
          if (i > 0) out += ", ";
          ESLEV_ASSIGN_OR_RETURN(std::string arg,
                                 CanonicalExpr(*call.args[i]));
          out += arg;
        }
      }
      return out + ")";
    }
    case ExprKind::kStarAgg:
      return expr.ToString();
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      ESLEV_ASSIGN_OR_RETURN(std::string inner,
                             CanonicalExpr(*unary.operand));
      if (unary.op == UnaryOp::kNot) return "NOT (" + inner + ")";
      return "(0 - " + inner + ")";
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      ESLEV_ASSIGN_OR_RETURN(std::string lhs, CanonicalExpr(*bin.lhs));
      ESLEV_ASSIGN_OR_RETURN(std::string rhs, CanonicalExpr(*bin.rhs));
      return "(" + lhs + " " + BinaryOpToString(bin.op) + " " + rhs + ")";
    }
    case ExprKind::kExists: {
      const auto& exists = static_cast<const ExistsExpr&>(expr);
      ESLEV_ASSIGN_OR_RETURN(std::string sub,
                             CanonicalSelect(*exists.subquery));
      return std::string(exists.negated ? "NOT EXISTS (" : "EXISTS (") +
             sub + ")";
    }
    case ExprKind::kSeq: {
      const auto& seq = static_cast<const SeqExpr&>(expr);
      std::string out = SeqKindToString(seq.seq_kind);
      out += "(";
      for (size_t i = 0; i < seq.args.size(); ++i) {
        if (i > 0) out += ", ";
        if (seq.args[i].negated) out += "!";
        out += seq.args[i].stream;
        if (seq.args[i].star) out += "*";
      }
      out += ")";
      if (seq.window) out += " OVER " + CanonicalWindow(*seq.window);
      if (seq.mode_explicit) {
        out += " MODE ";
        out += PairingModeToString(seq.mode);
      }
      return out;
    }
  }
  return Status::Invalid("unknown expression kind");
}

Result<std::string> CanonicalSelect(const SelectStmt& select) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < select.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = select.items[i];
    if (item.is_star) {
      out += "*";
      continue;
    }
    ESLEV_ASSIGN_OR_RETURN(std::string e, CanonicalExpr(*item.expr));
    out += e;
    if (!item.alias.empty()) out += " AS " + item.alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < select.from.size(); ++i) {
    if (i > 0) out += ", ";
    const TableRef& ref = select.from[i];
    out += ref.name;
    if (!ref.alias.empty() && ref.alias != ref.name) {
      out += " AS " + ref.alias;
    }
    if (ref.window) out += " OVER " + CanonicalWindow(*ref.window);
  }
  if (select.where) {
    ESLEV_ASSIGN_OR_RETURN(std::string w, CanonicalExpr(*select.where));
    out += " WHERE " + w;
  }
  if (!select.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < select.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      ESLEV_ASSIGN_OR_RETURN(std::string g,
                             CanonicalExpr(*select.group_by[i]));
      out += g;
    }
  }
  if (select.having) {
    ESLEV_ASSIGN_OR_RETURN(std::string h, CanonicalExpr(*select.having));
    out += " HAVING " + h;
  }
  if (!select.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < select.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      ESLEV_ASSIGN_OR_RETURN(std::string k,
                             CanonicalExpr(*select.order_by[i].expr));
      out += k;
      if (select.order_by[i].descending) out += " DESC";
    }
  }
  if (select.limit >= 0) out += " LIMIT " + std::to_string(select.limit);
  return out;
}

}  // namespace

Result<std::string> CanonicalStatementText(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return CanonicalSelect(
          *static_cast<const SelectStatement&>(stmt).select);
    case StatementKind::kInsert: {
      const auto& insert = static_cast<const InsertStmt&>(stmt);
      ESLEV_ASSIGN_OR_RETURN(std::string sel,
                             CanonicalSelect(*insert.select));
      return "INSERT INTO " + insert.target + " " + sel;
    }
    default:
      return Status::Invalid(
          "only SELECT / INSERT statements canonicalize");
  }
}

Result<CanonicalQuery> CanonicalizeQuery(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(StatementPtr parsed, ParseStatement(sql));
  ESLEV_ASSIGN_OR_RETURN(std::string text, CanonicalStatementText(*parsed));
  // Fixed-point check: the canonical text must survive its own
  // parse/print cycle, or it is not a stable cache key.
  Result<StatementPtr> reparsed = ParseStatement(text);
  if (!reparsed.ok()) {
    return Status::ExecutionError("canonical text does not re-parse: " + text +
                            " (" + reparsed.status().ToString() + ")");
  }
  ESLEV_ASSIGN_OR_RETURN(std::string again,
                         CanonicalStatementText(**reparsed));
  if (again != text) {
    return Status::ExecutionError("canonicalization is not a fixed point: '" +
                            text + "' vs '" + again + "'");
  }
  CanonicalQuery out;
  out.text = std::move(text);
  out.hash = CanonicalHash(out.text);
  out.stmt = std::move(*reparsed);
  return out;
}

uint64_t CanonicalHash(const std::string& text) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV-1a 64 prime
  }
  return h;
}

}  // namespace eslev
