// Canonical query text (DESIGN.md §17): a normalized re-print of the
// parsed AST, so that two query strings differing only in whitespace,
// comment placement, keyword case, optional syntax (`TABLE( s OVER
// (...) )` vs `s OVER [...]`, RANGE vs bare units, redundant AS) or
// literal spelling (`5 SECONDS` vs `5000000`) map to the same text.
// The SharedPlanCache keys on this text — equal canonical text means
// the compiled pipelines are identical, so tenants can share one.
//
// The canonical form is conservative: identifier case is preserved
// (`Readings` and `readings` canonicalize differently and merely miss
// sharing), and every canonicalization is verified by a re-parse
// round-trip — the canonical text must parse back to an AST that
// prints to the same text, or the query is rejected as
// non-canonicalizable rather than cached under an unstable key.

#ifndef ESLEV_SQL_CANONICAL_H_
#define ESLEV_SQL_CANONICAL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace eslev {

/// \brief A canonicalized continuous-query statement.
struct CanonicalQuery {
  /// Normalized statement text (the plan-cache key).
  std::string text;
  /// FNV-1a 64-bit hash of `text` (cheap index / registry tag).
  uint64_t hash = 0;
  /// The canonical AST (re-parsed from `text`), ready for planning.
  StatementPtr stmt;
};

/// \brief Print the canonical text of a parsed SELECT / INSERT
/// statement. Fails for statement kinds that are not continuous
/// queries and for ASTs with no surface syntax (e.g. synthesized
/// timestamp literals).
Result<std::string> CanonicalStatementText(const Statement& stmt);

/// \brief Parse one statement and canonicalize it: parse -> print ->
/// re-parse -> re-print, verifying the fixed point.
Result<CanonicalQuery> CanonicalizeQuery(const std::string& sql);

/// \brief FNV-1a 64-bit over `text`.
uint64_t CanonicalHash(const std::string& text);

}  // namespace eslev

#endif  // ESLEV_SQL_CANONICAL_H_
