#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace eslev {

const char* TokenTypeToString(TokenType t) {
  switch (t) {
    case TokenType::kEnd:
      return "end of input";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBracket:
      return "'['";
    case TokenType::kRBracket:
      return "']'";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kBang:
      return "'!'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kPercent:
      return "'%'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
  }
  return "?";
}

std::string Token::Describe() const {
  if (type == TokenType::kIdentifier || type == TokenType::kInteger ||
      type == TokenType::kFloat) {
    return "'" + text + "'";
  }
  if (type == TokenType::kString) return "'" + text + "' (string)";
  return TokenTypeToString(type);
}

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      ESLEV_RETURN_NOT_OK(SkipWhitespaceAndComments());
      Token tok;
      tok.offset = pos_;
      tok.line = line_;
      tok.column = column_;
      if (pos_ >= sql_.size()) {
        tok.type = TokenType::kEnd;
        out.push_back(std::move(tok));
        return out;
      }
      ESLEV_RETURN_NOT_OK(LexOne(&tok));
      tok.length = pos_ - tok.offset;
      out.push_back(std::move(tok));
    }
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < sql_.size() ? sql_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (pos_ < sql_.size()) {
      if (sql_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
      ++pos_;
    }
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  Status SkipWhitespaceAndComments() {
    while (pos_ < sql_.size()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && Peek(1) == '-') {
        while (pos_ < sql_.size() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (pos_ < sql_.size() && !(Peek() == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (pos_ >= sql_.size()) return Error("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status LexOne(Token* tok) {
    const char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifier(tok);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber(tok);
    if (c == '\'') return LexString(tok);

    // U+2264 (<=) appears in the paper's query listings; accept it.
    if (static_cast<unsigned char>(c) == 0xE2 &&
        static_cast<unsigned char>(Peek(1)) == 0x89) {
      const unsigned char third = static_cast<unsigned char>(Peek(2));
      if (third == 0xA4) {  // U+2264 LESS-THAN OR EQUAL TO
        Advance();
        Advance();
        Advance();
        tok->type = TokenType::kLe;
        return Status::OK();
      }
      if (third == 0xA5) {  // U+2265 GREATER-THAN OR EQUAL TO
        Advance();
        Advance();
        Advance();
        tok->type = TokenType::kGe;
        return Status::OK();
      }
    }

    switch (c) {
      case '(':
        tok->type = TokenType::kLParen;
        Advance();
        return Status::OK();
      case ')':
        tok->type = TokenType::kRParen;
        Advance();
        return Status::OK();
      case '[':
        tok->type = TokenType::kLBracket;
        Advance();
        return Status::OK();
      case ']':
        tok->type = TokenType::kRBracket;
        Advance();
        return Status::OK();
      case ',':
        tok->type = TokenType::kComma;
        Advance();
        return Status::OK();
      case '.':
        tok->type = TokenType::kDot;
        Advance();
        return Status::OK();
      case ';':
        tok->type = TokenType::kSemicolon;
        Advance();
        return Status::OK();
      case '*':
        tok->type = TokenType::kStar;
        Advance();
        return Status::OK();
      case '+':
        tok->type = TokenType::kPlus;
        Advance();
        return Status::OK();
      case '-':
        tok->type = TokenType::kMinus;
        Advance();
        return Status::OK();
      case '/':
        tok->type = TokenType::kSlash;
        Advance();
        return Status::OK();
      case '%':
        tok->type = TokenType::kPercent;
        Advance();
        return Status::OK();
      case '=':
        tok->type = TokenType::kEq;
        Advance();
        return Status::OK();
      case '!':
        if (Peek(1) == '=') {
          Advance();
          Advance();
          tok->type = TokenType::kNe;
          return Status::OK();
        }
        Advance();
        tok->type = TokenType::kBang;
        return Status::OK();
      case '<':
        Advance();
        if (Peek() == '=') {
          Advance();
          tok->type = TokenType::kLe;
        } else if (Peek() == '>') {
          Advance();
          tok->type = TokenType::kNe;
        } else {
          tok->type = TokenType::kLt;
        }
        return Status::OK();
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          tok->type = TokenType::kGe;
        } else {
          tok->type = TokenType::kGt;
        }
        return Status::OK();
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status LexIdentifier(Token* tok) {
    const size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(Peek())) ||
            Peek() == '_')) {
      Advance();
    }
    tok->type = TokenType::kIdentifier;
    tok->text = sql_.substr(start, pos_ - start);
    return Status::OK();
  }

  Status LexNumber(Token* tok) {
    const size_t start = pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    bool is_float = false;
    // Only treat '.' as a decimal point when followed by a digit, so that
    // qualified references after integers (rare) keep working.
    if (Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_float = true;
        while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
      } else {
        pos_ = save;  // 'e' begins an identifier (e.g., `5 seconds`)
      }
    }
    tok->text = sql_.substr(start, pos_ - start);
    if (is_float) {
      tok->type = TokenType::kFloat;
      tok->float_value = std::strtod(tok->text.c_str(), nullptr);
    } else {
      tok->type = TokenType::kInteger;
      tok->int_value = std::strtoll(tok->text.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  Status LexString(Token* tok) {
    Advance();  // opening quote
    std::string value;
    while (true) {
      if (pos_ >= sql_.size()) return Error("unterminated string literal");
      const char c = Peek();
      if (c == '\'') {
        if (Peek(1) == '\'') {  // escaped quote: ''
          value.push_back('\'');
          Advance();
          Advance();
          continue;
        }
        Advance();
        break;
      }
      value.push_back(c);
      Advance();
    }
    tok->type = TokenType::kString;
    tok->text = std::move(value);
    return Status::OK();
  }

  const std::string& sql_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  return Lexer(sql).Run();
}

}  // namespace eslev
