// Hand-written lexer for the ESL-EV SQL dialect.
//
// Notes specific to this dialect:
//  * `--` starts a line comment; `/* */` is a block comment.
//  * `<=` may also be written as the Unicode character U+2264 (the paper's
//    examples use it); it lexes to kLe.
//  * Identifiers are [A-Za-z_][A-Za-z0-9_]*; keywords are plain
//    identifiers, resolved case-insensitively by the parser.

#ifndef ESLEV_SQL_LEXER_H_
#define ESLEV_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace eslev {

/// \brief Tokenize `sql`; the final token is always kEnd.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace eslev

#endif  // ESLEV_SQL_LEXER_H_
