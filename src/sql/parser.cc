#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace eslev {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<StatementPtr>> ParseScript() {
    std::vector<StatementPtr> out;
    while (!AtEnd()) {
      if (Match(TokenType::kSemicolon)) continue;
      ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseOneStatement());
      out.push_back(std::move(stmt));
    }
    return out;
  }

  Result<StatementPtr> ParseSingle() {
    ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseOneStatement());
    Match(TokenType::kSemicolon);
    if (!AtEnd()) {
      return Error("unexpected trailing input " + Peek().Describe());
    }
    return stmt;
  }

  Result<ExprPtr> ParseSingleExpression() {
    ESLEV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) {
      return Error("unexpected trailing input " + Peek().Describe());
    }
    return e;
  }

 private:
  // ---- token helpers -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

  bool Check(TokenType t) const { return Peek().type == t; }

  bool Match(TokenType t) {
    if (!Check(t)) return false;
    Advance();
    return true;
  }

  Status Expect(TokenType t, const std::string& context) {
    if (Match(t)) return Status::OK();
    return Error(std::string("expected ") + TokenTypeToString(t) + " in " +
                 context + ", found " + Peek().Describe());
  }

  bool CheckKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier &&
           AsciiEqualsIgnoreCase(t.text, kw);
  }

  bool MatchKeyword(const char* kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status ExpectKeyword(const char* kw, const std::string& context) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(std::string("expected keyword ") + kw + " in " + context +
                 ", found " + Peek().Describe());
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(msg + " (line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) + ")");
  }

  Result<std::string> ExpectIdentifier(const std::string& context) {
    if (!Check(TokenType::kIdentifier)) {
      return Error("expected identifier in " + context + ", found " +
                   Peek().Describe());
    }
    return Advance().text;
  }

  /// \brief Source span covering every token consumed since the caller
  /// recorded `start_idx` (i.e. tokens [start_idx, pos_)).
  SourceSpan SpanFrom(size_t start_idx) const {
    const size_t max_idx = tokens_.size() - 1;
    const Token& first = tokens_[start_idx < max_idx ? start_idx : max_idx];
    const size_t last_idx = pos_ > start_idx ? pos_ - 1 : start_idx;
    const Token& last = tokens_[last_idx < max_idx ? last_idx : max_idx];
    SourceSpan span = first.span();
    span.length = last.offset + last.length - first.offset;
    return span;
  }

  // True for keywords that terminate an alias-less table/column position.
  bool CheckReservedClauseKeyword() const {
    static const char* kClauseKeywords[] = {
        "FROM", "WHERE",  "GROUP",   "HAVING", "OVER",  "MODE",
        "AND",  "OR",     "ON",      "ORDER",  "AS",    "NOT",
        "LIKE", "EXISTS", "BETWEEN", "IN",     "LIMIT", "ASC",
        "DESC",
    };
    for (const char* kw : kClauseKeywords) {
      if (CheckKeyword(kw)) return true;
    }
    return false;
  }

  // ---- statements ---------------------------------------------------------

  Result<StatementPtr> ParseOneStatement() {
    const size_t start = pos_;
    ESLEV_ASSIGN_OR_RETURN(StatementPtr stmt, ParseOneStatementImpl());
    stmt->span = SpanFrom(start);
    return stmt;
  }

  Result<StatementPtr> ParseOneStatementImpl() {
    if (CheckKeyword("CREATE")) {
      Advance();
      if (CheckKeyword("STREAM") || CheckKeyword("TABLE")) {
        return ParseCreate();
      }
      if (CheckKeyword("AGGREGATE")) {
        return ParseCreateAggregate();
      }
      return Error("expected STREAM, TABLE or AGGREGATE after CREATE");
    }
    if (CheckKeyword("STREAM") || CheckKeyword("TABLE")) {
      // Bare `STREAM name(...)` / `TABLE name(...)` as in the paper — but
      // only when it looks like a DDL (identifier then '(').
      if (Peek(1).type == TokenType::kIdentifier &&
          Peek(2).type == TokenType::kLParen) {
        return ParseCreate();
      }
    }
    if (CheckKeyword("INSERT")) return ParseInsert();
    if (CheckKeyword("SELECT")) {
      ESLEV_ASSIGN_OR_RETURN(auto select, ParseSelect());
      return StatementPtr(new SelectStatement(std::move(select)));
    }
    if (MatchKeyword("EXPLAIN")) {
      ExplainMode mode = ExplainMode::kPlan;
      if (MatchKeyword("ANALYZE")) {
        mode = ExplainMode::kAnalyze;
      } else if (MatchKeyword("LINT")) {
        mode = ExplainMode::kLint;
      } else if (MatchKeyword("COST")) {
        mode = ExplainMode::kCost;
      }
      ESLEV_ASSIGN_OR_RETURN(StatementPtr inner, ParseOneStatement());
      if (inner->kind != StatementKind::kSelect &&
          inner->kind != StatementKind::kInsert) {
        return Error("EXPLAIN applies to SELECT / INSERT statements");
      }
      return StatementPtr(new ExplainStmt(mode, std::move(inner)));
    }
    return Error(
        "expected CREATE, STREAM, TABLE, INSERT, SELECT or EXPLAIN, found " +
        Peek().Describe());
  }

  Result<StatementPtr> ParseCreate() {
    const bool is_stream = MatchKeyword("STREAM");
    if (!is_stream) {
      ESLEV_RETURN_NOT_OK(ExpectKeyword("TABLE", "CREATE statement"));
    }
    ESLEV_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("CREATE"));
    ESLEV_RETURN_NOT_OK(Expect(TokenType::kLParen, "CREATE column list"));
    std::vector<Field> fields;
    while (true) {
      ESLEV_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
      Field f;
      f.name = col;
      if (Check(TokenType::kIdentifier)) {
        // Explicit type name.
        ESLEV_ASSIGN_OR_RETURN(f.type, ParseTypeName(Advance().text));
        // Optional length such as VARCHAR(64) — parsed and ignored.
        if (Match(TokenType::kLParen)) {
          if (!Match(TokenType::kInteger)) {
            return Error("expected length in type");
          }
          ESLEV_RETURN_NOT_OK(Expect(TokenType::kRParen, "type length"));
        }
      } else {
        // Untyped, as in the paper's listings: columns containing "time"
        // default to TIMESTAMP, everything else to VARCHAR.
        const std::string lower = AsciiToLower(col);
        f.type = lower.find("time") != std::string::npos ? TypeId::kTimestamp
                                                         : TypeId::kString;
      }
      fields.push_back(std::move(f));
      if (Match(TokenType::kComma)) continue;
      break;
    }
    ESLEV_RETURN_NOT_OK(Expect(TokenType::kRParen, "CREATE column list"));
    return StatementPtr(new CreateStmt(is_stream, name, std::move(fields)));
  }

  // CREATE AGGREGATE name AS INITIALIZE e ITERATE e [TERMINATE e]
  Result<StatementPtr> ParseCreateAggregate() {
    ESLEV_RETURN_NOT_OK(ExpectKeyword("AGGREGATE", "CREATE AGGREGATE"));
    ESLEV_ASSIGN_OR_RETURN(std::string name,
                           ExpectIdentifier("CREATE AGGREGATE"));
    ESLEV_RETURN_NOT_OK(ExpectKeyword("AS", "CREATE AGGREGATE"));
    ESLEV_RETURN_NOT_OK(ExpectKeyword("INITIALIZE", "CREATE AGGREGATE"));
    ESLEV_ASSIGN_OR_RETURN(ExprPtr init, ParseUdaExpr("ITERATE"));
    ESLEV_RETURN_NOT_OK(ExpectKeyword("ITERATE", "CREATE AGGREGATE"));
    ESLEV_ASSIGN_OR_RETURN(ExprPtr iter, ParseUdaExpr("TERMINATE"));
    ExprPtr term;
    if (MatchKeyword("TERMINATE")) {
      ESLEV_ASSIGN_OR_RETURN(term, ParseExpr());
    }
    TypeId return_type = TypeId::kNull;  // same as the argument
    if (MatchKeyword("RETURNS")) {
      ESLEV_ASSIGN_OR_RETURN(std::string type_name,
                             ExpectIdentifier("RETURNS clause"));
      ESLEV_ASSIGN_OR_RETURN(return_type, ParseTypeName(type_name));
    }
    return StatementPtr(new CreateAggregateStmt(
        std::move(name), std::move(init), std::move(iter), std::move(term),
        return_type));
  }

  // UDA body expressions end at the next section keyword; ParseExpr
  // naturally stops there because section keywords are not operators.
  Result<ExprPtr> ParseUdaExpr(const char* next_section) {
    (void)next_section;
    return ParseExpr();
  }

  Result<StatementPtr> ParseInsert() {
    ESLEV_RETURN_NOT_OK(ExpectKeyword("INSERT", "INSERT statement"));
    ESLEV_RETURN_NOT_OK(ExpectKeyword("INTO", "INSERT statement"));
    ESLEV_ASSIGN_OR_RETURN(std::string target, ExpectIdentifier("INSERT"));
    ESLEV_ASSIGN_OR_RETURN(auto select, ParseSelect());
    return StatementPtr(new InsertStmt(target, std::move(select)));
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    ESLEV_RETURN_NOT_OK(ExpectKeyword("SELECT", "query"));
    auto stmt = std::make_unique<SelectStmt>();

    // Select list.
    while (true) {
      SelectItem item;
      if (Check(TokenType::kStar)) {
        Advance();
        item.is_star = true;
      } else {
        ESLEV_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("AS")) {
          ESLEV_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        } else if (Check(TokenType::kIdentifier) &&
                   !CheckReservedClauseKeyword()) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
      if (Match(TokenType::kComma)) continue;
      break;
    }

    // FROM clause.
    ESLEV_RETURN_NOT_OK(ExpectKeyword("FROM", "query"));
    while (true) {
      ESLEV_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
      if (Match(TokenType::kComma)) continue;
      break;
    }

    if (MatchKeyword("WHERE")) {
      ESLEV_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      ESLEV_RETURN_NOT_OK(ExpectKeyword("BY", "GROUP BY"));
      while (true) {
        ESLEV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (Match(TokenType::kComma)) continue;
        break;
      }
    }
    if (MatchKeyword("HAVING")) {
      ESLEV_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (MatchKeyword("ORDER")) {
      ESLEV_RETURN_NOT_OK(ExpectKeyword("BY", "ORDER BY"));
      while (true) {
        OrderKey key;
        ESLEV_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          key.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(key));
        if (Match(TokenType::kComma)) continue;
        break;
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (!Check(TokenType::kInteger)) {
        return Error("expected integer after LIMIT");
      }
      stmt->limit = Advance().int_value;
    }
    return stmt;
  }

  // `TABLE( stream OVER ( window ) ) [AS] alias`, or
  // `name [AS alias] [OVER [window]]`.
  Result<TableRef> ParseTableRef() {
    const size_t start = pos_;
    TableRef ref;
    if (CheckKeyword("TABLE") && Peek(1).type == TokenType::kLParen) {
      Advance();  // TABLE
      Advance();  // (
      ESLEV_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier("TABLE()"));
      if (CheckKeyword("OVER")) {
        const size_t window_start = pos_;
        Advance();  // OVER
        ESLEV_RETURN_NOT_OK(Expect(TokenType::kLParen, "OVER window"));
        ESLEV_ASSIGN_OR_RETURN(
            ref.window, ParseWindowBody(TokenType::kRParen, "window"));
        ref.window->span = SpanFrom(window_start);
      }
      ESLEV_RETURN_NOT_OK(Expect(TokenType::kRParen, "TABLE()"));
    } else {
      ESLEV_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier("FROM clause"));
    }

    if (MatchKeyword("AS")) {
      ESLEV_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("alias"));
    } else if (Check(TokenType::kIdentifier) && !CheckReservedClauseKeyword()) {
      ref.alias = Advance().text;
    } else {
      ref.alias = ref.name;
    }

    // Trailing window on the reference itself (Example 8):
    // `tag_readings AS item OVER [1 MINUTES PRECEDING AND FOLLOWING person]`
    if (CheckKeyword("OVER")) {
      const size_t window_start = pos_;
      Advance();  // OVER
      TokenType close;
      if (Match(TokenType::kLBracket)) {
        close = TokenType::kRBracket;
      } else if (Match(TokenType::kLParen)) {
        close = TokenType::kRParen;
      } else {
        return Error("expected '[' or '(' after OVER");
      }
      ESLEV_ASSIGN_OR_RETURN(ref.window, ParseWindowBody(close, "window"));
      ref.window->span = SpanFrom(window_start);
    }
    ref.span = SpanFrom(start);
    return ref;
  }

  // Parses the inside of a window spec up to (and including) `close`:
  //   [RANGE|ROWS] <n> [unit] PRECEDING [AND FOLLOWING] [anchor]
  //   [RANGE|ROWS] <n> [unit] FOLLOWING [anchor]
  // Anchor `CURRENT` (or none) means the current tuple.
  Result<WindowSpec> ParseWindowBody(TokenType close,
                                     const std::string& context) {
    WindowSpec spec;
    bool explicit_rows = false;
    if (MatchKeyword("ROWS")) {
      explicit_rows = true;
      spec.row_based = true;
    } else {
      MatchKeyword("RANGE");  // optional
    }

    if (!Check(TokenType::kInteger)) {
      return Error("expected window length in " + context);
    }
    const int64_t n = Advance().int_value;

    if (!explicit_rows && Check(TokenType::kIdentifier) &&
        !CheckKeyword("PRECEDING") && !CheckKeyword("FOLLOWING")) {
      ESLEV_ASSIGN_OR_RETURN(Duration unit, ParseTimeUnit(Peek().text));
      Advance();
      spec.row_based = false;
      spec.length = n * unit;
    } else if (explicit_rows) {
      spec.length = n;
    } else {
      // No unit: row-based count (e.g. `ROWS` omitted but unitless).
      spec.row_based = true;
      spec.length = n;
    }

    if (MatchKeyword("PRECEDING")) {
      spec.direction = WindowDirection::kPreceding;
      if (MatchKeyword("AND")) {
        ESLEV_RETURN_NOT_OK(ExpectKeyword("FOLLOWING", context));
        spec.direction = WindowDirection::kPrecedingAndFollowing;
      }
    } else if (MatchKeyword("FOLLOWING")) {
      spec.direction = WindowDirection::kFollowing;
      if (MatchKeyword("AND")) {
        ESLEV_RETURN_NOT_OK(ExpectKeyword("PRECEDING", context));
        spec.direction = WindowDirection::kPrecedingAndFollowing;
      }
    } else {
      return Error("expected PRECEDING or FOLLOWING in " + context);
    }

    if (Check(TokenType::kIdentifier)) {
      const std::string anchor = Advance().text;
      if (!AsciiEqualsIgnoreCase(anchor, "CURRENT")) {
        spec.anchor = anchor;
      }
    }
    ESLEV_RETURN_NOT_OK(Expect(close, context));
    return spec;
  }

  // ---- expressions --------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    const size_t start = pos_;
    ESLEV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      ESLEV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(lhs),
                                         std::move(rhs));
      lhs->span = SpanFrom(start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    const size_t start = pos_;
    ESLEV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (MatchKeyword("AND")) {
      ESLEV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(lhs),
                                         std::move(rhs));
      lhs->span = SpanFrom(start);
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    const size_t start = pos_;
    if (CheckKeyword("NOT")) {
      if (CheckKeyword("EXISTS", 1)) {
        Advance();  // NOT
        Advance();  // EXISTS
        return ParseExistsBody(/*negated=*/true, start);
      }
      Advance();
      ESLEV_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      ExprPtr out(new UnaryExpr(UnaryOp::kNot, std::move(e)));
      out->span = SpanFrom(start);
      return out;
    }
    if (MatchKeyword("EXISTS")) return ParseExistsBody(/*negated=*/false, start);
    return ParseComparison();
  }

  Result<ExprPtr> ParseExistsBody(bool negated, size_t start) {
    ESLEV_RETURN_NOT_OK(Expect(TokenType::kLParen, "EXISTS"));
    ESLEV_ASSIGN_OR_RETURN(auto sub, ParseSelect());
    ESLEV_RETURN_NOT_OK(Expect(TokenType::kRParen, "EXISTS"));
    ExprPtr out(new ExistsExpr(negated, std::move(sub)));
    out->span = SpanFrom(start);
    return out;
  }

  Result<ExprPtr> ParseComparison() {
    const size_t start = pos_;
    ESLEV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    // BETWEEN a AND b  /  NOT BETWEEN a AND b
    bool negate = false;
    size_t save = pos_;
    if (MatchKeyword("NOT")) {
      if (CheckKeyword("BETWEEN") || CheckKeyword("LIKE") ||
          CheckKeyword("IN")) {
        negate = true;
      } else {
        pos_ = save;  // plain NOT belongs to a higher level
        return lhs;
      }
    }
    if (MatchKeyword("BETWEEN")) {
      ESLEV_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      ESLEV_RETURN_NOT_OK(ExpectKeyword("AND", "BETWEEN"));
      ESLEV_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      // BETWEEN lowers to two comparisons sharing the left expression, so
      // the left side is cloned via its AST.
      ESLEV_ASSIGN_OR_RETURN(ExprPtr lhs2, CloneExpr(*lhs));
      ExprPtr ge(new BinaryExpr(BinaryOp::kGe, std::move(lhs), std::move(lo)));
      ExprPtr le(new BinaryExpr(BinaryOp::kLe, std::move(lhs2), std::move(hi)));
      // BETWEEN splits into two conjuncts downstream, so each half gets
      // the full construct's span.
      ge->span = SpanFrom(start);
      le->span = ge->span;
      ExprPtr both(
          new BinaryExpr(BinaryOp::kAnd, std::move(ge), std::move(le)));
      both->span = SpanFrom(start);
      if (negate) {
        ExprPtr out(new UnaryExpr(UnaryOp::kNot, std::move(both)));
        out->span = SpanFrom(start);
        return out;
      }
      return both;
    }
    if (MatchKeyword("LIKE")) {
      ESLEV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr out(new BinaryExpr(
          negate ? BinaryOp::kNotLike : BinaryOp::kLike, std::move(lhs),
          std::move(rhs)));
      out->span = SpanFrom(start);
      return out;
    }
    if (MatchKeyword("IN")) {
      ESLEV_RETURN_NOT_OK(Expect(TokenType::kLParen, "IN list"));
      ExprPtr disjunction;
      while (true) {
        ESLEV_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
        ESLEV_ASSIGN_OR_RETURN(ExprPtr lhs_clone, CloneExpr(*lhs));
        ExprPtr eq(new BinaryExpr(BinaryOp::kEq, std::move(lhs_clone),
                                  std::move(item)));
        eq->span = SpanFrom(start);
        if (disjunction) {
          disjunction = ExprPtr(new BinaryExpr(
              BinaryOp::kOr, std::move(disjunction), std::move(eq)));
        } else {
          disjunction = std::move(eq);
        }
        if (Match(TokenType::kComma)) continue;
        break;
      }
      ESLEV_RETURN_NOT_OK(Expect(TokenType::kRParen, "IN list"));
      disjunction->span = SpanFrom(start);
      if (negate) {
        ExprPtr out(new UnaryExpr(UnaryOp::kNot, std::move(disjunction)));
        out->span = SpanFrom(start);
        return out;
      }
      return disjunction;
    }
    if (negate) {
      return Error("expected BETWEEN, LIKE or IN after NOT");
    }

    BinaryOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenType::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenType::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenType::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenType::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenType::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    ESLEV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    ExprPtr out(new BinaryExpr(op, std::move(lhs), std::move(rhs)));
    out->span = SpanFrom(start);
    return out;
  }

  Result<ExprPtr> ParseAdditive() {
    const size_t start = pos_;
    ESLEV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      ESLEV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
      lhs->span = SpanFrom(start);
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    const size_t start = pos_;
    ESLEV_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      ESLEV_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
      lhs->span = SpanFrom(start);
    }
  }

  Result<ExprPtr> ParseUnary() {
    const size_t start = pos_;
    if (Match(TokenType::kMinus)) {
      ESLEV_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      ExprPtr out(new UnaryExpr(UnaryOp::kNeg, std::move(e)));
      out->span = SpanFrom(start);
      return out;
    }
    if (Match(TokenType::kPlus)) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const size_t start = pos_;
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger: {
        Advance();
        // Interval literal: `5 SECONDS`, `1 HOURS` (duration in micros).
        if (Check(TokenType::kIdentifier)) {
          auto unit = ParseTimeUnit(Peek().text);
          if (unit.ok()) {
            Advance();
            ExprPtr out(
                new LiteralExpr(Value::Int(tok.int_value * (*unit))));
            out->span = SpanFrom(start);
            return out;
          }
        }
        ExprPtr out(new LiteralExpr(Value::Int(tok.int_value)));
        out->span = tok.span();
        return out;
      }
      case TokenType::kFloat: {
        Advance();
        ExprPtr out(new LiteralExpr(Value::Double(tok.float_value)));
        out->span = tok.span();
        return out;
      }
      case TokenType::kString: {
        Advance();
        ExprPtr out(new LiteralExpr(Value::String(tok.text)));
        out->span = tok.span();
        return out;
      }
      case TokenType::kLParen: {
        Advance();
        ESLEV_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        ESLEV_RETURN_NOT_OK(Expect(TokenType::kRParen, "expression"));
        return e;
      }
      case TokenType::kIdentifier:
        return ParseIdentifierExpr();
      default:
        return Error("unexpected token " + tok.Describe() +
                     " in expression");
    }
  }

  // Handles literals TRUE/FALSE/NULL, SEQ-family operators, star
  // aggregates, function calls, and column references.
  Result<ExprPtr> ParseIdentifierExpr() {
    const size_t start = pos_;
    if (CheckKeyword("TRUE") || CheckKeyword("FALSE") || CheckKeyword("NULL")) {
      const Token& t = Advance();
      ExprPtr out(new LiteralExpr(
          AsciiEqualsIgnoreCase(t.text, "NULL")
              ? Value::Null()
              : Value::Bool(AsciiEqualsIgnoreCase(t.text, "TRUE"))));
      out->span = t.span();
      return out;
    }

    // SEQ-family operator.
    if ((CheckKeyword("SEQ") || CheckKeyword("EXCEPTION_SEQ") ||
         CheckKeyword("CLEVEL_SEQ")) &&
        Peek(1).type == TokenType::kLParen) {
      return ParseSeqExpr();
    }

    // Star aggregate: FIRST(S*)[.col], LAST(S*)[.col], COUNT(S*).
    if ((CheckKeyword("FIRST") || CheckKeyword("LAST") ||
         CheckKeyword("COUNT")) &&
        Peek(1).type == TokenType::kLParen &&
        Peek(2).type == TokenType::kIdentifier &&
        Peek(3).type == TokenType::kStar &&
        Peek(4).type == TokenType::kRParen) {
      StarAggFn fn;
      if (CheckKeyword("FIRST")) {
        fn = StarAggFn::kFirst;
      } else if (CheckKeyword("LAST")) {
        fn = StarAggFn::kLast;
      } else {
        fn = StarAggFn::kCount;
      }
      Advance();  // name
      Advance();  // (
      std::string stream = Advance().text;
      Advance();  // *
      Advance();  // )
      std::string column;
      if (fn != StarAggFn::kCount) {
        if (!Match(TokenType::kDot)) {
          return Error(std::string(StarAggFnToString(fn)) +
                       "(S*) requires a .column suffix");
        }
        ESLEV_ASSIGN_OR_RETURN(column, ExpectIdentifier("star aggregate"));
      }
      ExprPtr out(
          new StarAggExpr(fn, std::move(stream), std::move(column)));
      out->span = SpanFrom(start);
      return out;
    }

    const std::string name = Advance().text;

    // Function call (including COUNT(expr) and COUNT(*)).
    if (Check(TokenType::kLParen)) {
      Advance();
      std::vector<ExprPtr> args;
      bool star_arg = false;
      if (Check(TokenType::kStar)) {
        Advance();
        star_arg = true;
      } else if (!Check(TokenType::kRParen)) {
        while (true) {
          ESLEV_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
          args.push_back(std::move(a));
          if (Match(TokenType::kComma)) continue;
          break;
        }
      }
      ESLEV_RETURN_NOT_OK(Expect(TokenType::kRParen, "function call"));
      ExprPtr out(new FuncCallExpr(name, std::move(args), star_arg));
      out->span = SpanFrom(start);
      return out;
    }

    // Column reference: name | name.col | name.previous.col
    if (Match(TokenType::kDot)) {
      ESLEV_ASSIGN_OR_RETURN(std::string second,
                             ExpectIdentifier("column reference"));
      if (AsciiEqualsIgnoreCase(second, "previous") &&
          Check(TokenType::kDot)) {
        Advance();
        ESLEV_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("previous reference"));
        ExprPtr out(new ColumnRefExpr(name, col, /*previous=*/true));
        out->span = SpanFrom(start);
        return out;
      }
      ExprPtr out(new ColumnRefExpr(name, second));
      out->span = SpanFrom(start);
      return out;
    }
    ExprPtr out(new ColumnRefExpr("", name));
    out->span = SpanFrom(start);
    return out;
  }

  Result<ExprPtr> ParseSeqExpr() {
    const size_t start = pos_;
    auto seq = std::make_unique<SeqExpr>();
    if (MatchKeyword("SEQ")) {
      seq->seq_kind = SeqKind::kSeq;
    } else if (MatchKeyword("EXCEPTION_SEQ")) {
      seq->seq_kind = SeqKind::kExceptionSeq;
    } else if (MatchKeyword("CLEVEL_SEQ")) {
      seq->seq_kind = SeqKind::kClevelSeq;
    } else {
      return Error("expected SEQ operator");
    }
    ESLEV_RETURN_NOT_OK(Expect(TokenType::kLParen, "SEQ argument list"));
    while (true) {
      const size_t arg_start = pos_;
      SeqArg arg;
      if (Match(TokenType::kBang)) arg.negated = true;
      ESLEV_ASSIGN_OR_RETURN(arg.stream, ExpectIdentifier("SEQ argument"));
      if (Match(TokenType::kStar)) arg.star = true;
      if (arg.negated && arg.star) {
        return Error("a SEQ argument cannot be both negated and starred");
      }
      arg.span = SpanFrom(arg_start);
      seq->args.push_back(std::move(arg));
      if (Match(TokenType::kComma)) continue;
      break;
    }
    ESLEV_RETURN_NOT_OK(Expect(TokenType::kRParen, "SEQ argument list"));
    if (seq->args.size() < 2) {
      return Error("SEQ requires at least two arguments");
    }

    if (CheckKeyword("OVER")) {
      const size_t window_start = pos_;
      Advance();  // OVER
      TokenType close;
      if (Match(TokenType::kLBracket)) {
        close = TokenType::kRBracket;
      } else if (Match(TokenType::kLParen)) {
        close = TokenType::kRParen;
      } else {
        return Error("expected '[' or '(' after OVER");
      }
      ESLEV_ASSIGN_OR_RETURN(auto w, ParseWindowBody(close, "SEQ window"));
      w.span = SpanFrom(window_start);
      seq->window = w;
    }
    if (MatchKeyword("MODE")) {
      ESLEV_ASSIGN_OR_RETURN(std::string mode_name,
                             ExpectIdentifier("MODE clause"));
      ESLEV_ASSIGN_OR_RETURN(seq->mode, ParsePairingMode(mode_name));
      seq->mode_explicit = true;
    }
    seq->span = SpanFrom(start);
    return ExprPtr(seq.release());
  }

  // Structural deep copy; used to lower BETWEEN/IN without re-parsing.
  Result<ExprPtr> CloneExpr(const Expr& e) {
    ExprPtr out;
    switch (e.kind) {
      case ExprKind::kLiteral:
        out = ExprPtr(
            new LiteralExpr(static_cast<const LiteralExpr&>(e).value));
        break;
      case ExprKind::kColumnRef: {
        const auto& c = static_cast<const ColumnRefExpr&>(e);
        out = ExprPtr(new ColumnRefExpr(c.qualifier, c.column, c.previous));
        break;
      }
      case ExprKind::kFuncCall: {
        const auto& f = static_cast<const FuncCallExpr&>(e);
        std::vector<ExprPtr> args;
        for (const auto& a : f.args) {
          ESLEV_ASSIGN_OR_RETURN(ExprPtr copy, CloneExpr(*a));
          args.push_back(std::move(copy));
        }
        out = ExprPtr(new FuncCallExpr(f.name, std::move(args), f.star_arg));
        break;
      }
      case ExprKind::kStarAgg: {
        const auto& s = static_cast<const StarAggExpr&>(e);
        out = ExprPtr(new StarAggExpr(s.fn, s.stream, s.column));
        break;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(e);
        ESLEV_ASSIGN_OR_RETURN(ExprPtr inner, CloneExpr(*u.operand));
        out = ExprPtr(new UnaryExpr(u.op, std::move(inner)));
        break;
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        ESLEV_ASSIGN_OR_RETURN(ExprPtr l, CloneExpr(*b.lhs));
        ESLEV_ASSIGN_OR_RETURN(ExprPtr r, CloneExpr(*b.rhs));
        out = ExprPtr(new BinaryExpr(b.op, std::move(l), std::move(r)));
        break;
      }
      default:
        return Status::NotImplemented(
            "cannot clone subquery/SEQ expressions inside BETWEEN/IN");
    }
    out->span = e.span;
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatementPtr> ParseStatement(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseSingle();
}

Result<std::vector<StatementPtr>> ParseScript(const std::string& sql) {
  ESLEV_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseScript();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  ESLEV_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  return Parser(std::move(tokens)).ParseSingleExpression();
}

}  // namespace eslev
