// Recursive-descent parser for the ESL-EV dialect (see ast.h for the
// grammar summary). Keywords are matched case-insensitively and only in
// keyword positions, so most keywords remain usable as identifiers.

#ifndef ESLEV_SQL_PARSER_H_
#define ESLEV_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace eslev {

/// \brief Parse a single statement (trailing ';' optional).
Result<StatementPtr> ParseStatement(const std::string& sql);

/// \brief Parse a ';'-separated script into statements.
Result<std::vector<StatementPtr>> ParseScript(const std::string& sql);

/// \brief Parse a standalone scalar/boolean expression (used by tests).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace eslev

#endif  // ESLEV_SQL_PARSER_H_
