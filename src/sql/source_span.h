// SourceSpan: a half-open byte range of the original SQL text, plus the
// 1-based line/column of its first character. The lexer stamps one onto
// every token; the parser widens token spans onto AST nodes so that
// diagnostics (parse errors, EXPLAIN LINT findings) can point at the
// offending construct.

#ifndef ESLEV_SQL_SOURCE_SPAN_H_
#define ESLEV_SQL_SOURCE_SPAN_H_

#include <cstddef>
#include <string>

namespace eslev {

struct SourceSpan {
  size_t offset = 0;  // byte offset of the first character
  size_t length = 0;  // bytes covered; 0 = unknown/absent
  int line = 0;       // 1-based; 0 = unknown/absent
  int column = 1;     // 1-based

  bool valid() const { return line > 0; }

  /// \brief "line L, column C" — the phrasing used by parser errors.
  std::string Describe() const {
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column);
  }

  /// \brief The smallest span covering both `*this` and `other`.
  SourceSpan Union(const SourceSpan& other) const {
    if (!valid()) return other;
    if (!other.valid()) return *this;
    SourceSpan out = offset <= other.offset ? *this : other;
    const size_t end_a = offset + length;
    const size_t end_b = other.offset + other.length;
    const size_t end = end_a > end_b ? end_a : end_b;
    out.length = end - out.offset;
    return out;
  }
};

}  // namespace eslev

#endif  // ESLEV_SQL_SOURCE_SPAN_H_
