// Token stream produced by the ESL-EV lexer.

#ifndef ESLEV_SQL_TOKEN_H_
#define ESLEV_SQL_TOKEN_H_

#include <cstdint>
#include <string>

#include "sql/source_span.h"

namespace eslev {

enum class TokenType : int {
  kEnd = 0,
  kIdentifier,   // readings, r1, SELECT (keywords resolved by the parser)
  kInteger,      // 42
  kFloat,        // 1.5
  kString,       // 'person'
  kLParen,       // (
  kRParen,       // )
  kLBracket,     // [
  kRBracket,     // ]
  kComma,        // ,
  kDot,          // .
  kSemicolon,    // ;
  kStar,         // *
  kPlus,         // +
  kMinus,        // -
  kSlash,        // /
  kPercent,      // %
  kBang,         // !   (negative SEQ arguments)
  kEq,           // =
  kNe,           // <> or !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
};

/// \brief Token name for diagnostics.
const char* TokenTypeToString(TokenType t);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // raw text (string literals unquoted)
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;     // byte offset into the query for error messages
  size_t length = 0;     // raw bytes consumed (quotes/escapes included)
  int line = 1;
  int column = 1;

  SourceSpan span() const { return SourceSpan{offset, length, line, column}; }

  std::string Describe() const;
};

}  // namespace eslev

#endif  // ESLEV_SQL_TOKEN_H_
