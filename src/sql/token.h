// Token stream produced by the ESL-EV lexer.

#ifndef ESLEV_SQL_TOKEN_H_
#define ESLEV_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace eslev {

enum class TokenType : int {
  kEnd = 0,
  kIdentifier,   // readings, r1, SELECT (keywords resolved by the parser)
  kInteger,      // 42
  kFloat,        // 1.5
  kString,       // 'person'
  kLParen,       // (
  kRParen,       // )
  kLBracket,     // [
  kRBracket,     // ]
  kComma,        // ,
  kDot,          // .
  kSemicolon,    // ;
  kStar,         // *
  kPlus,         // +
  kMinus,        // -
  kSlash,        // /
  kPercent,      // %
  kBang,         // !   (negative SEQ arguments)
  kEq,           // =
  kNe,           // <> or !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
};

/// \brief Token name for diagnostics.
const char* TokenTypeToString(TokenType t);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // raw text (string literals unquoted)
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;     // byte offset into the query for error messages
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

}  // namespace eslev

#endif  // ESLEV_SQL_TOKEN_H_
