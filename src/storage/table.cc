#include "storage/table.h"

#include <algorithm>

namespace eslev {

Status Table::Insert(std::vector<Value> values, Timestamp ts) {
  ESLEV_ASSIGN_OR_RETURN(Tuple t, MakeTuple(schema_, std::move(values), ts));
  return InsertTuple(t);
}

Status Table::InsertTuple(const Tuple& tuple) {
  if (tuple.size() != schema_->num_fields()) {
    return Status::Invalid("row arity does not match table " + name_);
  }
  rows_.push_back(tuple);
  if (indexed_column_) {
    index_.emplace(tuple.value(*indexed_column_).Hash(), rows_.size() - 1);
  }
  return Status::OK();
}

size_t Table::Scan(const std::function<bool(const Tuple&)>& pred,
                   const std::function<void(const Tuple&)>& visit) const {
  size_t n = 0;
  for (const Tuple& row : rows_) {
    if (!pred || pred(row)) {
      visit(row);
      ++n;
    }
  }
  return n;
}

bool Table::Any(const std::function<bool(const Tuple&)>& pred) const {
  for (const Tuple& row : rows_) {
    if (pred(row)) return true;
  }
  return false;
}

Status Table::ScanEq(const std::string& column, const Value& v,
                     const std::function<void(const Tuple&)>& visit) const {
  ESLEV_ASSIGN_OR_RETURN(size_t col, schema_->FieldIndex(column));
  if (indexed_column_ && *indexed_column_ == col) {
    auto range = index_.equal_range(v.Hash());
    for (auto it = range.first; it != range.second; ++it) {
      const Tuple& row = rows_[it->second];
      if (row.value(col) == v) visit(row);
    }
    return Status::OK();
  }
  for (const Tuple& row : rows_) {
    if (row.value(col) == v) visit(row);
  }
  return Status::OK();
}

Result<size_t> Table::Update(const std::function<bool(const Tuple&)>& pred,
                             const std::string& set_column,
                             const Value& set_value) {
  ESLEV_ASSIGN_OR_RETURN(size_t col, schema_->FieldIndex(set_column));
  size_t n = 0;
  for (Tuple& row : rows_) {
    if (pred(row)) {
      row.mutable_value(col) = set_value;
      ++n;
    }
  }
  if (n > 0 && indexed_column_ && *indexed_column_ == col) ReindexAll();
  return n;
}

size_t Table::Delete(const std::function<bool(const Tuple&)>& pred) {
  const size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(), pred), rows_.end());
  const size_t removed = before - rows_.size();
  if (removed > 0 && indexed_column_) ReindexAll();
  return removed;
}

Status Table::CreateIndex(const std::string& column) {
  ESLEV_ASSIGN_OR_RETURN(size_t col, schema_->FieldIndex(column));
  indexed_column_ = col;
  ReindexAll();
  return Status::OK();
}

bool Table::HasIndex(const std::string& column) const {
  if (!indexed_column_) return false;
  const int col = schema_->FindField(column);
  return col >= 0 && static_cast<size_t>(col) == *indexed_column_;
}

Status Table::SaveState(BinaryEncoder* enc) const {
  enc->PutBool(indexed_column_.has_value());
  if (indexed_column_) {
    enc->PutU32(static_cast<uint32_t>(*indexed_column_));
  }
  enc->PutU32(static_cast<uint32_t>(rows_.size()));
  for (const Tuple& row : rows_) {
    enc->PutTuple(row);
  }
  return Status::OK();
}

Status Table::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(bool has_index, dec->GetBool());
  std::optional<size_t> indexed_column;
  if (has_index) {
    ESLEV_ASSIGN_OR_RETURN(uint32_t col, dec->GetU32());
    if (col >= schema_->num_fields()) {
      return Status::IoError("table '" + name_ +
                             "': indexed column out of range");
    }
    indexed_column = col;
  }
  ESLEV_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ESLEV_ASSIGN_OR_RETURN(Tuple row, dec->GetTuple());
    if (row.size() != schema_->num_fields()) {
      return Status::IoError("table '" + name_ +
                             "': checkpointed row arity mismatch");
    }
    rows.push_back(std::move(row));
  }
  rows_ = std::move(rows);
  indexed_column_ = indexed_column;
  ReindexAll();
  return Status::OK();
}

void Table::ReindexAll() {
  index_.clear();
  if (!indexed_column_) return;
  for (size_t i = 0; i < rows_.size(); ++i) {
    index_.emplace(rows_[i].value(*indexed_column_).Hash(), i);
  }
}

}  // namespace eslev
