// Table: an in-memory persistent relation for stream-DB spanning queries
// (paper §2.1: context retrieval, database updates / location tracking).

#ifndef ESLEV_STORAGE_TABLE_H_
#define ESLEV_STORAGE_TABLE_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "recovery/codec.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace eslev {

class Table {
 public:
  Table(std::string name, SchemaPtr schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// \brief Append a row (validated and coerced against the schema).
  Status Insert(std::vector<Value> values, Timestamp ts = 0);

  /// \brief Append an already validated tuple.
  Status InsertTuple(const Tuple& tuple);

  /// \brief Visit rows matching `pred` (all rows if pred is empty);
  /// return the number visited. Uses the hash index when an equality
  /// lookup was requested via ScanEq.
  size_t Scan(const std::function<bool(const Tuple&)>& pred,
              const std::function<void(const Tuple&)>& visit) const;

  /// \brief True iff any row satisfies `pred`.
  bool Any(const std::function<bool(const Tuple&)>& pred) const;

  /// \brief Index-accelerated equality probe on `column`; falls back to a
  /// scan when no index exists. Visits every row whose column equals `v`.
  Status ScanEq(const std::string& column, const Value& v,
                const std::function<void(const Tuple&)>& visit) const;

  /// \brief Update matching rows: for each row where `pred` holds, set
  /// column `set_column` to `set_value`. Returns rows updated.
  Result<size_t> Update(const std::function<bool(const Tuple&)>& pred,
                        const std::string& set_column, const Value& set_value);

  /// \brief Delete matching rows; returns rows deleted.
  size_t Delete(const std::function<bool(const Tuple&)>& pred);

  /// \brief Build (or rebuild) a hash index on `column` to accelerate
  /// ScanEq; maintained incrementally on insert/update/delete.
  Status CreateIndex(const std::string& column);

  bool HasIndex(const std::string& column) const;

  /// \brief Serialize rows + index configuration (checkpoint). The hash
  /// index itself is rebuilt on restore, not persisted.
  Status SaveState(BinaryEncoder* enc) const;
  /// \brief Restore state saved by SaveState (schema must already match).
  Status RestoreState(BinaryDecoder* dec);

 private:
  void ReindexAll();

  std::string name_;
  SchemaPtr schema_;
  std::vector<Tuple> rows_;
  // column index -> (value hash map -> row ids)
  std::optional<size_t> indexed_column_;
  std::unordered_multimap<size_t, size_t> index_;  // value hash -> row id
};

}  // namespace eslev

#endif  // ESLEV_STORAGE_TABLE_H_
