// Operator: base class of the push-based execution DAG.
//
// Execution model (single-threaded, run-to-completion): the Engine pushes
// a source tuple into a Stream, which forwards it to subscribed
// operators; operators process and Emit() derived tuples to their sinks,
// which may include other operators, derived Streams, and user
// callbacks. Heartbeats (OnHeartbeat) carry time forward without tuples,
// enabling *active expiration* — the paper's requirement that
// EXCEPTION_SEQ window expirations fire without new arrivals (§3.1.3).
//
// Observability (DESIGN.md §9): the public entry points OnTuple /
// OnHeartbeat are non-virtual wrappers that count traffic into relaxed
// atomics before dispatching to the virtual ProcessTuple /
// ProcessHeartbeat hooks that subclasses implement. Counting at the
// dispatch boundary means every delivery path — Stream fan-out, Emit()
// chaining, and direct calls from tests/benches — is measured, with no
// locks on the hot path.

#ifndef ESLEV_STREAM_OPERATOR_H_
#define ESLEV_STREAM_OPERATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "recovery/codec.h"
#include "types/tuple.h"
#include "types/tuple_batch.h"

namespace eslev {

/// \brief (name, value) pairs reported by Operator::AppendStats — the
/// operator-specific gauges EXPLAIN ANALYZE and Engine::Metrics expose
/// beyond the universal in/out/heartbeat counters.
using OperatorStatList = std::vector<std::pair<std::string, int64_t>>;

class Operator {
 public:
  virtual ~Operator() = default;

  /// \brief Process one input tuple arriving on `port` (operators with a
  /// single input use port 0). Non-virtual: counts, then dispatches to
  /// ProcessTuple.
  Status OnTuple(size_t port, const Tuple& tuple) {
    tuples_in_.fetch_add(1, std::memory_order_relaxed);
    return ProcessTuple(port, tuple);
  }

  /// \brief Process an ordered run of tuples from one stream arriving on
  /// `port` (DESIGN.md §13). Non-virtual: counts the batch and its
  /// tuples, then dispatches to ProcessBatch. Must be observationally
  /// identical to calling OnTuple once per element in order — the default
  /// ProcessBatch guarantees this by looping, and native overrides are
  /// held to it by the differential sweeps.
  Status OnBatch(size_t port, const TupleBatch& batch) {
    if (batch.empty()) return Status::OK();
    tuples_in_.fetch_add(batch.size(), std::memory_order_relaxed);
    batches_in_.fetch_add(1, std::memory_order_relaxed);
    return ProcessBatch(port, batch);
  }

  /// \brief Advance wall-clock/application time without a tuple.
  /// Non-virtual: counts, then dispatches to ProcessHeartbeat.
  Status OnHeartbeat(Timestamp now) {
    heartbeats_in_.fetch_add(1, std::memory_order_relaxed);
    return ProcessHeartbeat(now);
  }

  /// \brief Connect `op` as a downstream sink receiving on `port`.
  void AddSink(Operator* op, size_t port = 0) { sinks_.push_back({op, port}); }

  uint64_t tuples_in() const {
    return tuples_in_.load(std::memory_order_relaxed);
  }
  uint64_t tuples_emitted() const {
    return tuples_out_.load(std::memory_order_relaxed);
  }
  uint64_t heartbeats_in() const {
    return heartbeats_in_.load(std::memory_order_relaxed);
  }
  uint64_t batches_in() const {
    return batches_in_.load(std::memory_order_relaxed);
  }
  /// \brief Tuples that arrived inside a batch but were processed through
  /// the per-tuple fallback because this operator has no native batch
  /// path. batches_in() > 0 with batch_fallback_tuples() == 0 means the
  /// operator ran natively vectorized.
  uint64_t batch_fallback_tuples() const {
    return batch_fallback_tuples_.load(std::memory_order_relaxed);
  }

  /// \brief Short display name used in metrics keys and EXPLAIN ANALYZE
  /// (set by the planner, e.g. "SeqOperator"). Empty when the operator
  /// was constructed outside a plan.
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// \brief Append operator-specific stats (retained history, window
  /// buffer size, probe counts, ...). Base: none.
  virtual void AppendStats(OperatorStatList* out) const { (void)out; }

  /// \brief Serialize all mutable state into `enc` for a checkpoint
  /// (DESIGN.md §10). Stateless operators — the default — write nothing.
  /// The universal in/out/heartbeat counters are captured separately by
  /// the engine; implementations serialize only subclass state.
  virtual Status SaveState(BinaryEncoder* enc) const {
    (void)enc;
    return Status::OK();
  }

  /// \brief Restore state previously written by SaveState. Called on a
  /// freshly planned operator with identical configuration; must consume
  /// the decoder exactly. The stateless default expects an empty blob.
  virtual Status RestoreState(BinaryDecoder* dec) {
    if (!dec->AtEnd()) {
      return Status::IoError("checkpoint carries state for stateless operator '" +
                             label_ + "'");
    }
    return Status::OK();
  }

  /// \brief Reload the dispatch-boundary counters captured at checkpoint
  /// time, so post-restore metrics continue instead of restarting at 0.
  void RestoreCounters(uint64_t tuples_in, uint64_t tuples_out,
                       uint64_t heartbeats_in) {
    tuples_in_.store(tuples_in, std::memory_order_relaxed);
    tuples_out_.store(tuples_out, std::memory_order_relaxed);
    heartbeats_in_.store(heartbeats_in, std::memory_order_relaxed);
  }

 protected:
  /// \brief Subclass hook for tuple processing.
  virtual Status ProcessTuple(size_t port, const Tuple& tuple) = 0;

  /// \brief Subclass hook for batch processing. Default: per-tuple
  /// fallback — every existing operator keeps working under batched
  /// delivery with unchanged semantics. Calls ProcessTuple directly (not
  /// OnTuple) because OnBatch already counted the tuples in.
  virtual Status ProcessBatch(size_t port, const TupleBatch& batch) {
    batch_fallback_tuples_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (const Tuple& t : batch.tuples()) {
      ESLEV_RETURN_NOT_OK(ProcessTuple(port, t));
    }
    return Status::OK();
  }

  /// \brief Subclass hook for heartbeats. Default: propagate to sinks so
  /// expirations cascade.
  virtual Status ProcessHeartbeat(Timestamp now) { return EmitHeartbeat(now); }

  /// \brief Forward a derived tuple to all sinks.
  Status Emit(const Tuple& tuple) {
    tuples_out_.fetch_add(1, std::memory_order_relaxed);
    for (const Sink& s : sinks_) {
      ESLEV_RETURN_NOT_OK(s.op->OnTuple(s.port, tuple));
    }
    return Status::OK();
  }

  /// \brief Forward a derived batch to all sinks in one crossing. The
  /// batch must list emissions in the order Emit() would have produced
  /// them tuple-at-a-time.
  Status EmitBatch(const TupleBatch& batch) {
    if (batch.empty()) return Status::OK();
    tuples_out_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (const Sink& s : sinks_) {
      ESLEV_RETURN_NOT_OK(s.op->OnBatch(s.port, batch));
    }
    return Status::OK();
  }

  Status EmitHeartbeat(Timestamp now) {
    for (const Sink& s : sinks_) {
      ESLEV_RETURN_NOT_OK(s.op->OnHeartbeat(now));
    }
    return Status::OK();
  }

 private:
  struct Sink {
    Operator* op;
    size_t port;
  };
  std::vector<Sink> sinks_;
  std::string label_;
  std::atomic<uint64_t> tuples_in_{0};
  std::atomic<uint64_t> tuples_out_{0};
  std::atomic<uint64_t> heartbeats_in_{0};
  std::atomic<uint64_t> batches_in_{0};
  std::atomic<uint64_t> batch_fallback_tuples_{0};
};

}  // namespace eslev

#endif  // ESLEV_STREAM_OPERATOR_H_
