// Operator: base class of the push-based execution DAG.
//
// Execution model (single-threaded, run-to-completion): the Engine pushes
// a source tuple into a Stream, which forwards it to subscribed
// operators; operators process and Emit() derived tuples to their sinks,
// which may include other operators, derived Streams, and user
// callbacks. Heartbeats (OnHeartbeat) carry time forward without tuples,
// enabling *active expiration* — the paper's requirement that
// EXCEPTION_SEQ window expirations fire without new arrivals (§3.1.3).

#ifndef ESLEV_STREAM_OPERATOR_H_
#define ESLEV_STREAM_OPERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "types/tuple.h"

namespace eslev {

class Operator {
 public:
  virtual ~Operator() = default;

  /// \brief Process one input tuple arriving on `port` (operators with a
  /// single input use port 0).
  virtual Status OnTuple(size_t port, const Tuple& tuple) = 0;

  /// \brief Advance wall-clock/application time without a tuple.
  /// Default: propagate to sinks so expirations cascade.
  virtual Status OnHeartbeat(Timestamp now) { return EmitHeartbeat(now); }

  /// \brief Connect `op` as a downstream sink receiving on `port`.
  void AddSink(Operator* op, size_t port = 0) { sinks_.push_back({op, port}); }

  uint64_t tuples_emitted() const { return tuples_emitted_; }

 protected:
  /// \brief Forward a derived tuple to all sinks.
  Status Emit(const Tuple& tuple) {
    ++tuples_emitted_;
    for (const Sink& s : sinks_) {
      ESLEV_RETURN_NOT_OK(s.op->OnTuple(s.port, tuple));
    }
    return Status::OK();
  }

  Status EmitHeartbeat(Timestamp now) {
    for (const Sink& s : sinks_) {
      ESLEV_RETURN_NOT_OK(s.op->OnHeartbeat(now));
    }
    return Status::OK();
  }

 private:
  struct Sink {
    Operator* op;
    size_t port;
  };
  std::vector<Sink> sinks_;
  uint64_t tuples_emitted_ = 0;
};

}  // namespace eslev

#endif  // ESLEV_STREAM_OPERATOR_H_
