#include "stream/stream.h"

namespace eslev {

Status Stream::Push(const Tuple& tuple) {
  if (tuple.size() != schema_->num_fields()) {
    return Status::Invalid("tuple arity " + std::to_string(tuple.size()) +
                           " does not match stream '" + name_ +
                           "' arity " +
                           std::to_string(schema_->num_fields()));
  }
  ++tuples_pushed_;
  Retain(tuple);
  for (const Subscriber& s : subscribers_) {
    ESLEV_RETURN_NOT_OK(s.op->OnTuple(s.port, tuple));
  }
  if (tuples_pushed_ <= deliver_after_seq_) {
    callbacks_suppressed_ += callbacks_.empty() ? 0 : 1;
  } else {
    for (const TupleCallback& cb : callbacks_) {
      cb(tuple);
    }
  }
  return Status::OK();
}

Status Stream::PushBatch(const TupleBatch& batch) {
  if (batch.empty()) return Status::OK();
  for (const Tuple& t : batch.tuples()) {
    if (t.size() != schema_->num_fields()) {
      return Status::Invalid("tuple arity " + std::to_string(t.size()) +
                             " does not match stream '" + name_ + "' arity " +
                             std::to_string(schema_->num_fields()));
    }
  }
  const uint64_t base = tuples_pushed_;
  tuples_pushed_ += batch.size();
  if (retention_ > 0) {
    retained_.insert(retained_.end(), batch.tuples().begin(),
                     batch.tuples().end());
    TrimRetention(batch.back_ts());
  }
  for (const Subscriber& s : subscribers_) {
    ESLEV_RETURN_NOT_OK(s.op->OnBatch(s.port, batch));
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    // Same suppression rule as Push: lifetime sequence of tuple i is
    // base + i + 1.
    if (base + i + 1 <= deliver_after_seq_) {
      callbacks_suppressed_ += callbacks_.empty() ? 0 : 1;
      continue;
    }
    for (const TupleCallback& cb : callbacks_) {
      cb(batch[i]);
    }
  }
  return Status::OK();
}

Status Stream::Heartbeat(Timestamp now) {
  // Watermark fan-out (ShardedEngine) can redeliver a tick a shard has
  // already seen; heartbeats older than the last one are no-ops for every
  // operator, so skip the fan-out entirely.
  if (now < last_heartbeat_) return Status::OK();
  last_heartbeat_ = now;
  ++heartbeats_delivered_;
  TrimRetention(now);
  for (const Subscriber& s : subscribers_) {
    ESLEV_RETURN_NOT_OK(s.op->OnHeartbeat(now));
  }
  return Status::OK();
}

void Stream::Retain(const Tuple& tuple) {
  if (retention_ <= 0) return;
  retained_.push_back(tuple);
  TrimRetention(tuple.ts());
}

void Stream::TrimRetention(Timestamp now) {
  if (retention_ <= 0) return;
  while (!retained_.empty() && retained_.front().ts() < now - retention_) {
    retained_.pop_front();
  }
}

Status Stream::SaveState(BinaryEncoder* enc) const {
  enc->PutU64(tuples_pushed_);
  enc->PutU64(heartbeats_delivered_);
  enc->PutI64(last_heartbeat_);
  enc->PutI64(retention_);
  enc->PutU32(static_cast<uint32_t>(retained_.size()));
  for (const Tuple& t : retained_) {
    enc->PutTuple(t);
  }
  return Status::OK();
}

Status Stream::RestoreState(BinaryDecoder* dec) {
  ESLEV_ASSIGN_OR_RETURN(tuples_pushed_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(heartbeats_delivered_, dec->GetU64());
  ESLEV_ASSIGN_OR_RETURN(last_heartbeat_, dec->GetI64());
  ESLEV_ASSIGN_OR_RETURN(retention_, dec->GetI64());
  ESLEV_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  retained_.clear();
  for (uint32_t i = 0; i < n; ++i) {
    ESLEV_ASSIGN_OR_RETURN(Tuple t, dec->GetTuple());
    retained_.push_back(std::move(t));
  }
  return Status::OK();
}

}  // namespace eslev
