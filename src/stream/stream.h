// Stream: a named, schema-typed, append-only tuple stream with fan-out to
// subscribed operators and user callbacks, plus an optional bounded
// retention buffer that serves ad-hoc snapshot queries (paper §2.1:
// "current location of the patient ... queried directly ... without
// having to store such location data all the time in a persistent
// database").

#ifndef ESLEV_STREAM_STREAM_H_
#define ESLEV_STREAM_STREAM_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "stream/operator.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace eslev {

using TupleCallback = std::function<void(const Tuple&)>;

class Stream {
 public:
  Stream(std::string name, SchemaPtr schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }

  /// \brief Subscribe a downstream operator (delivery in subscription
  /// order, which the planner relies on for same-stream self-references).
  void Subscribe(Operator* op, size_t port = 0) {
    subscribers_.push_back({op, port});
  }

  /// \brief Subscribe a user callback (invoked after operators).
  void SubscribeCallback(TupleCallback cb) {
    callbacks_.push_back(std::move(cb));
  }

  /// \brief Remove every subscription of `op` (all ports), preserving the
  /// delivery order of the remaining subscribers. Supports runtime query
  /// unregistration (DESIGN.md §17); unknown operators are a no-op.
  void Unsubscribe(const Operator* op) {
    for (size_t i = subscribers_.size(); i > 0; --i) {
      if (subscribers_[i - 1].op == op) {
        subscribers_.erase(subscribers_.begin() + (i - 1));
      }
    }
  }

  /// \brief Keep the most recent `duration` of tuples for snapshots.
  /// 0 disables retention (the default).
  void SetRetention(Duration duration) { retention_ = duration; }

  /// \brief The retained suffix of the stream (most recent first-in order).
  const std::deque<Tuple>& retained() const { return retained_; }

  /// \brief Append a tuple: validates arity, retains, and fans out.
  Status Push(const Tuple& tuple);

  /// \brief Append an ordered batch: one subscriber crossing (OnBatch)
  /// instead of one per tuple; retention trims once at the last
  /// timestamp; per-tuple callback delivery and replay suppression are
  /// unchanged (DESIGN.md §13).
  Status PushBatch(const TupleBatch& batch);

  /// \brief Propagate a heartbeat to subscribers and trim retention.
  Status Heartbeat(Timestamp now);

  uint64_t tuples_pushed() const { return tuples_pushed_; }
  uint64_t heartbeats_delivered() const { return heartbeats_delivered_; }
  size_t retained_count() const { return retained_.size(); }

  /// \brief Suppress user callbacks until more than `seq` tuples have been
  /// pushed over this stream's lifetime. Crash recovery sets this on
  /// derived streams before WAL replay so consumers do not re-observe
  /// emissions already delivered before the crash (DESIGN.md §10).
  /// Operator fan-out is NOT suppressed — downstream state must rebuild.
  void set_deliver_after_seq(uint64_t seq) { deliver_after_seq_ = seq; }
  uint64_t callbacks_suppressed() const { return callbacks_suppressed_; }

  /// \brief Serialize counters, retention clock, and retained suffix.
  Status SaveState(BinaryEncoder* enc) const;
  /// \brief Restore state saved by SaveState (schema must already match).
  Status RestoreState(BinaryDecoder* dec);

 private:
  void Retain(const Tuple& tuple);
  void TrimRetention(Timestamp now);

  struct Subscriber {
    Operator* op;
    size_t port;
  };

  std::string name_;
  SchemaPtr schema_;
  std::vector<Subscriber> subscribers_;
  std::vector<TupleCallback> callbacks_;
  Duration retention_ = 0;
  std::deque<Tuple> retained_;
  uint64_t tuples_pushed_ = 0;
  uint64_t heartbeats_delivered_ = 0;
  Timestamp last_heartbeat_ = kMinTimestamp;
  uint64_t deliver_after_seq_ = 0;
  uint64_t callbacks_suppressed_ = 0;
};

/// \brief Adapter operator that pushes every received tuple into a Stream
/// (the sink of `INSERT INTO <stream> SELECT ...` transducers).
class StreamInsertOperator : public Operator {
 public:
  explicit StreamInsertOperator(Stream* stream) : stream_(stream) {}

 protected:
  Status ProcessTuple(size_t, const Tuple& tuple) override {
    return stream_->Push(tuple);
  }

  Status ProcessBatch(size_t, const TupleBatch& batch) override {
    return stream_->PushBatch(batch);
  }

  Status ProcessHeartbeat(Timestamp now) override {
    return stream_->Heartbeat(now);
  }

 private:
  Stream* stream_;
};

}  // namespace eslev

#endif  // ESLEV_STREAM_STREAM_H_
