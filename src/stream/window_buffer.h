// WindowBuffer: the retained-tuple state behind a PRECEDING sliding
// window (RANGE of time, or ROWS count).

#ifndef ESLEV_STREAM_WINDOW_BUFFER_H_
#define ESLEV_STREAM_WINDOW_BUFFER_H_

#include <deque>

#include "common/time.h"
#include "types/tuple.h"

namespace eslev {

/// \brief Holds the tuples of a PRECEDING window.
///
/// Time windows are *inclusive*: at current time T with length L the
/// window covers timestamps in [T - L, T] (the paper's duplicate filter
/// treats a reading exactly 1 second earlier as a duplicate).
class WindowBuffer {
 public:
  WindowBuffer(bool row_based, int64_t length)
      : row_based_(row_based), length_(length) {}

  /// \brief Append a tuple (timestamps must be non-decreasing) and evict
  /// anything that fell out of the window.
  void Add(const Tuple& tuple) {
    tuples_.push_back(tuple);
    EvictAt(tuple.ts());
  }

  /// \brief Bulk append with one eviction pass at the last timestamp.
  /// Final contents are identical to per-tuple Add() — eviction is
  /// monotone in the watermark, so only the deepest cut matters — which
  /// is only valid when nothing probes the buffer mid-batch.
  template <typename Iter>
  void AddBatch(Iter first, Iter last) {
    if (first == last) return;
    tuples_.insert(tuples_.end(), first, last);
    EvictAt(tuples_.back().ts());
  }

  /// \brief Evict expired tuples as of `now` (heartbeats).
  void EvictAt(Timestamp now) {
    if (row_based_) {
      while (tuples_.size() > static_cast<size_t>(length_)) {
        tuples_.pop_front();
      }
    } else {
      while (!tuples_.empty() && tuples_.front().ts() < now - length_) {
        tuples_.pop_front();
      }
    }
  }

  /// \brief Replace the contents wholesale (checkpoint restore). Bypasses
  /// eviction: the tuples were already within the window when saved.
  void Assign(std::deque<Tuple> tuples) { tuples_ = std::move(tuples); }

  const std::deque<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  void Clear() { tuples_.clear(); }

  bool row_based() const { return row_based_; }
  int64_t length() const { return length_; }

 private:
  bool row_based_;
  int64_t length_;
  std::deque<Tuple> tuples_;
};

}  // namespace eslev

#endif  // ESLEV_STREAM_WINDOW_BUFFER_H_
