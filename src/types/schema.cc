#include "types/schema.h"

#include "common/string_util.h"

namespace eslev {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(AsciiToLower(fields_[i].name), i);
  }
}

int Schema::FindField(const std::string& name) const {
  auto it = index_.find(AsciiToLower(name));
  if (it == index_.end()) return -1;
  return static_cast<int>(it->second);
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  int i = FindField(name);
  if (i < 0) {
    return Status::NotFound("column not found: " + name +
                            " in schema (" + ToString() + ")");
  }
  return static_cast<size_t>(i);
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += TypeIdToString(fields_[i].type);
  }
  return out;
}

}  // namespace eslev
