// Schema: ordered, named, typed columns of a stream or table.

#ifndef ESLEV_TYPES_SCHEMA_H_
#define ESLEV_TYPES_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace eslev {

/// \brief One column of a schema.
struct Field {
  std::string name;
  TypeId type = TypeId::kString;

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type;
  }
};

/// \brief Immutable column layout shared by all tuples of a stream/table.
///
/// Column-name lookup is case-insensitive (SQL identifiers).
class Schema {
 public:
  explicit Schema(std::vector<Field> fields);

  /// \brief Convenience: build a shared schema from fields.
  static std::shared_ptr<const Schema> Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// \brief Index of a column by (case-insensitive) name; -1 if absent.
  int FindField(const std::string& name) const;

  /// \brief Index of a column, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// \brief "name TYPE, name TYPE, ..." for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;  // lower-cased name
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace eslev

#endif  // ESLEV_TYPES_SCHEMA_H_
