#include "types/tuple.h"

namespace eslev {

Result<Value> Tuple::ValueByName(const std::string& name) const {
  if (!schema_) return Status::Invalid("tuple has no schema");
  ESLEV_ASSIGN_OR_RETURN(size_t i, schema_->FieldIndex(name));
  return values_[i];
}

bool Tuple::Equals(const Tuple& other) const {
  return ts_ == other.ts_ && values_ == other.values_;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")@";
  out += FormatTimestamp(ts_);
  return out;
}

Result<Tuple> MakeTuple(const SchemaPtr& schema, std::vector<Value> values,
                        Timestamp ts) {
  if (!schema) return Status::Invalid("null schema");
  if (values.size() != schema->num_fields()) {
    return Status::Invalid("tuple arity " + std::to_string(values.size()) +
                           " does not match schema arity " +
                           std::to_string(schema->num_fields()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const TypeId want = schema->field(i).type;
    const TypeId got = values[i].type();
    if (got == TypeId::kNull || got == want) continue;
    if (want == TypeId::kDouble && got == TypeId::kInt64) {
      values[i] = Value::Double(static_cast<double>(values[i].int_value()));
      continue;
    }
    if (want == TypeId::kTimestamp && got == TypeId::kInt64) {
      values[i] = Value::Time(values[i].int_value());
      continue;
    }
    if (want == TypeId::kInt64 && got == TypeId::kTimestamp) {
      values[i] = Value::Int(values[i].time_value());
      continue;
    }
    return Status::TypeError(
        std::string("column ") + schema->field(i).name + " expects " +
        TypeIdToString(want) + " but got " + TypeIdToString(got));
  }
  return Tuple(schema, std::move(values), ts);
}

}  // namespace eslev
