// Tuple: one timestamped row of a data stream (append-only relation model).

#ifndef ESLEV_TYPES_TUPLE_H_
#define ESLEV_TYPES_TUPLE_H_

#include <string>
#include <vector>

#include "common/time.h"
#include "types/schema.h"
#include "types/value.h"

namespace eslev {

/// \brief A timestamped row. RFID primitive events are tuples
/// (reader_id, tag_id, read_time) whose `ts` is the observation time.
///
/// The timestamp is carried out-of-band (every stream tuple has one, per
/// the standard DSMS model); workload generators typically also mirror it
/// into a column such as `read_time` so queries can reference it.
class Tuple {
 public:
  Tuple() = default;
  Tuple(SchemaPtr schema, std::vector<Value> values, Timestamp ts)
      : schema_(std::move(schema)), values_(std::move(values)), ts_(ts) {}

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<Value>& values() const { return values_; }
  size_t size() const { return values_.size(); }
  Timestamp ts() const { return ts_; }
  void set_ts(Timestamp ts) { ts_ = ts; }

  const Value& value(size_t i) const { return values_[i]; }
  Value& mutable_value(size_t i) { return values_[i]; }

  /// \brief Provenance bit (DESIGN.md §15): true for reads synthesized by
  /// the ingest cleaning stage's missed-read interpolation, false for
  /// observed reads. In-memory only — not part of the frozen on-disk
  /// tuple encoding (checkpoints that must persist it encode it
  /// alongside the tuple) and excluded from Equals/ToString so query
  /// output bytes are unchanged.
  bool synthesized() const { return synthesized_; }
  void set_synthesized(bool v) { synthesized_ = v; }

  /// \brief Value by column name, or NotFound.
  Result<Value> ValueByName(const std::string& name) const;

  /// \brief Structural equality of values and timestamp (schema by layout).
  bool Equals(const Tuple& other) const;

  /// \brief "(v1, v2, ...)@ts" for test failure messages.
  std::string ToString() const;

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
  Timestamp ts_ = 0;
  bool synthesized_ = false;
};

/// \brief Build a tuple validating arity and (loosely) types against the
/// schema: kNull is allowed anywhere; ints widen to double columns.
Result<Tuple> MakeTuple(const SchemaPtr& schema, std::vector<Value> values,
                        Timestamp ts);

}  // namespace eslev

#endif  // ESLEV_TYPES_TUPLE_H_
