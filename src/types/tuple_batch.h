// TupleBatch: an ordered run of tuples from one stream, the unit of
// vectorized execution (DESIGN.md §13).
//
// A batch is a *window onto the input order*, not a reordering: tuple i
// precedes tuple i+1 in arrival order, and timestamps are non-decreasing
// exactly as they would be tuple-at-a-time. Operators that implement a
// native ProcessBatch path rely on both invariants; everything else
// receives the batch through the per-tuple fallback and cannot tell the
// difference. Heartbeats never travel inside a batch — they are batch
// *boundaries* (the engine flushes pending batches before fanning a
// heartbeat), so active-expiration timing is identical in both modes.

#ifndef ESLEV_TYPES_TUPLE_BATCH_H_
#define ESLEV_TYPES_TUPLE_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "types/tuple.h"

namespace eslev {

class TupleBatch {
 public:
  TupleBatch() = default;
  explicit TupleBatch(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {}

  void Reserve(size_t n) { tuples_.reserve(n); }
  void Add(Tuple tuple) { tuples_.push_back(std::move(tuple)); }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  void Clear() { tuples_.clear(); }

  const Tuple& operator[](size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// \brief First/last timestamps (callers check !empty() first).
  Timestamp front_ts() const { return tuples_.front().ts(); }
  Timestamp back_ts() const { return tuples_.back().ts(); }

  /// \brief Keep only the rows whose selection byte is non-zero
  /// (`selection.size() == size()`), preserving order — the compaction
  /// step after columnar predicate evaluation.
  void Compact(const std::vector<unsigned char>& selection) {
    size_t kept = 0;
    for (size_t i = 0; i < tuples_.size(); ++i) {
      if (!selection[i]) continue;
      if (kept != i) tuples_[kept] = std::move(tuples_[i]);
      ++kept;
    }
    tuples_.resize(kept);
  }

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace eslev

#endif  // ESLEV_TYPES_TUPLE_BATCH_H_
