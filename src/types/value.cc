#include "types/value.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace eslev {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt64:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
    case TypeId::kTimestamp:
      return "TIMESTAMP";
  }
  return "UNKNOWN";
}

Result<TypeId> ParseTypeName(const std::string& name) {
  const std::string u = AsciiToUpper(name);
  if (u == "INT" || u == "INTEGER" || u == "BIGINT") return TypeId::kInt64;
  if (u == "DOUBLE" || u == "REAL" || u == "FLOAT") return TypeId::kDouble;
  if (u == "VARCHAR" || u == "CHAR" || u == "STRING" || u == "TEXT") {
    return TypeId::kString;
  }
  if (u == "BOOL" || u == "BOOLEAN") return TypeId::kBool;
  if (u == "TIMESTAMP" || u == "TIME") return TypeId::kTimestamp;
  return Status::ParseError("unknown type name: " + name);
}

TypeId Value::type() const {
  switch (repr_.index()) {
    case 0:
      return TypeId::kNull;
    case 1:
      return TypeId::kBool;
    case 2:
      return TypeId::kInt64;
    case 3:
      return TypeId::kDouble;
    case 4:
      return TypeId::kString;
    case 5:
      return TypeId::kTimestamp;
  }
  return TypeId::kNull;
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case TypeId::kInt64:
      return static_cast<double>(int_value());
    case TypeId::kDouble:
      return double_value();
    case TypeId::kTimestamp:
      return static_cast<double>(time_value());
    default:
      return Status::TypeError("value is not numeric: " + ToString());
  }
}

Result<int64_t> Value::AsInt64() const {
  switch (type()) {
    case TypeId::kInt64:
      return int_value();
    case TypeId::kTimestamp:
      return static_cast<int64_t>(time_value());
    case TypeId::kDouble:
      return static_cast<int64_t>(double_value());
    default:
      return Status::TypeError("value is not integral: " + ToString());
  }
}

namespace {
int Spaceship(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
int Spaceship(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
}  // namespace

Result<int> Value::Compare(const Value& other) const {
  const TypeId lt = type();
  const TypeId rt = other.type();
  if (lt == TypeId::kNull || rt == TypeId::kNull) {
    if (lt == rt) return 0;
    return lt == TypeId::kNull ? -1 : 1;
  }
  // Numeric family: int/double/timestamp are mutually comparable.
  const auto numeric = [](TypeId t) {
    return t == TypeId::kInt64 || t == TypeId::kDouble ||
           t == TypeId::kTimestamp;
  };
  if (numeric(lt) && numeric(rt)) {
    if (lt == TypeId::kDouble || rt == TypeId::kDouble) {
      ESLEV_ASSIGN_OR_RETURN(double a, AsDouble());
      ESLEV_ASSIGN_OR_RETURN(double b, other.AsDouble());
      return Spaceship(a, b);
    }
    ESLEV_ASSIGN_OR_RETURN(int64_t a, AsInt64());
    ESLEV_ASSIGN_OR_RETURN(int64_t b, other.AsInt64());
    return Spaceship(a, b);
  }
  if (lt != rt) {
    return Status::TypeError(std::string("cannot compare ") +
                             TypeIdToString(lt) + " with " +
                             TypeIdToString(rt));
  }
  switch (lt) {
    case TypeId::kBool:
      return Spaceship(static_cast<int64_t>(bool_value()),
                       static_cast<int64_t>(other.bool_value()));
    case TypeId::kString:
      return string_value().compare(other.string_value()) < 0
                 ? -1
                 : (string_value() == other.string_value() ? 0 : 1);
    default:
      return Status::TypeError("unsupported comparison");
  }
}

bool Value::operator==(const Value& other) const {
  return repr_ == other.repr_;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case TypeId::kInt64:
      return std::to_string(int_value());
    case TypeId::kDouble: {
      std::string s = std::to_string(double_value());
      return s;
    }
    case TypeId::kString:
      return string_value();
    case TypeId::kTimestamp:
      return FormatTimestamp(time_value());
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case TypeId::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case TypeId::kBool:
      return std::hash<bool>{}(bool_value());
    case TypeId::kInt64:
      return std::hash<int64_t>{}(int_value());
    case TypeId::kDouble:
      return std::hash<double>{}(double_value());
    case TypeId::kString:
      return std::hash<std::string>{}(string_value());
    case TypeId::kTimestamp:
      return std::hash<int64_t>{}(time_value()) ^ 0x517cc1b727220a95ULL;
  }
  return 0;
}

}  // namespace eslev
