// Value: the runtime scalar of ESL-EV tuples and expressions.

#ifndef ESLEV_TYPES_VALUE_H_
#define ESLEV_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/time.h"

namespace eslev {

/// \brief Static types of stream/table columns and expression results.
enum class TypeId : int {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,  // microseconds, see common/time.h
};

/// \brief Human-readable type name ("INT", "VARCHAR", ...).
const char* TypeIdToString(TypeId t);

/// \brief Parse an SQL type name (INT/BIGINT/DOUBLE/REAL/VARCHAR/CHAR/
/// STRING/BOOL/BOOLEAN/TIMESTAMP) into a TypeId. Case-insensitive.
Result<TypeId> ParseTypeName(const std::string& name);

/// \brief A dynamically typed scalar. SQL NULL is TypeId::kNull.
///
/// Comparison follows SQL-ish rules restricted to what the engine needs:
/// numeric types compare across kInt64/kDouble; other cross-type
/// comparisons are a TypeError at evaluation time (caught by the binder
/// in well-typed plans).
class Value {
 public:
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value Time(Timestamp ts) { return Value(Repr(TimestampBox{ts})); }

  TypeId type() const;
  bool is_null() const { return type() == TypeId::kNull; }

  /// \brief Typed accessors; type must match exactly (checked in debug).
  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const {
    return std::get<std::string>(repr_);
  }
  Timestamp time_value() const { return std::get<TimestampBox>(repr_).ts; }

  /// \brief Numeric coercion: kInt64/kDouble/kTimestamp as double.
  Result<double> AsDouble() const;
  /// \brief Integral coercion: kInt64/kTimestamp as int64.
  Result<int64_t> AsInt64() const;

  /// \brief Three-way comparison. Error on incomparable types.
  /// NULL compares equal to NULL and less than everything else (total
  /// order for container use; SQL NULL predicate semantics are handled
  /// by the expression evaluator, not here).
  Result<int> Compare(const Value& other) const;

  /// \brief Exact structural equality (NULL == NULL is true here).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// \brief Render for output rows and debugging.
  std::string ToString() const;

  /// \brief Hash compatible with operator== (for group-by keys).
  size_t Hash() const;

 private:
  // Distinguishes kTimestamp from kInt64 inside the variant.
  struct TimestampBox {
    Timestamp ts;
    bool operator==(const TimestampBox& o) const { return ts == o.ts; }
  };
  using Repr = std::variant<std::monostate, bool, int64_t, double,
                            std::string, TimestampBox>;

  explicit Value(Repr r) : repr_(std::move(r)) {}

  Repr repr_;
};

}  // namespace eslev

#endif  // ESLEV_TYPES_VALUE_H_
