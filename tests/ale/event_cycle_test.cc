#include "ale/event_cycle.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "rfid/workloads.h"

namespace eslev {
namespace ale {
namespace {

EcSpec BasicSpec() {
  EcSpec spec;
  spec.period = Seconds(10);
  ReportSpec all;
  all.name = "all";
  spec.reports.push_back(all);
  return spec;
}

TEST(EventCycleTest, MakeValidation) {
  EcSpec no_period = BasicSpec();
  no_period.period = 0;
  EXPECT_TRUE(EventCycleProcessor::Make(no_period, 0).status().IsInvalid());

  EcSpec no_reports;
  no_reports.period = Seconds(1);
  EXPECT_TRUE(EventCycleProcessor::Make(no_reports, 0).status().IsInvalid());

  EcSpec dup = BasicSpec();
  dup.reports.push_back(dup.reports[0]);
  EXPECT_TRUE(EventCycleProcessor::Make(dup, 0).status().IsInvalid());

  EcSpec bad_pattern = BasicSpec();
  bad_pattern.reports[0].include_patterns.push_back("not-a-pattern");
  EXPECT_TRUE(
      EventCycleProcessor::Make(bad_pattern, 0).status().IsInvalid());
}

TEST(EventCycleTest, CurrentSetPerCycle) {
  auto proc = std::move(EventCycleProcessor::Make(BasicSpec(), 0)).ValueUnsafe();
  std::vector<EcCycleResult> cycles;
  proc->SetCallback([&](const EcCycleResult& r) { cycles.push_back(r); });

  ASSERT_TRUE(proc->OnReading("20.1.100", Seconds(1)).ok());
  ASSERT_TRUE(proc->OnReading("20.1.101", Seconds(2)).ok());
  ASSERT_TRUE(proc->OnReading("20.1.100", Seconds(3)).ok());  // dup tag
  // Crossing into the second cycle closes the first.
  ASSERT_TRUE(proc->OnReading("20.1.102", Seconds(12)).ok());
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].cycle_index, 0u);
  EXPECT_EQ(cycles[0].readings, 3u);
  ASSERT_EQ(cycles[0].reports.size(), 1u);
  EXPECT_EQ(cycles[0].reports[0].count, 2u);  // distinct tags
  EXPECT_EQ(cycles[0].reports[0].epcs,
            (std::vector<std::string>{"20.1.100", "20.1.101"}));
}

TEST(EventCycleTest, AdditionsAndDeletions) {
  EcSpec spec;
  spec.period = Seconds(10);
  ReportSpec adds;
  adds.name = "in";
  adds.set = ReportSet::kAdditions;
  ReportSpec dels;
  dels.name = "out";
  dels.set = ReportSet::kDeletions;
  spec.reports.push_back(adds);
  spec.reports.push_back(dels);
  auto proc = std::move(EventCycleProcessor::Make(spec, 0)).ValueUnsafe();
  std::vector<EcCycleResult> cycles;
  proc->SetCallback([&](const EcCycleResult& r) { cycles.push_back(r); });

  // Cycle 0: tags A, B.
  ASSERT_TRUE(proc->OnReading("1.1.1", Seconds(1)).ok());
  ASSERT_TRUE(proc->OnReading("1.1.2", Seconds(2)).ok());
  // Cycle 1: tags B, C.
  ASSERT_TRUE(proc->OnReading("1.1.2", Seconds(11)).ok());
  ASSERT_TRUE(proc->OnReading("1.1.3", Seconds(12)).ok());
  // Close cycle 1 too.
  ASSERT_TRUE(proc->OnTime(Seconds(20)).ok());

  ASSERT_EQ(cycles.size(), 2u);
  // Cycle 0: everything is an addition, nothing deleted.
  EXPECT_EQ(cycles[0].reports[0].epcs,
            (std::vector<std::string>{"1.1.1", "1.1.2"}));
  EXPECT_TRUE(cycles[0].reports[1].epcs.empty());
  // Cycle 1: C added, A deleted.
  EXPECT_EQ(cycles[1].reports[0].epcs, (std::vector<std::string>{"1.1.3"}));
  EXPECT_EQ(cycles[1].reports[1].epcs, (std::vector<std::string>{"1.1.1"}));
}

TEST(EventCycleTest, IncludeExcludePatterns) {
  EcSpec spec;
  spec.period = Seconds(10);
  ReportSpec r;
  r.name = "company20_high_serials";
  r.include_patterns = {"20.*.*"};
  r.exclude_patterns = {"20.*.[0-4999]"};
  spec.reports.push_back(r);
  auto proc = std::move(EventCycleProcessor::Make(spec, 0)).ValueUnsafe();
  std::vector<EcCycleResult> cycles;
  proc->SetCallback([&](const EcCycleResult& c) { cycles.push_back(c); });

  ASSERT_TRUE(proc->OnReading("20.1.7000", Seconds(1)).ok());  // in
  ASSERT_TRUE(proc->OnReading("20.1.100", Seconds(2)).ok());   // excluded
  ASSERT_TRUE(proc->OnReading("21.1.7000", Seconds(3)).ok());  // not included
  ASSERT_TRUE(proc->OnReading("garbage", Seconds(4)).ok());    // malformed
  ASSERT_TRUE(proc->OnTime(Seconds(10)).ok());

  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].readings, 4u);
  EXPECT_EQ(cycles[0].reports[0].epcs,
            (std::vector<std::string>{"20.1.7000"}));
}

TEST(EventCycleTest, CountOnlyAndGrouping) {
  EcSpec spec;
  spec.period = Seconds(10);
  ReportSpec r;
  r.name = "by_company";
  r.count_only = true;
  r.group_by_company = true;
  spec.reports.push_back(r);
  auto proc = std::move(EventCycleProcessor::Make(spec, 0)).ValueUnsafe();
  std::vector<EcCycleResult> cycles;
  proc->SetCallback([&](const EcCycleResult& c) { cycles.push_back(c); });

  ASSERT_TRUE(proc->OnReading("20.1.1", Seconds(1)).ok());
  ASSERT_TRUE(proc->OnReading("20.2.2", Seconds(2)).ok());
  ASSERT_TRUE(proc->OnReading("37.1.1", Seconds(3)).ok());
  ASSERT_TRUE(proc->OnTime(Seconds(10)).ok());

  ASSERT_EQ(cycles.size(), 1u);
  const EcReport& report = cycles[0].reports[0];
  EXPECT_TRUE(report.epcs.empty());  // count_only
  EXPECT_EQ(report.count, 3u);
  EXPECT_EQ(report.groups.at("20"), 2u);
  EXPECT_EQ(report.groups.at("37"), 1u);
}

TEST(EventCycleTest, EmptyCyclesStillReport) {
  auto proc = std::move(EventCycleProcessor::Make(BasicSpec(), 0)).ValueUnsafe();
  size_t cycles = 0;
  proc->SetCallback([&](const EcCycleResult&) { ++cycles; });
  ASSERT_TRUE(proc->OnTime(Seconds(35)).ok());
  EXPECT_EQ(cycles, 3u);  // cycles [0,10), [10,20), [20,30)
  EXPECT_EQ(proc->current_cycle_begin(), Seconds(30));
}

TEST(EventCycleTest, TimeCannotRegress) {
  auto proc = std::move(EventCycleProcessor::Make(BasicSpec(), Seconds(100))).ValueUnsafe();
  EXPECT_TRUE(proc->OnReading("1.1.1", Seconds(50)).IsOutOfRange());
  EXPECT_TRUE(proc->OnTime(Seconds(50)).IsOutOfRange());
}

TEST(EventCycleTest, DrivenFromAnEngineStream) {
  // The intended integration: the processor subscribes to a (possibly
  // already cleaned) ESL-EV stream.
  Engine engine;
  ASSERT_TRUE(
      engine.ExecuteScript("CREATE STREAM readings(reader_id, tid, read_time);")
          .ok());
  EcSpec spec;
  spec.period = Seconds(60);
  ReportSpec r;
  r.name = "company20";
  r.include_patterns = {"20.*.*"};
  r.count_only = true;
  spec.reports.push_back(r);
  auto proc = std::move(EventCycleProcessor::Make(spec, 0)).ValueUnsafe();
  std::vector<size_t> counts;
  proc->SetCallback([&](const EcCycleResult& c) {
    counts.push_back(c.reports[0].count);
  });
  EventCycleProcessor* raw = proc.get();
  ASSERT_TRUE(engine.Subscribe("readings", [raw](const Tuple& t) {
                      (void)raw->OnReading(t.value(1).string_value(),
                                           t.ts());
                    }).ok());

  rfid::EpcWorkloadOptions options;
  options.num_readings = 3000;  // 100 ms apart -> 300 s -> 5 cycles
  auto workload = rfid::MakeEpcWorkload(options);
  size_t expected_company20 = 0;
  for (const auto& e : workload.events) {
    ASSERT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
  }
  (void)expected_company20;
  ASSERT_TRUE(raw->OnTime(engine.current_time() + Minutes(2)).ok());
  EXPECT_GE(counts.size(), 5u);
  size_t total = 0;
  for (size_t c : counts) total += c;
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace ale
}  // namespace eslev
