// Unit tests for the static cost & state-bound analyzer (DESIGN.md §16):
// the symbolic per-operator bounds in analysis/state_bounds.h, the
// EXPLAIN COST surface and the StreamStats calibration hooks.

#include "analysis/cost_model.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/state_bounds.h"
#include "cep/seq_config.h"
#include "common/time.h"
#include "core/engine.h"

namespace eslev {
namespace {

SeqOperatorConfig MakeSeq(size_t n, PairingMode mode) {
  SeqOperatorConfig cfg;
  for (size_t i = 0; i < n; ++i) {
    SeqPosition pos;
    pos.alias = "P" + std::to_string(i + 1);
    cfg.positions.push_back(std::move(pos));
  }
  cfg.mode = mode;
  return cfg;
}

// ---------------------------------------------------------------------------
// SeqStateBound
// ---------------------------------------------------------------------------

TEST(SeqStateBoundTest, PrecedingWindowAnchoredLastBoundsStoredPositions) {
  SeqOperatorConfig cfg = MakeSeq(2, PairingMode::kUnrestricted);
  cfg.window = SeqWindow{Seconds(10), WindowDirection::kPreceding, 1};
  const StateBound b = SeqStateBound(cfg, {5, 7});
  EXPECT_TRUE(b.bounded);
  // Only position 0 is stored (the final position triggers matching);
  // window eviction keeps at most rate*W plus the boundary entry.
  EXPECT_DOUBLE_EQ(b.tuples, 5 * 10 + 1);
  EXPECT_NE(b.formula.find("[window]"), std::string::npos) << b.formula;
}

TEST(SeqStateBoundTest, UnrestrictedWithoutWindowIsUnbounded) {
  const SeqOperatorConfig cfg = MakeSeq(2, PairingMode::kUnrestricted);
  const StateBound b = SeqStateBound(cfg, {5, 7});
  EXPECT_FALSE(b.bounded);
  EXPECT_DOUBLE_EQ(b.growth_per_sec, 5);
  EXPECT_NE(b.formula.find("no purge license"), std::string::npos);
}

TEST(SeqStateBoundTest, FollowingWindowGrantsNoPurgeLicense) {
  // EvictByWindow only fires for PRECEDING / PRECEDING AND FOLLOWING
  // anchored at the last position.
  SeqOperatorConfig cfg = MakeSeq(2, PairingMode::kUnrestricted);
  cfg.window = SeqWindow{Seconds(10), WindowDirection::kFollowing, 0};
  const StateBound b = SeqStateBound(cfg, {5, 7});
  EXPECT_FALSE(b.bounded);
}

TEST(SeqStateBoundTest, ConsecutiveKeepsOneEntryPerStoredPosition) {
  const SeqOperatorConfig cfg = MakeSeq(3, PairingMode::kConsecutive);
  const StateBound b = SeqStateBound(cfg, {100, 100, 100});
  EXPECT_TRUE(b.bounded);
  EXPECT_DOUBLE_EQ(b.tuples, 2);  // positions 0 and 1; final not stored
}

TEST(SeqStateBoundTest, RecentExactPurgeKeepsTriangularHistory) {
  // RECENT with no pairwise constraints purges superseded entries:
  // position i keeps at most n-1-i.
  const SeqOperatorConfig cfg = MakeSeq(3, PairingMode::kRecent);
  const StateBound b = SeqStateBound(cfg, {100, 100, 100});
  EXPECT_TRUE(b.bounded);
  EXPECT_DOUBLE_EQ(b.tuples, 2 + 1);
  EXPECT_NE(b.formula.find("recent purge"), std::string::npos);
}

TEST(SeqStateBoundTest, RecentWithPairwiseNeedsWindow) {
  SeqOperatorConfig cfg = MakeSeq(3, PairingMode::kRecent);
  cfg.pairwise.resize(1);  // disables the exact purge
  const StateBound unwindowed = SeqStateBound(cfg, {100, 100, 100});
  EXPECT_FALSE(unwindowed.bounded);
  cfg.window = SeqWindow{Seconds(2), WindowDirection::kPreceding, 2};
  const StateBound windowed = SeqStateBound(cfg, {100, 100, 100});
  EXPECT_TRUE(windowed.bounded);
  EXPECT_DOUBLE_EQ(windowed.tuples, 2 * (100 * 2 + 1));
}

TEST(SeqStateBoundTest, RecentNegationEvidenceIsNeverPurged) {
  SeqOperatorConfig cfg = MakeSeq(3, PairingMode::kRecent);
  cfg.positions[1].negated = true;
  const StateBound b = SeqStateBound(cfg, {100, 50, 100});
  EXPECT_FALSE(b.bounded);
  EXPECT_DOUBLE_EQ(b.growth_per_sec, 50);
  EXPECT_NE(b.formula.find("negation evidence"), std::string::npos);
}

TEST(SeqStateBoundTest, OpenStarGroupIsUnboundedEvenWithWindow) {
  // EvictByWindow skips open star entries, so no window bounds them.
  SeqOperatorConfig cfg = MakeSeq(2, PairingMode::kChronicle);
  cfg.positions[0].star = true;
  cfg.window = SeqWindow{Seconds(10), WindowDirection::kPreceding, 1};
  const StateBound b = SeqStateBound(cfg, {5, 7});
  EXPECT_FALSE(b.bounded);
  EXPECT_NE(b.formula.find("open star group"), std::string::npos);
}

TEST(SeqStateBoundTest, TrailingStarIsStored) {
  SeqOperatorConfig cfg = MakeSeq(2, PairingMode::kRecent);
  cfg.positions[1].star = true;
  const StateBound b = SeqStateBound(cfg, {5, 7});
  EXPECT_FALSE(b.bounded);
  EXPECT_DOUBLE_EQ(b.growth_per_sec, 7);
}

// ---------------------------------------------------------------------------
// Other operator bounds
// ---------------------------------------------------------------------------

TEST(StateBoundTest, ExceptionSeqTracksOnePartialRun) {
  ExceptionSeqConfig cfg;
  cfg.positions.resize(3);
  for (size_t i = 0; i < 3; ++i) cfg.positions[i].alias = "A";
  const StateBound b = ExceptionSeqStateBound(cfg, {100, 100, 100});
  EXPECT_TRUE(b.bounded);
  EXPECT_DOUBLE_EQ(b.tuples, 3);
}

TEST(StateBoundTest, ExceptionSeqWindowedStarIsBounded) {
  ExceptionSeqConfig cfg;
  cfg.positions.resize(3);
  cfg.positions[1].star = true;
  cfg.window = SeqWindow{Seconds(4), WindowDirection::kFollowing, 0};
  const StateBound b = ExceptionSeqStateBound(cfg, {10, 20, 10});
  EXPECT_TRUE(b.bounded);
  EXPECT_DOUBLE_EQ(b.tuples, 3 + (20 * 4 + 1));
}

TEST(StateBoundTest, WindowedNotExistsPrecedingBuffersOnly) {
  WindowSpec w;
  w.row_based = false;
  w.length = Seconds(3);
  w.direction = WindowDirection::kPreceding;
  const StateBound b = WindowedNotExistsStateBound(w, 50, 50);
  EXPECT_TRUE(b.bounded);
  EXPECT_DOUBLE_EQ(b.tuples, 50 * 3 + 1);
}

TEST(StateBoundTest, WindowedNotExistsFollowingAddsPendingSet) {
  WindowSpec w;
  w.row_based = false;
  w.length = Seconds(3);
  w.direction = WindowDirection::kPrecedingAndFollowing;
  const StateBound b = WindowedNotExistsStateBound(w, 50, 40);
  EXPECT_TRUE(b.bounded);
  EXPECT_DOUBLE_EQ(b.tuples, (50 * 3 + 1) + (40 * 3 + 1));
}

TEST(StateBoundTest, AggregateGroupsScaleWithKeyPower) {
  const StateBound global = AggregateStateBound(0, 1024, std::nullopt, 100);
  EXPECT_DOUBLE_EQ(global.tuples, 1);
  const StateBound keyed = AggregateStateBound(2, 10, std::nullopt, 100);
  EXPECT_DOUBLE_EQ(keyed.tuples, 100);
  WindowSpec w;
  w.row_based = true;
  w.length = 5;
  const StateBound windowed = AggregateStateBound(1, 10, w, 100);
  EXPECT_DOUBLE_EQ(windowed.tuples, 10 + 5);
}

TEST(StateBoundTest, FormatCostNumberAvoidsScientificNotation) {
  EXPECT_EQ(FormatCostNumber(1000), "1000");
  EXPECT_EQ(FormatCostNumber(0.5), "0.50");
  EXPECT_EQ(FormatCostNumber(5400003), "5400003");
  EXPECT_EQ(FormatCostNumber(1e15), "1000000000000000");
}

TEST(StateBoundTest, CombineBoundsSumsAndConcatenates) {
  StateBound a;
  a.tuples = 3;
  a.formula = "a";
  StateBound b;
  b.bounded = false;
  b.growth_per_sec = 7;
  b.formula = "b";
  const StateBound c = CombineBounds(a, b);
  EXPECT_FALSE(c.bounded);
  EXPECT_DOUBLE_EQ(c.growth_per_sec, 7);
  EXPECT_EQ(c.formula, "a + b");
}

// ---------------------------------------------------------------------------
// CostAnalyzer through the Engine surface
// ---------------------------------------------------------------------------

class CostModelEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Status status = engine_.ExecuteScript(R"sql(
      CREATE STREAM R1(readerid, tagid, tagtime);
      CREATE STREAM R2(readerid, tagid, tagtime);
      CREATE TABLE history(tagid, location, start_time);
    )sql");
    ASSERT_TRUE(status.ok()) << status;
  }

  QueryCostReport Analyze(const std::string& sql) {
    Result<std::vector<QueryCostReport>> r = engine_.AnalyzeCost(sql);
    EXPECT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->size(), 1u);
    return r->empty() ? QueryCostReport{} : (*r)[0];
  }

  Engine engine_;
};

TEST_F(CostModelEngineTest, DefaultsDriveTheEstimate) {
  const QueryCostReport report = Analyze(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R2] AND R1.tagid = R2.tagid;");
  ASSERT_EQ(report.operators.size(), 1u);
  const OperatorCost& seq = report.operators[0];
  EXPECT_EQ(seq.op, "SeqOperator");
  EXPECT_TRUE(seq.state.bounded);
  // Default rate 1000/s: position R1 retains 1000*5+1.
  EXPECT_DOUBLE_EQ(seq.state.tuples, 5001);
  EXPECT_EQ(seq.state_gauges, std::vector<std::string>{"retained_history"});
  EXPECT_EQ(report.partitioning, "partitionable");
  EXPECT_DOUBLE_EQ(report.single_shard_cost, report.total_cpu_cost);
  EXPECT_DOUBLE_EQ(report.per_shard_cost, report.total_cpu_cost / 4);
  EXPECT_DOUBLE_EQ(report.fallback_delta,
                   report.single_shard_cost - report.per_shard_cost);
}

TEST_F(CostModelEngineTest, DeclaredStreamStatsOverrideDefaults) {
  StreamStats stats;
  stats.rate_per_sec = 10;
  stats.distinct_keys = 4;
  ASSERT_TRUE(engine_.DeclareStreamStats("R1", stats).ok());
  ASSERT_TRUE(engine_.DeclareStreamStats("R2", stats).ok());
  const QueryCostReport report = Analyze(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R2] AND R1.tagid = R2.tagid;");
  ASSERT_EQ(report.operators.size(), 1u);
  EXPECT_DOUBLE_EQ(report.operators[0].state.tuples, 10 * 5 + 1);
}

TEST_F(CostModelEngineTest, DeclareStreamStatsRejectsUnknownStream) {
  EXPECT_FALSE(engine_.DeclareStreamStats("nosuch", StreamStats{}).ok());
}

TEST_F(CostModelEngineTest, UnboundedQueryReportsGrowth) {
  const QueryCostReport report = Analyze(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) AND R1.tagid = "
      "R2.tagid;");
  EXPECT_FALSE(report.state_bounded);
  EXPECT_DOUBLE_EQ(report.total_state_growth_per_sec, 1000);
}

TEST_F(CostModelEngineTest, NonKeyLinkedSeqIsSingleShard) {
  const QueryCostReport report = Analyze(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R2];");
  EXPECT_EQ(report.partitioning, "single-shard");
}

TEST_F(CostModelEngineTest, AnalyzeCostSkipsDdlStatements) {
  const Result<std::vector<QueryCostReport>> r = engine_.AnalyzeCost(R"sql(
    CREATE STREAM R9(readerid, tagid, tagtime);
    SELECT * FROM R1 WHERE R1.tagid = 'x';
    SELECT * FROM R2 WHERE R2.tagid = 'y';
  )sql");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(CostModelEngineTest, ExplainCostReturnsJson) {
  const Result<std::string> out = engine_.Explain(
      "EXPLAIN COST SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 "
      "SECONDS PRECEDING R2] AND R1.tagid = R2.tagid;");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("\"cost_model_version\":1"), std::string::npos) << *out;
  EXPECT_NE(out->find("\"op\":\"SeqOperator\""), std::string::npos);
  EXPECT_NE(out->find("\"verdict\":\"partitionable\""), std::string::npos);
}

TEST_F(CostModelEngineTest, InsertIntoTableReportsUnboundedGrowth) {
  const QueryCostReport report =
      Analyze("INSERT INTO history SELECT tagid, readerid, tagtime FROM R1;");
  EXPECT_FALSE(report.state_bounded);
  bool saw_insert = false;
  for (const OperatorCost& row : report.operators) {
    if (row.op == "TableInsert") {
      saw_insert = true;
      EXPECT_FALSE(row.state.bounded);
    }
  }
  EXPECT_TRUE(saw_insert);
}

}  // namespace
}  // namespace eslev
