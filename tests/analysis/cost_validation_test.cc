// Estimate-vs-actual validation of the static cost & state-bound
// analyzer (DESIGN.md §16): every corpus query is registered on a live
// engine, the engine is driven with a synthetic load whose rates and
// key cardinality are declared to the analyzer via DeclareStreamStats,
// and the peak of each operator's live state gauges (the exact gauge
// names the cost report lists in `state_gauges`) must stay at or below
// the operator's static bound. Unbounded bounds assert nothing — the
// point of the harness is that every *bounded* claim is sound.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "common/string_util.h"
#include "common/time.h"
#include "core/engine.h"

#ifndef ESLEV_CORPUS_DIR
#error "ESLEV_CORPUS_DIR must point at <repo>/corpus"
#endif

namespace eslev {
namespace {

/// Synthetic-load parameters for one corpus file. Kept small enough
/// that the slowest enumeration (4-position UNRESTRICTED SEQ) stays
/// well under a second, yet long enough to cross every purge boundary
/// that matters at these window lengths.
struct LoadParams {
  double rate_per_stream = 20;  // tuples/sec pushed into each source
  int seconds = 5;              // simulated duration
  int distinct_keys = 10;       // EPC key cardinality
};

LoadParams ParamsFor(const std::string& stem) {
  // The 4-position UNRESTRICTED pipeline enumerates cross products of
  // three retained positions per trigger; keep its history short.
  if (stem == "quality_pipeline") return {10, 4, 10};
  if (stem == "e4_containment") return {20, 5, 10};
  if (stem == "e8_theft") return {20, 10, 10};
  return {20, 5, 10};
}

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(ESLEV_CORPUS_DIR)) {
    if (entry.path().extension() == ".sql") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string Stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

/// Names after `keyword` occurrences in `sql` (case-insensitive,
/// whitespace-tolerant): the crude scan is enough for the corpus DDL.
std::vector<std::string> NamesAfter(const std::string& sql,
                                    const std::string& keyword) {
  std::vector<std::string> names;
  const std::string lower = AsciiToLower(sql);
  const std::string needle = AsciiToLower(keyword);
  size_t pos = 0;
  while ((pos = lower.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    while (pos < lower.size() && std::isspace(lower[pos])) ++pos;
    size_t end = pos;
    while (end < lower.size() &&
           (std::isalnum(lower[end]) || lower[end] == '_')) {
      ++end;
    }
    if (end > pos) names.push_back(lower.substr(pos, end - pos));
    pos = end;
  }
  return names;
}

/// Streams the harness feeds directly: declared via CREATE STREAM and
/// not produced by any INSERT INTO query in the same script.
std::vector<std::string> SourceStreams(const std::string& sql) {
  const std::vector<std::string> created = NamesAfter(sql, "CREATE STREAM");
  std::set<std::string> derived;
  for (const std::string& n : NamesAfter(sql, "INSERT INTO")) {
    derived.insert(n);
  }
  std::vector<std::string> sources;
  for (const std::string& n : created) {
    if (derived.count(n) == 0) sources.push_back(n);
  }
  return sources;
}

/// One synthetic tuple for `schema`. TIMESTAMP columns carry the event
/// time; tag columns carry EPC-form ids ("20.<key>.<serial>", the shape
/// extract_serial() requires); e8's tagtype alternates item/person so
/// both sides of the anti-join see traffic.
std::vector<Value> MakeTuple(const SchemaPtr& schema, Timestamp ts,
                             int key, int64_t serial) {
  std::vector<Value> values;
  for (size_t i = 0; i < schema->num_fields(); ++i) {
    const Field& f = schema->field(i);
    if (f.type == TypeId::kTimestamp) {
      values.push_back(Value::Time(ts));
    } else if (f.name.find("type") != std::string::npos) {
      values.push_back(Value::String(serial % 2 == 0 ? "item" : "person"));
    } else if (f.name.find("loc") != std::string::npos) {
      values.push_back(Value::String("loc" + std::to_string(key % 3)));
    } else if (f.name.find("reader") != std::string::npos ||
               f.name.find("staff") != std::string::npos) {
      values.push_back(Value::String("r" + std::to_string(key % 3)));
    } else {
      values.push_back(Value::String("20." + std::to_string(key) + "." +
                                     std::to_string(serial)));
    }
  }
  return values;
}

TEST(CostValidationTest, MeasuredPeakStateStaysWithinStaticBounds) {
  size_t validated_rows = 0;
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    const std::string sql = ReadFile(path);
    const LoadParams load = ParamsFor(Stem(path));

    Engine engine;
    ASSERT_TRUE(engine.ExecuteScript(sql).ok());

    // Declare the generator's profile so the static bounds are computed
    // from the same rates the load actually delivers.
    StreamStats stats;
    stats.rate_per_sec = load.rate_per_stream;
    stats.distinct_keys = load.distinct_keys;
    for (const std::string& stream : NamesAfter(sql, "CREATE STREAM")) {
      ASSERT_TRUE(engine.DeclareStreamStats(stream, stats).ok()) << stream;
    }

    const Result<std::vector<QueryCostReport>> reports =
        engine.AnalyzeCost(sql);
    ASSERT_TRUE(reports.ok()) << reports.status();
    ASSERT_FALSE(reports->empty());

    // Drive the load: round-robin over the source streams with strictly
    // increasing timestamps, `rate_per_stream` tuples/sec each, keys
    // shared across streams per tick so pairwise tag joins can match.
    const std::vector<std::string> sources = SourceStreams(sql);
    ASSERT_FALSE(sources.empty());
    const int ticks =
        static_cast<int>(load.rate_per_stream) * load.seconds;
    const int64_t step_us =
        Seconds(1) / (static_cast<int64_t>(load.rate_per_stream) *
                      static_cast<int64_t>(sources.size()));
    std::map<std::string, int64_t> peak;  // gauge key -> max observed
    int64_t serial = 0;
    for (int tick = 0; tick < ticks; ++tick) {
      const int key = tick % load.distinct_keys;
      for (const std::string& stream : sources) {
        const Timestamp ts = serial * step_us;
        const Stream* s = engine.FindStream(stream);
        ASSERT_NE(s, nullptr) << stream;
        const Status pushed =
            engine.Push(stream, MakeTuple(s->schema(), ts, key, serial), ts);
        ASSERT_TRUE(pushed.ok()) << stream << ": " << pushed;
        ++serial;
      }
      const MetricsSnapshot snap = engine.Metrics();
      for (const auto& [name, v] : snap.gauges) {
        peak[name] = std::max(peak[name], v);
      }
    }

    // Query ids are assigned in statement order, matching report order;
    // operator row k joins the query<id>.op<k>.<label>.* gauges.
    for (size_t q = 0; q < reports->size(); ++q) {
      const QueryCostReport& report = (*reports)[q];
      for (size_t k = 0; k < report.operators.size(); ++k) {
        const OperatorCost& row = report.operators[k];
        if (!row.state.bounded || row.state_gauges.empty()) continue;
        const std::string prefix = "query" + std::to_string(q + 1) + ".op" +
                                   std::to_string(k) + "." + row.label + ".";
        int64_t measured = 0;
        for (const std::string& gauge : row.state_gauges) {
          const auto it = peak.find(prefix + gauge);
          if (it != peak.end()) measured += it->second;
        }
        EXPECT_LE(static_cast<double>(measured),
                  std::ceil(row.state.tuples))
            << prefix << " exceeded its static bound\n  formula: "
            << row.state.formula << "\n  statement: " << report.statement;
        ++validated_rows;
      }
    }
  }
  // The harness must not be vacuous: the corpus contains bounded SEQ,
  // EXCEPTION_SEQ, anti-join and aggregate operators.
  EXPECT_GE(validated_rows, 6u);
}

TEST(CostValidationTest, EveryCorpusFileProducesCostReports) {
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    const std::string sql = ReadFile(path);
    Engine engine;
    ASSERT_TRUE(engine.ExecuteScript(sql).ok());
    const Result<std::vector<QueryCostReport>> reports =
        engine.AnalyzeCost(sql);
    ASSERT_TRUE(reports.ok()) << reports.status();
    ASSERT_FALSE(reports->empty());
    for (const QueryCostReport& r : *reports) {
      EXPECT_FALSE(r.operators.empty()) << r.statement;
      EXPECT_FALSE(r.partitioning.empty());
      const std::string json = r.ToJson();
      EXPECT_EQ(json.rfind("{\"cost_model_version\":", 0), 0u) << json;
    }
  }
}

}  // namespace
}  // namespace eslev
