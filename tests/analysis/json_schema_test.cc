// Golden JSON-schema stability tests: the machine-readable shapes of
// `EXPLAIN LINT` (DiagnosticsToJson) and `EXPLAIN COST`
// (QueryCostReport::ToJson) are contracts consumed by eslev_lint, CI
// archive checks and downstream dashboards. Any field rename, removal
// or reorder must fail here first — and for EXPLAIN COST must also
// bump `cost_model_version`.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "analysis/diagnostic.h"
#include "core/engine.h"

namespace eslev {
namespace {

/// Extracts the ordered sequence of JSON object keys (`"key":`) from a
/// JSON text, skipping string *values* so message content never leaks
/// into the schema fingerprint.
std::vector<std::string> JsonKeys(const std::string& json) {
  std::vector<std::string> keys;
  size_t i = 0;
  while (i < json.size()) {
    if (json[i] != '"') {
      ++i;
      continue;
    }
    const size_t start = ++i;
    while (i < json.size() && json[i] != '"') {
      if (json[i] == '\\') ++i;
      ++i;
    }
    const std::string token = json.substr(start, i - start);
    ++i;  // closing quote
    if (i < json.size() && json[i] == ':') keys.push_back(token);
  }
  return keys;
}

TEST(JsonSchemaTest, DiagnosticsToJsonShapeIsStable) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.rule = "test-rule";
  d.message = "the message";
  d.span.offset = 7;
  d.span.length = 11;
  d.span.line = 1;
  d.span.column = 8;
  d.hint = "the hint";
  EXPECT_EQ(DiagnosticsToJson({d}),
            "{\"diagnostics\":[{\"severity\":\"error\",\"rule\":\"test-rule\","
            "\"message\":\"the message\",\"line\":1,\"column\":8,\"offset\":7,"
            "\"length\":11,\"hint\":\"the hint\"}],\"errors\":1,"
            "\"warnings\":0}");
}

TEST(JsonSchemaTest, DiagnosticsToJsonOmitsEmptyHint) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.rule = "r";
  d.message = "m";
  EXPECT_EQ(DiagnosticsToJson({d}),
            "{\"diagnostics\":[{\"severity\":\"warning\",\"rule\":\"r\","
            "\"message\":\"m\",\"line\":0,\"column\":1,\"offset\":0,"
            "\"length\":0}],\"errors\":0,\"warnings\":1}");
}

class ExplainCostSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Status status = engine_.ExecuteScript(R"sql(
      CREATE STREAM R1(readerid, tagid, tagtime);
      CREATE STREAM R2(readerid, tagid, tagtime);
    )sql");
    ASSERT_TRUE(status.ok()) << status;
  }

  Engine engine_;
};

TEST_F(ExplainCostSchemaTest, KeyOrderIsLocked) {
  const Result<std::string> out = engine_.Explain(
      "EXPLAIN COST SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 "
      "SECONDS PRECEDING R2] AND R1.tagid = R2.tagid;");
  ASSERT_TRUE(out.ok()) << out.status();
  const std::vector<std::string> expected = {
      "cost_model_version", "statement",  "backend",
      "operators",          "op",         "label",
      "in_rate",            "out_rate",   "cpu_cost",
      "state",              "bounded",    "tuples",
      "growth_per_sec",     "formula",    "state_gauges",
      "totals",             "cpu_cost",   "state_bounded",
      "state_tuples",       "state_growth_per_sec",
      "sharding",           "verdict",    "assumed_shards",
      "single_shard_cost",  "per_shard_cost",
      "fallback_delta"};
  EXPECT_EQ(JsonKeys(*out), expected) << *out;
}

TEST_F(ExplainCostSchemaTest, NumbersAreNeverScientific) {
  // FormatCostNumber keeps magnitudes readable: dashboards and the CI
  // schema check parse these as plain decimals.
  const Result<std::string> out = engine_.Explain(
      "EXPLAIN COST SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER "
      "[30 MINUTES PRECEDING R2] AND R1.tagid = R2.tagid;");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->find("e+"), std::string::npos) << *out;
  EXPECT_EQ(out->find("E+"), std::string::npos) << *out;
  EXPECT_EQ(out->find("nan"), std::string::npos) << *out;
  EXPECT_EQ(out->find("inf"), std::string::npos) << *out;
}

TEST_F(ExplainCostSchemaTest, LintJsonThroughEngineKeepsShape) {
  const Result<std::string> out = engine_.Explain(
      "EXPLAIN LINT SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) AND "
      "R1.tagid = R2.tagid;");
  ASSERT_TRUE(out.ok()) << out.status();
  const std::vector<std::string> keys = JsonKeys(*out);
  ASSERT_GE(keys.size(), 10u);
  EXPECT_EQ(keys.front(), "diagnostics");
  // Every diagnostic object repeats the same field sequence.
  const std::vector<std::string> per_diag = {
      "severity", "rule", "message", "line", "column", "offset", "length"};
  for (size_t i = 0; i + per_diag.size() <= 8; ++i) {
    EXPECT_EQ(keys[1 + i], per_diag[i]);
  }
  EXPECT_EQ(keys[keys.size() - 2], "errors");
  EXPECT_EQ(keys.back(), "warnings");
}

}  // namespace
}  // namespace eslev
