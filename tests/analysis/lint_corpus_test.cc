// Lint sweep over the checked-in query corpus (corpus/*.sql): every
// paper example and bench query must execute and lint with zero
// error-severity diagnostics — the analyzer's no-false-positive
// contract (DESIGN.md §11).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"

#ifndef ESLEV_CORPUS_DIR
#error "ESLEV_CORPUS_DIR must point at <repo>/corpus"
#endif

namespace eslev {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(ESLEV_CORPUS_DIR)) {
    if (entry.path().extension() == ".sql") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(LintCorpusTest, CorpusIsPresent) {
  EXPECT_GE(CorpusFiles().size(), 8u)
      << "corpus/*.sql missing — check ESLEV_CORPUS_DIR";
}

TEST(LintCorpusTest, EveryCorpusFileExecutesAndLintsWithoutErrors) {
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    const std::string sql = ReadFile(path);
    ASSERT_FALSE(sql.empty());

    // The scripts must be genuinely runnable, not merely parseable.
    Engine engine;
    const Status exec = engine.ExecuteScript(sql);
    ASSERT_TRUE(exec.ok()) << exec;

    const Result<std::vector<Diagnostic>> diags = engine.Lint(sql);
    ASSERT_TRUE(diags.ok()) << diags.status();
    std::string rendered;
    for (const Diagnostic& d : *diags) rendered += "  " + d.ToString() + "\n";
    EXPECT_EQ(CountSeverity(*diags, Severity::kError), 0u)
        << "error-severity lint findings on a known-good query:\n"
        << rendered;

    // Every finding that does appear must carry a valid span and a
    // non-empty machine-readable rule id.
    for (const Diagnostic& d : *diags) {
      EXPECT_FALSE(d.rule.empty());
      EXPECT_TRUE(d.span.valid()) << d.ToString();
    }
  }
}

TEST(LintCorpusTest, JsonRenderingIsStableShape) {
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    Engine engine;
    ASSERT_TRUE(engine.ExecuteScript(ReadFile(path)).ok());
    const Result<std::vector<Diagnostic>> diags =
        engine.Lint(ReadFile(path));
    ASSERT_TRUE(diags.ok());
    const std::string json = DiagnosticsToJson(*diags);
    EXPECT_EQ(json.rfind("{\"diagnostics\":[", 0), 0u) << json;
    EXPECT_NE(json.find("\"errors\":0"), std::string::npos) << json;
  }
}

}  // namespace
}  // namespace eslev
