// Golden tests for the EXPLAIN LINT rule catalog: each known-bad
// fixture must produce the expected rule id at the exact source span
// (DESIGN.md §11).

#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"

namespace eslev {
namespace {

class LintRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Status status = engine_.ExecuteScript(R"sql(
      CREATE STREAM R1(readerid, tagid, tagtime);
      CREATE STREAM R2(readerid, tagid, tagtime);
      CREATE STREAM R3(readerid, tagid, tagtime);
      CREATE TABLE history(tagid, location, start_time);
    )sql");
    ASSERT_TRUE(status.ok()) << status;
  }

  std::vector<Diagnostic> Lint(const std::string& sql) {
    Result<std::vector<Diagnostic>> r = engine_.Lint(sql);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : std::vector<Diagnostic>{};
  }

  static const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                                const std::string& rule) {
    for (const Diagnostic& d : diags) {
      if (d.rule == rule) return &d;
    }
    return nullptr;
  }

  static size_t CountRule(const std::vector<Diagnostic>& diags,
                          const std::string& rule) {
    size_t n = 0;
    for (const Diagnostic& d : diags) {
      if (d.rule == rule) ++n;
    }
    return n;
  }

  static void ExpectSpan(const Diagnostic& d, int line, int column,
                         size_t length) {
    EXPECT_EQ(d.span.line, line) << d.ToString();
    EXPECT_EQ(d.span.column, column) << d.ToString();
    EXPECT_EQ(d.span.length, length) << d.ToString();
  }

  Engine engine_;
};

// ---------------------------------------------------------------------------
// unbounded-retention
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, UnrestrictedSeqWithoutWindowIsError) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) AND R1.tagid = "
      "R2.tagid;");
  const Diagnostic* d = Find(diags, "unbounded-retention");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  ExpectSpan(*d, 1, 35, 11);  // SEQ(R1, R2)
  EXPECT_FALSE(d->hint.empty());
}

TEST_F(LintRulesTest, SpansTrackLines) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2\n"
      "WHERE SEQ(R1, R2) AND R1.tagid = R2.tagid;");
  const Diagnostic* d = Find(diags, "unbounded-retention");
  ASSERT_NE(d, nullptr);
  ExpectSpan(*d, 2, 7, 11);
}

TEST_F(LintRulesTest, ChronicleWithoutWindowWarnsOnSeqAndStarBuffer) {
  const auto diags = Lint(
      "SELECT R2.tagid FROM R1, R2 WHERE SEQ(R1*, R2) MODE CHRONICLE AND "
      "R1.tagid = R2.tagid;");
  ASSERT_EQ(CountRule(diags, "unbounded-retention"), 2u);
  EXPECT_EQ(diags[0].rule, "unbounded-retention");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  ExpectSpan(diags[0], 1, 35, 27);  // SEQ(R1*, R2) MODE CHRONICLE
  EXPECT_EQ(diags[1].severity, Severity::kWarning);
  ExpectSpan(diags[1], 1, 39, 3);  // R1*
}

TEST_F(LintRulesTest, RecentModeWithoutWindowIsClean) {
  const auto diags = Lint(
      "SELECT R2.tagid FROM R1, R2 WHERE SEQ(R1, R2) MODE RECENT AND "
      "R1.tagid = R2.tagid;");
  EXPECT_EQ(Find(diags, "unbounded-retention"), nullptr);
}

TEST_F(LintRulesTest, WindowedSeqIsClean) {
  const auto diags = Lint(
      "SELECT R2.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R2] AND R1.tagid = R2.tagid;");
  EXPECT_EQ(Find(diags, "unbounded-retention"), nullptr);
}

// ---------------------------------------------------------------------------
// unsatisfiable-window
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, ZeroLengthSeqWindowIsError) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [0 SECONDS "
      "PRECEDING R2] AND R1.tagid = R2.tagid;");
  const Diagnostic* d = Find(diags, "unsatisfiable-window");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  ExpectSpan(*d, 1, 47, 29);  // OVER [0 SECONDS PRECEDING R2]
}

TEST_F(LintRulesTest, UnknownWindowAnchorIsError) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R9] AND R1.tagid = R2.tagid;");
  const Diagnostic* d = Find(diags, "unsatisfiable-window");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("R9"), std::string::npos);
}

TEST_F(LintRulesTest, VacuousPrecedingAnchorIsWarning) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R1] AND R1.tagid = R2.tagid;");
  const Diagnostic* d = Find(diags, "unsatisfiable-window");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  ExpectSpan(*d, 1, 47, 29);
}

TEST_F(LintRulesTest, VacuousFollowingAnchorIsWarning) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "FOLLOWING R2] AND R1.tagid = R2.tagid;");
  const Diagnostic* d = Find(diags, "unsatisfiable-window");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST_F(LintRulesTest, AnchoredWindowIsClean) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "FOLLOWING R1] AND R1.tagid = R2.tagid;");
  EXPECT_EQ(Find(diags, "unsatisfiable-window"), nullptr);
}

TEST_F(LintRulesTest, ZeroLengthFromWindowIsWarning) {
  const auto diags = Lint(
      "SELECT * FROM R1 AS a WHERE NOT EXISTS (SELECT * FROM R1 AS b OVER "
      "[0 SECONDS PRECEDING AND FOLLOWING a] WHERE b.tagid = a.tagid);");
  const Diagnostic* d = Find(diags, "unsatisfiable-window");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

// ---------------------------------------------------------------------------
// star-aggregate-misuse
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, StarAggregateOnNonStarArgumentIsError) {
  const auto diags = Lint(
      "SELECT COUNT(R1*), R2.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 "
      "SECONDS PRECEDING R2] AND R1.tagid = R2.tagid;");
  const Diagnostic* d = Find(diags, "star-aggregate-misuse");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  ExpectSpan(*d, 1, 8, 10);  // COUNT(R1*)
  EXPECT_NE(d->hint.find("R1*"), std::string::npos);
}

TEST_F(LintRulesTest, StarAggregateWithoutSeqIsError) {
  const auto diags = Lint("SELECT COUNT(R1*) FROM R1;");
  const Diagnostic* d = Find(diags, "star-aggregate-misuse");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("no SEQ"), std::string::npos);
}

TEST_F(LintRulesTest, PreviousOnNonStarArgumentIsError) {
  const auto diags = Lint(
      "SELECT R2.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R2] AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS AND "
      "R1.tagid = R2.tagid;");
  const Diagnostic* d = Find(diags, "star-aggregate-misuse");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("previous"), std::string::npos);
}

TEST_F(LintRulesTest, StarAggregateOnStarArgumentIsClean) {
  const auto diags = Lint(
      "SELECT COUNT(R1*), R2.tagid FROM R1, R2 WHERE SEQ(R1*, R2) MODE "
      "RECENT AND R1.tagid = R2.tagid;");
  EXPECT_EQ(Find(diags, "star-aggregate-misuse"), nullptr);
}

// ---------------------------------------------------------------------------
// dead-predicate
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, ConstantFalseConjunctIsError) {
  const auto diags = Lint("SELECT * FROM R1 WHERE 1 = 2;");
  const Diagnostic* d = Find(diags, "dead-predicate");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  ExpectSpan(*d, 1, 24, 5);  // 1 = 2
}

TEST_F(LintRulesTest, ConstantNullConjunctIsError) {
  const auto diags = Lint("SELECT * FROM R1 WHERE NULL;");
  const Diagnostic* d = Find(diags, "dead-predicate");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST_F(LintRulesTest, ConstantTypeErrorConjunctIsError) {
  const auto diags = Lint("SELECT * FROM R1 WHERE 'abc' > 5;");
  const Diagnostic* d = Find(diags, "dead-predicate");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("type error"), std::string::npos);
}

TEST_F(LintRulesTest, TypeIncoherentComparisonIsWarning) {
  // tagid is VARCHAR (untyped DDL column); comparing it to an integer
  // raises a runtime type error on every tuple.
  const auto diags = Lint("SELECT * FROM R1 WHERE R1.tagid > 5;");
  const Diagnostic* d = Find(diags, "dead-predicate");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  ExpectSpan(*d, 1, 24, 12);  // R1.tagid > 5
}

TEST_F(LintRulesTest, CoherentPredicatesAreClean) {
  const auto diags = Lint(
      "SELECT * FROM R1 WHERE R1.tagid = 'x' AND 1 = 1 AND R1.tagtime > 5;");
  EXPECT_EQ(Find(diags, "dead-predicate"), nullptr);
}

// ---------------------------------------------------------------------------
// shard-fallback
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, SeqWithoutKeyJoinWarns) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R2];");
  const Diagnostic* d = Find(diags, "shard-fallback");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  ExpectSpan(*d, 1, 35, 41);  // the whole SEQ(...) OVER [...] construct
}

TEST_F(LintRulesTest, SeqJoinedOnPartitionKeyIsClean) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R2] AND R1.tagid = R2.tagid;");
  EXPECT_EQ(Find(diags, "shard-fallback"), nullptr);
}

TEST_F(LintRulesTest, SeqKeyLinkThroughThirdPositionIsClean) {
  // R1-R3 and R2-R3 links connect all three positions transitively.
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2, R3 WHERE SEQ(R1, R2, R3) OVER [5 "
      "SECONDS PRECEDING R3] AND R1.tagid = R3.tagid AND R2.tagid = "
      "R3.tagid;");
  EXPECT_EQ(Find(diags, "shard-fallback"), nullptr);
}

TEST_F(LintRulesTest, UncorrelatedExistsOverStreamWarns) {
  const auto diags = Lint(
      "SELECT * FROM R1 AS a WHERE NOT EXISTS (SELECT * FROM R1 AS b OVER "
      "[1 MINUTES PRECEDING AND FOLLOWING a] WHERE b.readerid = 'door');");
  const Diagnostic* d = Find(diags, "shard-fallback");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST_F(LintRulesTest, KeyCorrelatedExistsIsClean) {
  const auto diags = Lint(
      "SELECT * FROM R1 AS a WHERE NOT EXISTS (SELECT * FROM R1 AS b OVER "
      "[1 MINUTES PRECEDING AND FOLLOWING a] WHERE b.tagid = a.tagid);");
  EXPECT_EQ(Find(diags, "shard-fallback"), nullptr);
}

// ---------------------------------------------------------------------------
// durability-hazard
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, InsertIntoTableWarns) {
  const auto diags =
      Lint("INSERT INTO history SELECT tagid, readerid, tagtime FROM R1;");
  const Diagnostic* d = Find(diags, "durability-hazard");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 1);  // the whole INSERT statement
}

TEST_F(LintRulesTest, InsertIntoStreamIsClean) {
  const auto diags =
      Lint("INSERT INTO R3 SELECT readerid, tagid, tagtime FROM R1;");
  EXPECT_EQ(Find(diags, "durability-hazard"), nullptr);
}

TEST_F(LintRulesTest, UnwindowedGroupByWarns) {
  const auto diags =
      Lint("SELECT readerid, count(tagid) FROM R1 GROUP BY readerid;");
  const Diagnostic* d = Find(diags, "durability-hazard");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST_F(LintRulesTest, WindowedGroupByIsClean) {
  const auto diags = Lint(
      "SELECT readerid, count(tagid) FROM TABLE(R1 OVER (RANGE 60 SECONDS "
      "PRECEDING CURRENT)) AS r GROUP BY readerid;");
  EXPECT_EQ(Find(diags, "durability-hazard"), nullptr);
}

// ---------------------------------------------------------------------------
// seq-negation-coverage
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, MidSequenceNegationInLongSeqWarns) {
  ASSERT_TRUE(
      engine_.ExecuteScript("CREATE STREAM R4(readerid, tagid, tagtime);")
          .ok());
  const auto diags = Lint(
      "SELECT R4.tagid FROM R1, R2, R3, R4 WHERE SEQ(R1, !R2, R3, R4) OVER "
      "[5 SECONDS PRECEDING R4] AND R1.tagid = R4.tagid AND R3.tagid = "
      "R4.tagid;");
  const Diagnostic* d = Find(diags, "seq-negation-coverage");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  ExpectSpan(*d, 1, 51, 3);  // !R2
  EXPECT_NE(d->message.find("position 2 of 4"), std::string::npos)
      << d->message;
  EXPECT_NE(d->hint.find("NOT EXISTS"), std::string::npos) << d->hint;
}

TEST_F(LintRulesTest, ThreePositionNegationIsClean) {
  const auto diags = Lint(
      "SELECT R3.tagid FROM R1, R2, R3 WHERE SEQ(R1, !R2, R3) OVER [5 "
      "SECONDS PRECEDING R3] AND R1.tagid = R3.tagid;");
  EXPECT_EQ(Find(diags, "seq-negation-coverage"), nullptr);
}

// ---------------------------------------------------------------------------
// quantified messages (cost-model integration)
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, ShardFallbackWarningQuantifiesTheDelta) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R2];");
  const Diagnostic* d = Find(diags, "shard-fallback");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("predicate evals/s on the hot shard"),
            std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("fallback delta +"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("across 4 shards"), std::string::npos)
      << d->message;
}

TEST_F(LintRulesTest, UnboundedRetentionQuantifiesGrowth) {
  const auto diags = Lint(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) AND R1.tagid = "
      "R2.tagid;");
  const Diagnostic* d = Find(diags, "unbounded-retention");
  ASSERT_NE(d, nullptr);
  // Default declared rate is 1000/s; only the first position is stored.
  EXPECT_NE(d->message.find("estimated growth 1000 tuples/s"),
            std::string::npos)
      << d->message;
}

TEST_F(LintRulesTest, DurabilityHazardQuantifiesTableGrowth) {
  const auto diags =
      Lint("INSERT INTO history SELECT tagid, readerid, tagtime FROM R1;");
  const Diagnostic* d = Find(diags, "durability-hazard");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("rows/s at declared input rates"),
            std::string::npos)
      << d->message;
}

// ---------------------------------------------------------------------------
// disorder-hazard
// ---------------------------------------------------------------------------

constexpr char kDisorderDdl[] = R"sql(
  CREATE STREAM R1(readerid, tagid, tagtime);
  CREATE STREAM R2(readerid, tagid, tagtime);
)sql";

constexpr char kDisorderSeqQuery[] =
    "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER "
    "[30 SECONDS PRECEDING R2] AND R1.tagid = R2.tagid;";

EngineOptions DisorderOptions(Duration declared, Duration lateness) {
  EngineOptions options;
  options.honor_ingest_env = false;
  options.ingest.declared_disorder = declared;
  options.ingest.lateness_bound = lateness;
  return options;
}

std::vector<Diagnostic> LintWith(const EngineOptions& options,
                                 const std::string& sql) {
  Engine engine(options);
  EXPECT_TRUE(engine.ExecuteScript(kDisorderDdl).ok());
  Result<std::vector<Diagnostic>> r = engine.Lint(sql);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : std::vector<Diagnostic>{};
}

const Diagnostic* FindRule(const std::vector<Diagnostic>& diags,
                           const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

TEST(DisorderHazardTest, DeclaredDisorderWithoutReorderWarns) {
  const auto diags =
      LintWith(DisorderOptions(Milliseconds(250), 0), kDisorderSeqQuery);
  const Diagnostic* d = FindRule(diags, "disorder-hazard");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  // Anchored at the SEQ predicate, the construct at risk.
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 35);
  EXPECT_NE(d->message.find("250000 us"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("no ingest reorder stage"), std::string::npos)
      << d->message;
  // The fix hint names both spellings of the knob.
  EXPECT_NE(d->hint.find("lateness_bound >= 250000"), std::string::npos)
      << d->hint;
  EXPECT_NE(d->hint.find("ESLEV_INGEST_LATENESS_US"), std::string::npos)
      << d->hint;
}

TEST(DisorderHazardTest, PartialLatenessBoundWarnsWithCoverage) {
  const auto diags = LintWith(
      DisorderOptions(Milliseconds(250), Milliseconds(100)),
      kDisorderSeqQuery);
  const Diagnostic* d = FindRule(diags, "disorder-hazard");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("covers only 100000 us"), std::string::npos)
      << d->message;
}

TEST(DisorderHazardTest, CoveringLatenessBoundIsClean) {
  const auto diags = LintWith(
      DisorderOptions(Milliseconds(250), Milliseconds(250)),
      kDisorderSeqQuery);
  EXPECT_EQ(FindRule(diags, "disorder-hazard"), nullptr);
}

TEST(DisorderHazardTest, NoDeclaredDisorderIsClean) {
  const auto diags = LintWith(DisorderOptions(0, 0), kDisorderSeqQuery);
  EXPECT_EQ(FindRule(diags, "disorder-hazard"), nullptr);
}

TEST(DisorderHazardTest, NonSeqQueryIsClean) {
  const auto diags = LintWith(DisorderOptions(Milliseconds(250), 0),
                              "SELECT * FROM R1 WHERE R1.tagid = 'x';");
  EXPECT_EQ(FindRule(diags, "disorder-hazard"), nullptr);
}

// ---------------------------------------------------------------------------
// plan-error
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, PlannerRejectionSurfacesAsDiagnostic) {
  const auto diags = Lint("SELECT nosuch.tagid FROM R1 AS a;");
  const Diagnostic* d = Find(diags, "plan-error");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_FALSE(d->message.empty());
}

// ---------------------------------------------------------------------------
// Engine surface
// ---------------------------------------------------------------------------

TEST_F(LintRulesTest, ExplainLintReturnsJson) {
  const Result<std::string> out = engine_.Explain(
      "EXPLAIN LINT SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) AND "
      "R1.tagid = R2.tagid;");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("\"rule\":\"unbounded-retention\""), std::string::npos)
      << *out;
  EXPECT_NE(out->find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(out->find("\"errors\":1"), std::string::npos);
  EXPECT_NE(out->find("\"line\":1"), std::string::npos);
}

TEST_F(LintRulesTest, ExplainLintOnCleanQueryReportsZeroErrors) {
  const Result<std::string> out =
      engine_.Explain("EXPLAIN LINT SELECT * FROM R1 WHERE R1.tagid = 'x';");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("\"diagnostics\":[]"), std::string::npos) << *out;
  EXPECT_NE(out->find("\"errors\":0"), std::string::npos);
}

TEST_F(LintRulesTest, PlainExplainStillDescribesPlan) {
  const Result<std::string> out =
      engine_.Explain("EXPLAIN SELECT * FROM R1 WHERE R1.tagid = 'x';");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("Output:"), std::string::npos);
}

TEST_F(LintRulesTest, LintNeverRegistersQueries) {
  ASSERT_TRUE(engine_.Lint("SELECT * FROM R1 WHERE R1.tagid = 'x';").ok());
  // A second lint of the same bare SELECT must not collide with a
  // registered `_q<id>` output stream, and Metrics sees no new queries.
  ASSERT_TRUE(engine_.Lint("SELECT * FROM R1 WHERE R1.tagid = 'x';").ok());
  EXPECT_EQ(engine_.FindStream("_q1"), nullptr);
}

TEST_F(LintRulesTest, DiagnosticsToJsonEscapes) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.rule = "test-rule";
  d.message = "quote \" backslash \\ newline \n done";
  const std::string json = DiagnosticsToJson({d});
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n done"),
            std::string::npos)
      << json;
}

TEST_F(LintRulesTest, DiagnosticOrderingFollowsSourcePosition) {
  const auto diags = Lint(
      "SELECT COUNT(R1*), R2.tagid FROM R1, R2 WHERE SEQ(R1, R2) AND 1 = "
      "2;");
  ASSERT_GE(diags.size(), 3u);
  for (size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(diags[i - 1].span.offset, diags[i].span.offset);
  }
}

}  // namespace
}  // namespace eslev
