// Baseline engines: the naive SQL join and the RCEDA-style event graph
// must agree with SEQ/UNRESTRICTED on match counts (they are the same
// semantics), while exhibiting the state growth the paper criticizes.

#include <gtest/gtest.h>

#include "baseline/naive_join.h"
#include "baseline/rceda.h"
#include "tests/cep/seq_test_util.h"

namespace eslev {
namespace {

using baseline::NaiveJoinSequenceDetector;
using baseline::RcedaEngine;
using cep_test::Reading;
using cep_test::SeqBuilder;

TEST(NaiveJoinTest, MatchesWalkthroughUnrestrictedCount) {
  // §3.1.1 history: UNRESTRICTED finds 4 events; so must the naive join.
  baseline::NaiveJoinOptions options;
  options.num_streams = 4;
  NaiveJoinSequenceDetector det(options);
  auto schema = cep_test::ReadingSchema();
  auto push = [&](size_t s, Timestamp t) {
    ASSERT_TRUE(det.OnTuple(s, Reading(schema, "r", "x", t)).ok());
  };
  push(0, Seconds(1));
  push(0, Seconds(2));
  push(1, Seconds(3));
  push(2, Seconds(4));
  push(2, Seconds(5));
  push(1, Seconds(6));
  push(3, Seconds(7));
  EXPECT_EQ(det.matches(), 4u);
  EXPECT_EQ(det.history_size(), 6u);  // everything retained, forever
}

TEST(NaiveJoinTest, KeyEqualityJoin) {
  baseline::NaiveJoinOptions options;
  options.num_streams = 2;
  options.key_column = 1;  // tagid
  NaiveJoinSequenceDetector det(options);
  auto schema = cep_test::ReadingSchema();
  ASSERT_TRUE(det.OnTuple(0, Reading(schema, "r", "A", Seconds(1))).ok());
  ASSERT_TRUE(det.OnTuple(0, Reading(schema, "r", "B", Seconds(2))).ok());
  ASSERT_TRUE(det.OnTuple(1, Reading(schema, "r", "A", Seconds(3))).ok());
  EXPECT_EQ(det.matches(), 1u);
}

TEST(NaiveJoinTest, WindowPredicateDoesNotPurge) {
  baseline::NaiveJoinOptions options;
  options.num_streams = 2;
  options.window = Seconds(10);
  NaiveJoinSequenceDetector det(options);
  auto schema = cep_test::ReadingSchema();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        det.OnTuple(0, Reading(schema, "r", "x", Seconds(i))).ok());
  }
  ASSERT_TRUE(det.OnTuple(1, Reading(schema, "r", "x", Seconds(100))).ok());
  // Only the last 10 seconds qualify...
  EXPECT_EQ(det.matches(), 10u);
  // ...but nothing was ever evicted (plain SQL has no windows).
  EXPECT_EQ(det.history_size(), 100u);
}

TEST(NaiveJoinTest, AgreesWithSeqUnrestrictedOnRandomHistory) {
  // Cross-validate against the real SEQ operator over a pseudo-random
  // interleaving (fixed seed via simple LCG).
  baseline::NaiveJoinOptions options;
  options.num_streams = 3;
  NaiveJoinSequenceDetector det(options);

  SeqBuilder b({"C1", "C2", "C3"});
  auto op = b.Mode(PairingMode::kUnrestricted).Build();
  CollectOperator out;
  op->AddSink(&out);

  auto schema = cep_test::ReadingSchema();
  uint64_t state = 12345;
  for (int i = 0; i < 60; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const size_t stream = (state >> 33) % 3;
    Tuple t = Reading(schema, "r", "x", Seconds(i));
    ASSERT_TRUE(det.OnTuple(stream, t).ok());
    ASSERT_TRUE(op->OnTuple(stream, t).ok());
  }
  EXPECT_EQ(det.matches(), out.tuples().size());
  EXPECT_GT(det.matches(), 0u);
}

TEST(NaiveJoinTest, StreamIndexValidation) {
  baseline::NaiveJoinOptions options;
  options.num_streams = 2;
  NaiveJoinSequenceDetector det(options);
  auto schema = cep_test::ReadingSchema();
  EXPECT_TRUE(det.OnTuple(5, Reading(schema, "r", "x", 0)).IsInvalid());
}

// ---------------------------------------------------------------------------
// RCEDA graph engine
// ---------------------------------------------------------------------------

TEST(RcedaTest, SeqChainMatchesWalkthrough) {
  RcedaEngine engine;
  auto* root = engine.BuildSeqChain({"C1", "C2", "C3", "C4"});
  size_t events = 0;
  root->AddCallback([&](const baseline::EventInstance& e) {
    ++events;
    EXPECT_EQ(e.tuples.size(), 4u);
    EXPECT_LT(e.start, e.end);
  });
  auto schema = cep_test::ReadingSchema();
  auto push = [&](const std::string& s, Timestamp t) {
    ASSERT_TRUE(engine.Inject(s, Reading(schema, "r", "x", t)).ok());
  };
  push("C1", Seconds(1));
  push("C1", Seconds(2));
  push("C2", Seconds(3));
  push("C3", Seconds(4));
  push("C3", Seconds(5));
  push("C2", Seconds(6));
  push("C4", Seconds(7));
  EXPECT_EQ(events, 4u);  // same as UNRESTRICTED
  // The graph retains primitive AND intermediate composite instances.
  EXPECT_GT(engine.retained_instances(), 6u);
}

TEST(RcedaTest, IntermediateStateBlowsUp) {
  // A burst of C1/C2 pairs: the left-deep graph materializes every
  // partial C1-C2 combination — quadratic state, the paper's complaint.
  RcedaEngine engine;
  engine.BuildSeqChain({"C1", "C2", "C3"});
  auto schema = cep_test::ReadingSchema();
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        engine.Inject("C1", Reading(schema, "r", "x", Seconds(2 * i))).ok());
    ASSERT_TRUE(
        engine
            .Inject("C2", Reading(schema, "r", "x", Seconds(2 * i + 1)))
            .ok());
  }
  // Pairs: n C1s, n C2s; C1-C2 composites: sum over arrivals = n(n+1)/2.
  EXPECT_GE(engine.retained_instances(),
            static_cast<size_t>(n) * (n + 1) / 2);
}

TEST(RcedaTest, GuardFiltersCombinations) {
  RcedaEngine engine;
  auto guard = [](const baseline::EventInstance& l,
                  const baseline::EventInstance& r) {
    return l.tuples.front().value(1) == r.tuples.back().value(1);
  };
  auto* root = engine.BuildSeqChain({"A", "B"}, guard);
  size_t events = 0;
  root->AddCallback([&](const baseline::EventInstance&) { ++events; });
  auto schema = cep_test::ReadingSchema();
  ASSERT_TRUE(engine.Inject("A", Reading(schema, "r", "t1", Seconds(1))).ok());
  ASSERT_TRUE(engine.Inject("A", Reading(schema, "r", "t2", Seconds(2))).ok());
  ASSERT_TRUE(engine.Inject("B", Reading(schema, "r", "t1", Seconds(3))).ok());
  EXPECT_EQ(events, 1u);
}

TEST(RcedaTest, AndOrNodes) {
  RcedaEngine engine;
  auto* a = engine.AddPrimitive("A");
  auto* b = engine.AddPrimitive("B");
  auto* both = engine.AddAnd(a, b);
  size_t and_events = 0;
  both->AddCallback([&](const baseline::EventInstance&) { ++and_events; });

  auto* c = engine.AddPrimitive("C");
  auto* d = engine.AddPrimitive("D");
  auto* either = engine.AddOr(c, d);
  size_t or_events = 0;
  either->AddCallback([&](const baseline::EventInstance&) { ++or_events; });

  auto schema = cep_test::ReadingSchema();
  // AND fires regardless of order.
  ASSERT_TRUE(engine.Inject("B", Reading(schema, "r", "x", Seconds(1))).ok());
  ASSERT_TRUE(engine.Inject("A", Reading(schema, "r", "x", Seconds(2))).ok());
  EXPECT_EQ(and_events, 1u);
  // OR fires per child event.
  ASSERT_TRUE(engine.Inject("C", Reading(schema, "r", "x", Seconds(3))).ok());
  ASSERT_TRUE(engine.Inject("D", Reading(schema, "r", "x", Seconds(4))).ok());
  EXPECT_EQ(or_events, 2u);
}

TEST(RcedaTest, UnknownStreamRejected) {
  RcedaEngine engine;
  engine.BuildSeqChain({"A", "B"});
  auto schema = cep_test::ReadingSchema();
  EXPECT_TRUE(engine.Inject("Z", Reading(schema, "r", "x", 0)).IsNotFound());
}

}  // namespace
}  // namespace eslev
