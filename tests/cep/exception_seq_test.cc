// EXCEPTION_SEQ / CLEVEL_SEQ (paper §3.1.3): the lab-workflow scenario of
// Example 5 — operations A, B, C must occur in order within 1 hour.

#include "cep/exception_seq_operator.h"

#include <gtest/gtest.h>

#include "exec/basic_ops.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

SchemaPtr OpSchema() {
  return Schema::Make({{"staff", TypeId::kString},
                       {"tagid", TypeId::kString},
                       {"tagtime", TypeId::kTimestamp}});
}

Tuple Op(const SchemaPtr& s, const std::string& staff, const std::string& tag,
         Timestamp ts) {
  return *MakeTuple(
      s, {Value::String(staff), Value::String(tag), Value::Time(ts)}, ts);
}

class ExceptionSeqTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = OpSchema();
    for (const char* alias : {"A1", "A2", "A3"}) {
      scope_.AddEntry({alias, schema_, 0, false});
    }
  }

  BoundExprPtr Bind(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    Binder binder(&scope_, &registry_);
    auto bound = binder.Bind(**parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return std::move(bound).ValueUnsafe();
  }

  // EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1], projecting the
  // three tagids (unreached ones are NULL).
  std::unique_ptr<ExceptionSeqOperator> MakeOp(
      PairingMode mode = PairingMode::kConsecutive, bool with_window = true,
      BinaryOp level_op = BinaryOp::kLt, int64_t level_rhs = 3,
      size_t anchor = 0) {
    ExceptionSeqConfig config;
    for (const char* alias : {"A1", "A2", "A3"}) {
      config.positions.push_back({alias, schema_, false});
    }
    config.mode = mode;
    if (with_window) {
      SeqWindow w;
      w.length = Hours(1);
      w.direction = WindowDirection::kFollowing;
      w.anchor = anchor;
      config.window = w;
    }
    config.projection.push_back(Bind("A1.tagid"));
    config.projection.push_back(Bind("A2.tagid"));
    config.projection.push_back(Bind("A3.tagid"));
    config.out_schema = Schema::Make({{"a1", TypeId::kString},
                                      {"a2", TypeId::kString},
                                      {"a3", TypeId::kString}});
    config.level_op = level_op;
    config.level_rhs = level_rhs;
    auto op = ExceptionSeqOperator::Make(std::move(config));
    EXPECT_TRUE(op.ok()) << op.status();
    return std::move(op).ValueUnsafe();
  }

  SchemaPtr schema_;
  BindScope scope_;
  FunctionRegistry registry_;
};

TEST_F(ExceptionSeqTest, CorrectWorkflowRaisesNothing) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  for (int round = 0; round < 3; ++round) {
    Timestamp base = Minutes(round * 90);
    ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", base)).ok());
    ASSERT_TRUE(
        op->OnTuple(1, Op(schema_, "s", "opB", base + Minutes(10))).ok());
    ASSERT_TRUE(
        op->OnTuple(2, Op(schema_, "s", "opC", base + Minutes(20))).ok());
  }
  EXPECT_TRUE(out.tuples().empty());
  EXPECT_EQ(op->sequences_completed(), 3u);
  EXPECT_EQ(op->exceptions_emitted(), 0u);
}

TEST_F(ExceptionSeqTest, WrongOrderRaisesException) {
  // "C directly follows A": partial (A) cannot extend with C.
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", Minutes(1))).ok());
  ASSERT_TRUE(op->OnTuple(2, Op(schema_, "s", "opC", Minutes(2))).ok());
  ASSERT_EQ(out.tuples().size(), 2u);
  // First event: level-1 exception for the partial (A), offender C bound.
  EXPECT_EQ(out.tuples()[0].value(0).string_value(), "opA");
  EXPECT_TRUE(out.tuples()[0].value(1).is_null());
  EXPECT_EQ(out.tuples()[0].value(2).string_value(), "opC");
  // Second event: C cannot start a new sequence — level-0 exception.
  EXPECT_TRUE(out.tuples()[1].value(0).is_null());
  EXPECT_EQ(out.tuples()[1].value(2).string_value(), "opC");
  EXPECT_EQ(op->exceptions_emitted(), 2u);
}

TEST_F(ExceptionSeqTest, WrongStartRaisesLevelZero) {
  // "the first event in our sequence is B".
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB", Minutes(1))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_TRUE(out.tuples()[0].value(0).is_null());
  EXPECT_EQ(out.tuples()[0].value(1).string_value(), "opB");
}

TEST_F(ExceptionSeqTest, WindowExpiryViaActiveExpiration) {
  // Sequence started but not finished when the 1-hour window expires;
  // detection happens on a heartbeat, with no tuple arrivals.
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB", Minutes(30))).ok());
  ASSERT_TRUE(op->OnHeartbeat(Minutes(59)).ok());
  EXPECT_TRUE(out.tuples().empty());  // still within the hour
  ASSERT_TRUE(op->OnHeartbeat(Minutes(61)).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).string_value(), "opA");
  EXPECT_EQ(out.tuples()[0].value(1).string_value(), "opB");
  EXPECT_TRUE(out.tuples()[0].value(2).is_null());
  EXPECT_EQ(op->partial_level(), 0u);  // reset after expiry
}

TEST_F(ExceptionSeqTest, ExpiryDetectedByLateArrival) {
  // The expired partial raises before the late arrival is processed; the
  // late C then raises its own level-0 exception.
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB", Minutes(30))).ok());
  ASSERT_TRUE(op->OnTuple(2, Op(schema_, "s", "opC", Minutes(90))).ok());
  ASSERT_EQ(out.tuples().size(), 2u);
  EXPECT_EQ(out.tuples()[0].value(0).string_value(), "opA");  // expiry
  EXPECT_TRUE(out.tuples()[1].value(0).is_null());            // stray C
  EXPECT_EQ(op->sequences_completed(), 0u);
}

TEST_F(ExceptionSeqTest, CompletionJustInsideWindow) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB", Minutes(30))).ok());
  ASSERT_TRUE(op->OnTuple(2, Op(schema_, "s", "opC", Minutes(60))).ok());
  EXPECT_TRUE(out.tuples().empty());
  EXPECT_EQ(op->sequences_completed(), 1u);
}

TEST_F(ExceptionSeqTest, RecentModeReplacement) {
  // The paper's example: partial (A,B), then another B arrives — an
  // exception fires and the new B replaces the old one; a following C
  // still completes the sequence.
  auto op = MakeOp(PairingMode::kRecent);
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB1", Minutes(10))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB2", Minutes(20))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);  // exception for (A, B1)
  EXPECT_EQ(out.tuples()[0].value(1).string_value(), "opB2");  // offender
  EXPECT_EQ(op->partial_level(), 2u);  // (A, B2) survives
  ASSERT_TRUE(op->OnTuple(2, Op(schema_, "s", "opC", Minutes(30))).ok());
  EXPECT_EQ(op->sequences_completed(), 1u);
  EXPECT_EQ(out.tuples().size(), 1u);  // completion emits nothing (< 3)
}

TEST_F(ExceptionSeqTest, ConsecutiveModeResetsInsteadOfReplacing) {
  auto op = MakeOp(PairingMode::kConsecutive);
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB1", Minutes(10))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB2", Minutes(20))).ok());
  // Exception for (A,B1); B2 cannot start a sequence -> second exception.
  ASSERT_EQ(out.tuples().size(), 2u);
  EXPECT_EQ(op->partial_level(), 0u);
}

TEST_F(ExceptionSeqTest, ClevelEqualsCompletionEmitsCompletions) {
  // CLEVEL_SEQ(...) = 3 — emit only completed sequences.
  auto op = MakeOp(PairingMode::kConsecutive, true, BinaryOp::kEq, 3);
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB", Minutes(1))).ok());
  ASSERT_TRUE(op->OnTuple(2, Op(schema_, "s", "opC", Minutes(2))).ok());
  ASSERT_TRUE(op->OnTuple(2, Op(schema_, "s", "stray", Minutes(3))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(2).string_value(), "opC");
}

TEST_F(ExceptionSeqTest, ClevelLessThanTwoFiltersHighPartials) {
  // CLEVEL_SEQ(...) < 2 — only level-0/1 terminals emit.
  auto op = MakeOp(PairingMode::kConsecutive, true, BinaryOp::kLt, 2);
  CollectOperator out;
  op->AddSink(&out);
  // Level-2 violation: (A,B) then another B — suppressed (2 >= 2).
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB", Minutes(1))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB", Minutes(2))).ok());
  EXPECT_EQ(out.tuples().size(), 1u);  // only the level-0 stray-B event
  EXPECT_TRUE(out.tuples()[0].value(0).is_null());
}

TEST_F(ExceptionSeqTest, MidSequenceWindowAnchor) {
  // OVER [1 HOURS FOLLOWING A2]: the clock starts at the second step.
  auto op = MakeOp(PairingMode::kConsecutive, true, BinaryOp::kLt, 3,
                   /*anchor=*/1);
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "s", "opA", Minutes(0))).ok());
  // No deadline yet: hours may pass before B.
  ASSERT_TRUE(op->OnHeartbeat(Hours(5)).ok());
  EXPECT_TRUE(out.tuples().empty());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "s", "opB", Hours(6))).ok());
  // Deadline armed at B + 1h.
  ASSERT_TRUE(op->OnHeartbeat(Hours(7) + Minutes(1)).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(1).string_value(), "opB");
}

TEST_F(ExceptionSeqTest, MakeValidation) {
  ExceptionSeqConfig empty;
  EXPECT_TRUE(ExceptionSeqOperator::Make(std::move(empty))
                  .status()
                  .IsInvalid());

  ExceptionSeqConfig trailing_star;
  trailing_star.positions = {{"A", schema_, false}, {"B", schema_, true}};
  EXPECT_TRUE(ExceptionSeqOperator::Make(std::move(trailing_star))
                  .status()
                  .IsNotImplemented());

  ExceptionSeqConfig preceding;
  preceding.positions = {{"A", schema_, false}, {"B", schema_, false}};
  SeqWindow w;
  w.direction = WindowDirection::kPreceding;
  preceding.window = w;
  EXPECT_TRUE(ExceptionSeqOperator::Make(std::move(preceding))
                  .status()
                  .IsNotImplemented());

  ExceptionSeqConfig unrestricted;
  unrestricted.positions = {{"A", schema_, false}, {"B", schema_, false}};
  unrestricted.mode = PairingMode::kUnrestricted;
  EXPECT_TRUE(ExceptionSeqOperator::Make(std::move(unrestricted))
                  .status()
                  .IsNotImplemented());
}

TEST_F(ExceptionSeqTest, PairwiseQualification) {
  // Steps must be performed on the same specimen: A1.staff = A2.staff.
  ExceptionSeqConfig config;
  for (const char* alias : {"A1", "A2", "A3"}) {
    config.positions.push_back({alias, schema_, false});
  }
  PairwiseConstraint c1;
  c1.pos_a = 0;
  c1.pos_b = 1;
  c1.expr = Bind("A1.staff = A2.staff");
  config.pairwise.push_back(std::move(c1));
  config.projection.push_back(Bind("A1.tagid"));
  config.projection.push_back(Bind("A2.tagid"));
  config.projection.push_back(Bind("A3.tagid"));
  config.out_schema = Schema::Make({{"a1", TypeId::kString},
                                    {"a2", TypeId::kString},
                                    {"a3", TypeId::kString}});
  config.level_rhs = 3;
  auto op = std::move(ExceptionSeqOperator::Make(std::move(config)))
                .ValueUnsafe();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "alice", "opA", Minutes(0))).ok());
  // B by a different staff member: fails qualification -> wrong tuple.
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "bob", "opB", Minutes(1))).ok());
  ASSERT_EQ(out.tuples().size(), 2u);  // level-1 + level-0 exceptions
}

}  // namespace
}  // namespace eslev
