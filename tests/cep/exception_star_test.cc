// Star sequences inside EXCEPTION_SEQ (§3.1.3: "EXCEPTION_SEQ can also
// allow repeating star sequences"). Scenario: a batch-loading workflow —
// one or more items loaded (L*), then a seal (S), then a dispatch (D);
// violations when the order breaks, when the inter-item gap exceeds the
// gate, or when the sequence times out.

#include "cep/exception_seq_operator.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/basic_ops.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

SchemaPtr OpSchema() {
  return Schema::Make({{"worker", TypeId::kString},
                       {"tagid", TypeId::kString},
                       {"tagtime", TypeId::kTimestamp}});
}

Tuple Op(const SchemaPtr& s, const std::string& tag, Timestamp ts) {
  return *MakeTuple(
      s, {Value::String("w"), Value::String(tag), Value::Time(ts)}, ts);
}

class ExceptionStarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = OpSchema();
    scope_.AddEntry({"L", schema_, 0, true});
    scope_.AddEntry({"S", schema_, 0, false});
    scope_.AddEntry({"D", schema_, 0, false});
  }

  BoundExprPtr Bind(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    Binder binder(&scope_, &registry_);
    auto bound = binder.Bind(**parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return std::move(bound).ValueUnsafe();
  }

  // EXCEPTION_SEQ(L*, S, D) OVER [10 MINUTES FOLLOWING L], gate: items
  // arrive within 1 minute of each other.
  std::unique_ptr<ExceptionSeqOperator> MakeOp() {
    ExceptionSeqConfig config;
    config.positions = {{"L", schema_, true},
                        {"S", schema_, false},
                        {"D", schema_, false}};
    SeqWindow w;
    w.length = Minutes(10);
    w.direction = WindowDirection::kFollowing;
    w.anchor = 0;
    config.window = w;
    config.star_gates.resize(3);
    config.star_gates[0] =
        Bind("L.tagtime - L.previous.tagtime <= 1 MINUTES");
    config.projection.push_back(Bind("COUNT(L*)"));
    config.projection.push_back(Bind("S.tagid"));
    config.projection.push_back(Bind("D.tagid"));
    config.out_schema = Schema::Make({{"items", TypeId::kInt64},
                                      {"seal", TypeId::kString},
                                      {"dispatch", TypeId::kString}});
    config.level_op = BinaryOp::kLt;
    config.level_rhs = 3;
    auto op = ExceptionSeqOperator::Make(std::move(config));
    EXPECT_TRUE(op.ok()) << op.status();
    return std::move(op).ValueUnsafe();
  }

  SchemaPtr schema_;
  BindScope scope_;
  FunctionRegistry registry_;
};

TEST_F(ExceptionStarTest, CleanBatchCompletes) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item1", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item2", Seconds(30))).ok());
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item3", Seconds(70))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "seal1", Minutes(3))).ok());
  ASSERT_TRUE(op->OnTuple(2, Op(schema_, "dock1", Minutes(5))).ok());
  EXPECT_TRUE(out.tuples().empty());
  EXPECT_EQ(op->sequences_completed(), 1u);
}

TEST_F(ExceptionStarTest, GateViolationRaisesException) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item1", Minutes(0))).ok());
  // 5-minute gap between items: gate fails, partial (L) at level 1.
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item2", Minutes(5))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 1);  // COUNT(L*) == 1
  // The offending item restarts a fresh batch (it is a valid start).
  EXPECT_EQ(op->partial_level(), 1u);
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "seal1", Minutes(6))).ok());
  ASSERT_TRUE(op->OnTuple(2, Op(schema_, "dock1", Minutes(7))).ok());
  EXPECT_EQ(op->sequences_completed(), 1u);
}

TEST_F(ExceptionStarTest, WrongOrderAfterStarGroup) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item1", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item2", Seconds(20))).ok());
  // Dispatch before seal: level-1 exception with the 2-item group.
  ASSERT_TRUE(op->OnTuple(2, Op(schema_, "dock1", Minutes(1))).ok());
  ASSERT_EQ(out.tuples().size(), 2u);  // partial + stray dispatch
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 2);
  EXPECT_EQ(out.tuples()[0].value(2).string_value(), "dock1");  // offender
  EXPECT_TRUE(out.tuples()[1].value(1).is_null());
}

TEST_F(ExceptionStarTest, TimeoutCountsWholeGroup) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item1", Minutes(0))).ok());
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item2", Seconds(40))).ok());
  ASSERT_TRUE(op->OnTuple(1, Op(schema_, "seal1", Minutes(2))).ok());
  // No dispatch within 10 minutes of the first item.
  ASSERT_TRUE(op->OnHeartbeat(Minutes(11)).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 2);
  EXPECT_EQ(out.tuples()[0].value(1).string_value(), "seal1");
  EXPECT_TRUE(out.tuples()[0].value(2).is_null());
  EXPECT_EQ(op->partial_level(), 0u);
}

TEST_F(ExceptionStarTest, DeadlineAnchoredAtFirstStarTuple) {
  // The FOLLOWING window anchors at the *first* tuple of the starred
  // group (the batch's start), not the last.
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "item1", Minutes(0))).ok());
  for (int i = 1; i <= 11; ++i) {
    // Keep feeding items every 50 s: gate passes, but the 10-minute
    // deadline from item1 eventually fires.
    Status s = op->OnTuple(0, Op(schema_, "item" + std::to_string(i + 1),
                                 i * Seconds(50)));
    ASSERT_TRUE(s.ok());
  }
  // 12th item arrives at 550 s < 600 s; next crosses the deadline.
  ASSERT_TRUE(op->OnTuple(0, Op(schema_, "late", Seconds(650))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 12);
}

TEST_F(ExceptionStarTest, EndToEndThroughSql) {
  // The same pattern expressed in ESL-EV SQL through the Engine.
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM L(worker, tagid, tagtime);
    CREATE STREAM S(worker, tagid, tagtime);
    CREATE STREAM D(worker, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT COUNT(L*), S.tagid, D.tagid
    FROM L, S, D
    WHERE EXCEPTION_SEQ(L*, S, D)
    OVER [10 MINUTES FOLLOWING L]
      AND L.tagtime - L.previous.tagtime <= 1 MINUTES
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> alerts;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      alerts.push_back(t);
                    }).ok());
  auto push = [&](const std::string& stream, const std::string& tag,
                  Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push(stream,
                          {Value::String("w"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  // Clean batch.
  push("L", "i1", Minutes(0));
  push("L", "i2", Seconds(30));
  push("S", "seal", Minutes(2));
  push("D", "dock", Minutes(3));
  EXPECT_TRUE(alerts.empty());
  // Batch that stalls after sealing.
  push("L", "i3", Minutes(20));
  push("S", "seal2", Minutes(21));
  ASSERT_TRUE(engine.AdvanceTime(Minutes(40)).ok());
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].value(0).int_value(), 1);
  EXPECT_EQ(alerts[0].value(1).string_value(), "seal2");
}

}  // namespace
}  // namespace eslev
