// Metrics correctness on the §3.1.1 worked example: the retained
// joint-tuple-history gauge per pairing mode must reproduce the paper's
// purge story — UNRESTRICTED retains the most, CONSECUTIVE the least —
// and the stored/purged counters must reconcile exactly with the live
// history size (tuples_stored - tuples_purged == history_size).

#include <gtest/gtest.h>

#include "tests/cep/seq_test_util.h"

namespace eslev {
namespace {

using cep_test::Reading;
using cep_test::SeqBuilder;

class SeqMetricsWalkthroughTest : public ::testing::Test {
 protected:
  // Feeds the §3.1.1 history into a SEQ(C1, C2, C3, C4) operator:
  // [t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4].
  void Feed(SeqOperator* op, const SchemaPtr& schema) {
    auto push = [&](size_t port, Timestamp t) {
      ASSERT_TRUE(op->OnTuple(port, Reading(schema, "r", "x", t)).ok());
    };
    push(0, Seconds(1));
    push(0, Seconds(2));
    push(1, Seconds(3));
    push(2, Seconds(4));
    push(2, Seconds(5));
    push(1, Seconds(6));
    push(3, Seconds(7));
  }

  std::unique_ptr<SeqOperator> Run(PairingMode mode) {
    SeqBuilder b({"C1", "C2", "C3", "C4"});
    auto op = b.Mode(mode).Build();
    Feed(op.get(), b.schema());
    return op;
  }

  static int64_t Stat(const SeqOperator& op, const std::string& name) {
    OperatorStatList stats;
    op.AppendStats(&stats);
    for (const auto& [key, value] : stats) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing stat " << name;
    return -1;
  }
};

TEST_F(SeqMetricsWalkthroughTest, RetainedHistoryPerMode) {
  // UNRESTRICTED keeps every non-trigger tuple (t1..t6).
  EXPECT_EQ(Run(PairingMode::kUnrestricted)->history_size(), 6u);
  // RECENT purges aggressively: one C3 (t5), two C2 (t3 for the retained
  // earlier bound, t6 as most recent), one C1 (t2).
  EXPECT_EQ(Run(PairingMode::kRecent)->history_size(), 4u);
  // CHRONICLE consumed (t1, t3, t4, t7); t2, t5, t6 remain.
  EXPECT_EQ(Run(PairingMode::kChronicle)->history_size(), 3u);
  // CONSECUTIVE retains only the current adjacent run — none here.
  EXPECT_EQ(Run(PairingMode::kConsecutive)->history_size(), 0u);
}

TEST_F(SeqMetricsWalkthroughTest, StoredMinusPurgedEqualsRetained) {
  for (PairingMode mode :
       {PairingMode::kUnrestricted, PairingMode::kRecent,
        PairingMode::kChronicle, PairingMode::kConsecutive}) {
    auto op = Run(mode);
    EXPECT_EQ(op->tuples_in(), 7u) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(op->tuples_stored() - op->tuples_purged(), op->history_size())
        << "mode " << static_cast<int>(mode);
  }
}

TEST_F(SeqMetricsWalkthroughTest, AppendStatsExposesTheGauges) {
  auto op = Run(PairingMode::kRecent);
  EXPECT_EQ(Stat(*op, "retained_history"), 4);
  EXPECT_EQ(Stat(*op, "matches"), 1);
  EXPECT_EQ(Stat(*op, "open_star_length"), 0);
  EXPECT_EQ(Stat(*op, "tuples_stored") - Stat(*op, "tuples_purged"), 4);
}

TEST_F(SeqMetricsWalkthroughTest, WindowEvictionCountsAsPurged) {
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  auto op = b.Mode(PairingMode::kUnrestricted)
                .Window(Seconds(3), WindowDirection::kPreceding, 3)
                .Build();
  Feed(op.get(), b.schema());
  // The 3s window anchored at C4 (t7) evicts t1..t3; heartbeats keep
  // evicting as time moves on.
  EXPECT_EQ(op->tuples_stored() - op->tuples_purged(), op->history_size());
  ASSERT_TRUE(op->OnHeartbeat(Seconds(60)).ok());
  EXPECT_EQ(op->history_size(), 0u);
  EXPECT_EQ(op->tuples_stored(), op->tuples_purged());
}

TEST_F(SeqMetricsWalkthroughTest, DeliveryCountersAtTheDispatchBoundary) {
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  auto op = b.Mode(PairingMode::kUnrestricted).Build();
  CollectOperator out;
  op->AddSink(&out);
  Feed(op.get(), b.schema());
  ASSERT_TRUE(op->OnHeartbeat(Seconds(8)).ok());
  EXPECT_EQ(op->tuples_in(), 7u);
  EXPECT_EQ(op->tuples_emitted(), 4u);  // the four UNRESTRICTED events
  EXPECT_EQ(op->heartbeats_in(), 1u);
  EXPECT_EQ(out.tuples().size(), 4u);
}

}  // namespace
}  // namespace eslev
