// The paper's §3.1.1 worked example, reproduced exactly.
//
// Joint tuple history: [t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4]
//
//  UNRESTRICTED -> 4 events:
//    (t1,t3,t4,t7) (t1,t3,t5,t7) (t2,t3,t4,t7) (t2,t3,t5,t7)
//  RECENT       -> 1 event: (t2,t3,t5,t7)
//  CHRONICLE    -> 1 event: (t1,t3,t4,t7), participants consumed
//  CONSECUTIVE  -> no event

#include <gtest/gtest.h>

#include "tests/cep/seq_test_util.h"

namespace eslev {
namespace {

using cep_test::Reading;
using cep_test::SeqBuilder;

class WalkthroughTest : public ::testing::Test {
 protected:
  // Feeds the §3.1.1 history into a SEQ(C1, C2, C3, C4) operator.
  void Feed(SeqOperator* op, const SchemaPtr& schema) {
    auto push = [&](size_t port, Timestamp t) {
      ASSERT_TRUE(op->OnTuple(port, Reading(schema, "r", "x", t)).ok());
    };
    push(0, Seconds(1));  // t1:C1
    push(0, Seconds(2));  // t2:C1
    push(1, Seconds(3));  // t3:C2
    push(2, Seconds(4));  // t4:C3
    push(2, Seconds(5));  // t5:C3
    push(1, Seconds(6));  // t6:C2
    push(3, Seconds(7));  // t7:C4
  }

  // Events as (t1,t2,t3,t4) second-quadruples.
  std::vector<std::array<int64_t, 4>> Events(const CollectOperator& out) {
    std::vector<std::array<int64_t, 4>> es;
    for (const Tuple& t : out.tuples()) {
      es.push_back({t.value(0).time_value() / kSecond,
                    t.value(1).time_value() / kSecond,
                    t.value(2).time_value() / kSecond,
                    t.value(3).time_value() / kSecond});
    }
    std::sort(es.begin(), es.end());
    return es;
  }
};

TEST_F(WalkthroughTest, Unrestricted) {
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  auto op = b.Mode(PairingMode::kUnrestricted).Build();
  CollectOperator out;
  op->AddSink(&out);
  Feed(op.get(), b.schema());
  auto es = Events(out);
  ASSERT_EQ(es.size(), 4u);
  EXPECT_EQ(es[0], (std::array<int64_t, 4>{1, 3, 4, 7}));
  EXPECT_EQ(es[1], (std::array<int64_t, 4>{1, 3, 5, 7}));
  EXPECT_EQ(es[2], (std::array<int64_t, 4>{2, 3, 4, 7}));
  EXPECT_EQ(es[3], (std::array<int64_t, 4>{2, 3, 5, 7}));
}

TEST_F(WalkthroughTest, Recent) {
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  auto op = b.Mode(PairingMode::kRecent).Build();
  CollectOperator out;
  op->AddSink(&out);
  Feed(op.get(), b.schema());
  auto es = Events(out);
  ASSERT_EQ(es.size(), 1u);
  // "(t2:C1, t3:C2, t5:C3, t7:C4)" — C2:t6 is not qualifying (it is
  // after C3:t5), so C2:t3 is used, and C1:t2 not C1:t1.
  EXPECT_EQ(es[0], (std::array<int64_t, 4>{2, 3, 5, 7}));
}

TEST_F(WalkthroughTest, Chronicle) {
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  auto op = b.Mode(PairingMode::kChronicle).Build();
  CollectOperator out;
  op->AddSink(&out);
  Feed(op.get(), b.schema());
  auto es = Events(out);
  ASSERT_EQ(es.size(), 1u);
  EXPECT_EQ(es[0], (std::array<int64_t, 4>{1, 3, 4, 7}));
  // Participants were consumed: t2:C1, t5:C3, t6:C2 remain.
  EXPECT_EQ(op->history_size(), 3u);
}

TEST_F(WalkthroughTest, ChronicleConsumptionAllowsSecondMatch) {
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  auto op = b.Mode(PairingMode::kChronicle).Build();
  CollectOperator out;
  op->AddSink(&out);
  Feed(op.get(), b.schema());
  // Remaining history: t2:C1, t6:C2, t5:C3 — out of order (C3 before C2),
  // so another C4 cannot complete a second event... C3:t5 < C2:t6 means
  // SEQ(C1@2, C2@6, C3@?, C4) needs a C3 after t6.
  ASSERT_TRUE(op->OnTuple(3, Reading(b.schema(), "r", "x", Seconds(8))).ok());
  EXPECT_EQ(out.tuples().size(), 1u);
  // Provide the missing C3 and a final C4: now a second event forms.
  ASSERT_TRUE(op->OnTuple(2, Reading(b.schema(), "r", "x", Seconds(9))).ok());
  ASSERT_TRUE(op->OnTuple(3, Reading(b.schema(), "r", "x", Seconds(10))).ok());
  ASSERT_EQ(out.tuples().size(), 2u);
  EXPECT_EQ(out.tuples()[1].value(0).time_value(), Seconds(2));
  EXPECT_EQ(out.tuples()[1].value(1).time_value(), Seconds(6));
  EXPECT_EQ(out.tuples()[1].value(2).time_value(), Seconds(9));
  EXPECT_EQ(op->history_size(), 1u);  // only t5:C3 left
}

TEST_F(WalkthroughTest, Consecutive) {
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  auto op = b.Mode(PairingMode::kConsecutive).Build();
  CollectOperator out;
  op->AddSink(&out);
  Feed(op.get(), b.schema());
  EXPECT_TRUE(out.tuples().empty());
}

TEST_F(WalkthroughTest, ConsecutiveMatchesAdjacentRun) {
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  auto op = b.Mode(PairingMode::kConsecutive).Build();
  CollectOperator out;
  op->AddSink(&out);
  auto push = [&](size_t port, Timestamp t) {
    ASSERT_TRUE(op->OnTuple(port, Reading(b.schema(), "r", "x", t)).ok());
  };
  push(0, Seconds(1));
  push(1, Seconds(2));
  push(2, Seconds(3));
  push(3, Seconds(4));
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(op->history_size(), 0u);  // run consumed
  // An interrupted run produces nothing and resets.
  push(0, Seconds(5));
  push(1, Seconds(6));
  push(1, Seconds(7));  // interruption (C2 repeated)
  push(2, Seconds(8));
  push(3, Seconds(9));
  EXPECT_EQ(out.tuples().size(), 1u);
  // A clean run restarts from C1.
  push(0, Seconds(10));
  push(1, Seconds(11));
  push(2, Seconds(12));
  push(3, Seconds(13));
  EXPECT_EQ(out.tuples().size(), 2u);
}

}  // namespace
}  // namespace eslev
