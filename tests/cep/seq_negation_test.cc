// Negative events in SEQ — completing the core operator set the paper
// cites from [17] (conjunction, negation, sequence, star).
// SEQ(A, !B, C): an A followed by a C with no (qualifying) B in between.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace eslev {
namespace {

class SeqNegationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .ExecuteScript(R"sql(
      CREATE STREAM A(readerid, tagid, tagtime);
      CREATE STREAM B(readerid, tagid, tagtime);
      CREATE STREAM C(readerid, tagid, tagtime);
    )sql")
                    .ok());
  }

  void Push(const std::string& stream, const std::string& tag,
            Timestamp ts) {
    ASSERT_TRUE(engine_
                    .Push(stream,
                          {Value::String("r"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  }

  Engine engine_;
};

TEST_F(SeqNegationTest, InterveningEventSuppressesMatch) {
  auto q = engine_.RegisterQuery(R"sql(
    SELECT A.tagtime, C.tagtime FROM A, B, C
    WHERE SEQ(A, !B, C)
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> events;
  ASSERT_TRUE(engine_.Subscribe(q->output_stream, [&](const Tuple& t) {
                       events.push_back(t);
                     }).ok());

  Push("A", "a1", Seconds(1));
  Push("C", "c1", Seconds(2));  // A@1 -> C@2, no B: match
  ASSERT_EQ(events.size(), 1u);

  Push("A", "a2", Seconds(3));
  Push("B", "b1", Seconds(4));  // forbidden event in between
  Push("C", "c2", Seconds(5));
  // A@3..C@5 blocked by B@4; A@1..C@5 also blocked (B@4 in between).
  EXPECT_EQ(events.size(), 1u);

  Push("A", "a3", Seconds(6));
  Push("C", "c3", Seconds(7));  // A@6 -> C@7 clean
  // UNRESTRICTED also pairs A@3 and A@1 with C@7 — both contain B@4.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].value(0).time_value(), Seconds(6));
}

TEST_F(SeqNegationTest, RecentModePicksCleanPair) {
  auto q = engine_.RegisterQuery(R"sql(
    SELECT A.tagtime, C.tagtime FROM A, B, C
    WHERE SEQ(A, !B, C) MODE RECENT
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> events;
  ASSERT_TRUE(engine_.Subscribe(q->output_stream, [&](const Tuple& t) {
                       events.push_back(t);
                     }).ok());
  Push("A", "a1", Seconds(1));
  Push("B", "b1", Seconds(2));
  Push("C", "c1", Seconds(3));
  // Most recent A is a1, but B intervenes: RECENT's qualifying choice
  // fails — no event (negation is checked on the chosen combination).
  EXPECT_TRUE(events.empty());
  Push("A", "a2", Seconds(4));
  Push("C", "c2", Seconds(5));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].value(0).time_value(), Seconds(4));
}

TEST_F(SeqNegationTest, ArrivalFilterQualifiesForbiddenEvents) {
  // Only B readings with the same tag forbid the pair... tag conditions
  // on negated args are restricted to per-position form, so use a
  // constant filter: only 'alarm' B readings count.
  auto q = engine_.RegisterQuery(R"sql(
    SELECT A.tagtime, C.tagtime FROM A, B, C
    WHERE SEQ(A, !B, C) AND B.tagid = 'alarm'
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> events;
  ASSERT_TRUE(engine_.Subscribe(q->output_stream, [&](const Tuple& t) {
                       events.push_back(t);
                     }).ok());
  Push("A", "a1", Seconds(1));
  Push("B", "noise", Seconds(2));  // filtered out: does not forbid
  Push("C", "c1", Seconds(3));
  ASSERT_EQ(events.size(), 1u);
  Push("A", "a2", Seconds(4));
  Push("B", "alarm", Seconds(5));  // qualifies: forbids
  Push("C", "c2", Seconds(6));
  EXPECT_EQ(events.size(), 1u);
}

TEST_F(SeqNegationTest, ChronicleConsumesOnlyMatchedPositions) {
  auto q = engine_.RegisterQuery(R"sql(
    SELECT A.tagtime, C.tagtime FROM A, B, C
    WHERE SEQ(A, !B, C) MODE CHRONICLE
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> events;
  ASSERT_TRUE(engine_.Subscribe(q->output_stream, [&](const Tuple& t) {
                       events.push_back(t);
                     }).ok());
  Push("A", "a1", Seconds(1));
  Push("B", "b1", Seconds(2));
  Push("A", "a2", Seconds(3));
  Push("C", "c1", Seconds(4));
  // Earliest A (a1) is blocked by b1; chronicle backtracks to a2.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].value(0).time_value(), Seconds(3));
  // a1 was NOT consumed (it never matched) — but it stays blocked by b1
  // for any later C as well.
  Push("C", "c2", Seconds(5));
  EXPECT_EQ(events.size(), 1u);
}

TEST_F(SeqNegationTest, ValidationErrors) {
  // Negated first/last argument.
  EXPECT_TRUE(engine_
                  .RegisterQuery(
                      "SELECT A.tagid FROM A, B WHERE SEQ(!A, B)")
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(engine_
                  .RegisterQuery(
                      "SELECT A.tagid FROM A, B WHERE SEQ(A, !B)")
                  .status()
                  .IsInvalid());
  // Negated + starred.
  EXPECT_TRUE(engine_
                  .RegisterQuery(
                      "SELECT A.tagid FROM A, B, C WHERE SEQ(A, !B*, C)")
                  .status()
                  .IsParseError());
  // Projecting a negated argument.
  EXPECT_TRUE(engine_
                  .RegisterQuery(
                      "SELECT B.tagid FROM A, B, C WHERE SEQ(A, !B, C)")
                  .status()
                  .IsBindError());
  // Cross-position condition involving a negated argument.
  EXPECT_TRUE(engine_
                  .RegisterQuery(
                      "SELECT A.tagid FROM A, B, C WHERE SEQ(A, !B, C) "
                      "AND A.tagid = B.tagid")
                  .status()
                  .IsBindError());
  // EXCEPTION_SEQ rejects negation.
  EXPECT_TRUE(engine_
                  .RegisterQuery(
                      "SELECT A.tagid FROM A, B, C WHERE "
                      "EXCEPTION_SEQ(A, !B, C)")
                  .status()
                  .IsNotImplemented());
}

TEST_F(SeqNegationTest, SelectStarSkipsNegatedArguments) {
  auto q = engine_.RegisterQuery(
      "SELECT * FROM A, B, C WHERE SEQ(A, !B, C)");
  ASSERT_TRUE(q.ok()) << q.status();
  Stream* out = engine_.FindStream(q->output_stream);
  ASSERT_TRUE(out != nullptr);
  // Only A's and C's columns appear (3 + 3).
  EXPECT_EQ(out->schema()->num_fields(), 6u);
}

TEST_F(SeqNegationTest, WindowedNegation) {
  // The forbidden check composes with windows: a B outside the chosen
  // pair's interval does not forbid.
  auto q = engine_.RegisterQuery(R"sql(
    SELECT A.tagtime, C.tagtime FROM A, B, C
    WHERE SEQ(A, !B, C) OVER [10 SECONDS PRECEDING C] MODE RECENT
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> events;
  ASSERT_TRUE(engine_.Subscribe(q->output_stream, [&](const Tuple& t) {
                       events.push_back(t);
                     }).ok());
  Push("B", "b0", Seconds(1));   // before A: irrelevant
  Push("A", "a1", Seconds(2));
  Push("C", "c1", Seconds(3));
  ASSERT_EQ(events.size(), 1u);
  Push("A", "a2", Seconds(20));
  Push("B", "b1", Seconds(21));
  Push("C", "c2", Seconds(22));  // blocked
  EXPECT_EQ(events.size(), 1u);
}

}  // namespace
}  // namespace eslev
