// SeqNfa compilation golden tests for the paper's query shapes
// (corpus/*.sql), run-sharing behaviour of the NFA runtime, and purging
// on window expiry — empty windows, same-timestamp events, and a star
// followed by its anchor (DESIGN.md §14).

#include "cep/seq_nfa.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cep/nfa_seq_operator.h"
#include "tests/cep/seq_test_util.h"

namespace eslev {
namespace {

using cep_test::Reading;
using cep_test::ReadingSchema;
using cep_test::SeqBuilder;

std::vector<SeqPosition> Positions(
    const std::vector<std::string>& aliases,
    const std::vector<bool>& stars = {},
    const std::vector<bool>& negated = {}) {
  std::vector<SeqPosition> out;
  const SchemaPtr schema = ReadingSchema();
  for (size_t i = 0; i < aliases.size(); ++i) {
    SeqPosition p;
    p.alias = aliases[i];
    p.schema = schema;
    p.star = !stars.empty() && stars[i];
    p.negated = !negated.empty() && negated[i];
    out.push_back(std::move(p));
  }
  return out;
}

size_t CountKind(const SeqNfa& nfa, NfaEdgeKind kind) {
  size_t n = 0;
  for (const NfaTransition& t : nfa.transitions) {
    if (t.kind == kind) ++n;
  }
  return n;
}

int64_t StatValue(const Operator& op, const std::string& name) {
  OperatorStatList stats;
  op.AppendStats(&stats);
  for (const auto& [key, value] : stats) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "stat not reported: " << name;
  return -1;
}

// ---------------------------------------------------------------------------
// Golden construction for the corpus query shapes
// ---------------------------------------------------------------------------

TEST(SeqNfaCompileTest, QualityPipelineFourStages) {
  // corpus/quality_pipeline.sql (Example 6): SEQ(C1, C2, C3, C4) with
  // the tag join anchored at C1 — skip-till-match, no stars.
  PairwiseConstraint joins[3];
  joins[0].pos_a = 0;
  joins[0].pos_b = 1;
  joins[1].pos_a = 0;
  joins[1].pos_b = 2;
  joins[2].pos_a = 0;
  joins[2].pos_b = 3;
  std::vector<PairwiseConstraint> pairwise;
  for (auto& j : joins) pairwise.push_back(std::move(j));

  const SeqNfa nfa = CompileSeqNfa(Positions({"C1", "C2", "C3", "C4"}),
                                   pairwise, PairingMode::kUnrestricted);
  ASSERT_EQ(nfa.states.size(), 4u);
  EXPECT_EQ(nfa.num_positions, 4u);
  EXPECT_EQ(nfa.accept_state(), 3u);
  EXPECT_TRUE(nfa.states[3].accepting);
  EXPECT_FALSE(nfa.states[0].accepting);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(nfa.states[s].position, s);
    EXPECT_EQ(nfa.state_of_position[s], s);
    EXPECT_FALSE(nfa.states[s].star);
  }
  // 1 begin + 3 take + 3 ignore (one per non-accepting state).
  EXPECT_EQ(nfa.transitions.size(), 7u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kBegin), 1u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kTake), 3u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kLoop), 0u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kIgnore), 3u);
  // Each join binds on the take edge of its later endpoint.
  EXPECT_EQ(nfa.transitions[1].pairwise, std::vector<size_t>({0}));
  EXPECT_EQ(nfa.transitions[2].pairwise, std::vector<size_t>({1}));
  EXPECT_EQ(nfa.transitions[3].pairwise, std::vector<size_t>({2}));
  EXPECT_EQ(nfa.Describe(),
            "4 states, 7 transitions (1 begin, 3 take, 3 ignore)");
}

TEST(SeqNfaCompileTest, ContainmentLeadingStar) {
  // corpus/e4_containment.sql (Example 7): SEQ(R1*, R2) MODE CHRONICLE.
  // The starred state gets a gated self-loop; CHRONICLE keeps ignore
  // edges (skip-till-match).
  const SeqNfa nfa = CompileSeqNfa(Positions({"R1", "R2"}, {true, false}),
                                   {}, PairingMode::kChronicle);
  ASSERT_EQ(nfa.states.size(), 2u);
  EXPECT_TRUE(nfa.states[0].star);
  EXPECT_FALSE(nfa.states[1].star);
  EXPECT_EQ(nfa.transitions.size(), 4u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kBegin), 1u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kTake), 1u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kLoop), 1u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kIgnore), 1u);
  for (const NfaTransition& t : nfa.transitions) {
    if (t.kind == NfaEdgeKind::kLoop) {
      EXPECT_EQ(t.from_state, 0u);
      EXPECT_EQ(t.to_state, 0u);
      EXPECT_EQ(t.position, 0u);
    }
  }
  EXPECT_EQ(nfa.Describe(),
            "2 states, 4 transitions (1 begin, 1 take, 1 loop, 1 ignore)");
}

TEST(SeqNfaCompileTest, LabWorkflowConsecutiveHasNoIgnoreEdges) {
  // corpus/e5_lab_workflow.sql (Example 5): EXCEPTION_SEQ(A1, A2, A3)
  // runs the automaton in CONSECUTIVE mode — an unexpected arrival on
  // the joint history is fatal, so no ignore self-edges compile.
  const SeqNfa nfa = CompileSeqNfa(Positions({"A1", "A2", "A3"}), {},
                                   PairingMode::kConsecutive);
  ASSERT_EQ(nfa.states.size(), 3u);
  EXPECT_EQ(nfa.transitions.size(), 3u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kBegin), 1u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kTake), 2u);
  EXPECT_EQ(CountKind(nfa, NfaEdgeKind::kIgnore), 0u);
  EXPECT_EQ(nfa.Describe(), "3 states, 3 transitions (1 begin, 2 take)");
}

TEST(SeqNfaCompileTest, NegatedPositionCompilesToForbiddenBand) {
  // SEQ(A, !B, C): B contributes no state; the A->C take edge carries
  // position 1 as its forbidden band.
  const SeqNfa nfa =
      CompileSeqNfa(Positions({"A", "B", "C"}, {}, {false, true, false}),
                    {}, PairingMode::kUnrestricted);
  ASSERT_EQ(nfa.states.size(), 2u);
  EXPECT_EQ(nfa.num_positions, 3u);
  EXPECT_EQ(nfa.state_of_position[0], 0u);
  EXPECT_EQ(nfa.state_of_position[1], SeqNfa::kNoState);
  EXPECT_EQ(nfa.state_of_position[2], 1u);
  ASSERT_EQ(nfa.transitions.size(), 3u);  // begin, take, ignore
  const NfaTransition& take = nfa.transitions[1];
  ASSERT_EQ(take.kind, NfaEdgeKind::kTake);
  EXPECT_EQ(take.forbidden, std::vector<size_t>({1}));
}

// ---------------------------------------------------------------------------
// Run sharing
// ---------------------------------------------------------------------------

TEST(NfaRunSharingTest, RunsExtendingOneParentSharePrefix) {
  // One C1 followed by three C2s: the three state-1 runs must share the
  // single root node instead of copying the prefix.
  SeqBuilder b({"C1", "C2", "C3"});
  auto op = b.Mode(PairingMode::kUnrestricted).BuildWith(SeqBackend::kNfa);
  ASSERT_EQ(op->backend(), SeqBackend::kNfa);
  CollectOperator out;
  op->AddSink(&out);
  auto push = [&](size_t port, Timestamp t) {
    ASSERT_TRUE(op->OnTuple(port, Reading(b.schema(), "r", "A", t)).ok());
  };
  push(0, Seconds(1));
  EXPECT_EQ(StatValue(*op, "nfa_live_runs"), 1);
  EXPECT_EQ(StatValue(*op, "nfa_shared_prefixes"), 0);
  push(1, Seconds(2));
  push(1, Seconds(3));
  push(1, Seconds(4));
  // Root + three children; sharing counted from the second child on.
  EXPECT_EQ(StatValue(*op, "nfa_live_runs"), 4);
  EXPECT_EQ(StatValue(*op, "nfa_runs_created"), 4);
  EXPECT_EQ(StatValue(*op, "nfa_shared_prefixes"), 2);
  // The trigger pairs with every shared-prefix run.
  ASSERT_TRUE(op->OnTuple(2, Reading(b.schema(), "r", "A", Seconds(5))).ok());
  EXPECT_EQ(out.tuples().size(), 3u);
  EXPECT_EQ(StatValue(*op, "matches"), 3);
}

TEST(NfaRunSharingTest, StatesAndTransitionsReported) {
  SeqBuilder b({"C1", "C2", "C3"});
  auto op = b.Mode(PairingMode::kRecent).BuildWith(SeqBackend::kNfa);
  EXPECT_EQ(StatValue(*op, "nfa_states"), 3);
  // 1 begin + 2 take + 2 ignore.
  EXPECT_EQ(StatValue(*op, "nfa_transitions"), 5);
}

// ---------------------------------------------------------------------------
// Purge on window expiry
// ---------------------------------------------------------------------------

TEST(NfaPurgeTest, WindowExpiryPurgesRunsOnBothArrivalAndHeartbeat) {
  // PRECEDING window anchored at the last position: groups (and the
  // runs rooted in them) whose tuples can no longer reach any future
  // trigger are evicted as time advances.
  SeqBuilder b({"C1", "C2"});
  auto op = b.Mode(PairingMode::kUnrestricted)
                .Window(Seconds(10), WindowDirection::kPreceding, 1)
                .BuildWith(SeqBackend::kNfa);
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "A", Seconds(1))).ok());
  EXPECT_EQ(StatValue(*op, "nfa_live_runs"), 1);
  ASSERT_TRUE(op->OnHeartbeat(Seconds(30)).ok());
  EXPECT_EQ(StatValue(*op, "nfa_live_runs"), 0);
  EXPECT_EQ(StatValue(*op, "nfa_runs_purged"), 1);
  EXPECT_EQ(StatValue(*op, "tuples_purged"), 1);
  // The expired C1 is gone: a trigger now finds nothing.
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r", "A", Seconds(31))).ok());
  EXPECT_TRUE(out.tuples().empty());
}

TEST(NfaPurgeTest, EmptyWindowAdmitsOnlySimultaneousPredecessors) {
  // A zero-length window degenerates to "same timestamp": only a C1
  // sharing the trigger's timestamp (and arriving first) matches, and
  // every earlier C1 is purged as soon as time moves at all.
  SeqBuilder b({"C1", "C2"});
  auto op = b.Mode(PairingMode::kUnrestricted)
                .Window(Duration{0}, WindowDirection::kPreceding, 1)
                .BuildWith(SeqBackend::kNfa);
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "A", Seconds(1))).ok());
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "A", Seconds(5))).ok());
  // Same-timestamp events: arrival order (the sequence number) breaks
  // the tie, so the C1 at 5s still precedes a C2 at 5s.
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r", "A", Seconds(5))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).time_value(), Seconds(5));
  // The 1s C1 was outside the empty window of the 5s trigger and is
  // evicted by the arrival itself.
  EXPECT_EQ(StatValue(*op, "nfa_runs_purged"), 1);
  ASSERT_TRUE(op->OnHeartbeat(Seconds(6)).ok());
  EXPECT_EQ(StatValue(*op, "nfa_live_runs"), 0);
}

TEST(NfaPurgeTest, OpenStarGroupSurvivesExpiryUntilAnchorCloses) {
  // Star followed by anchor: an open star group keeps accumulating and
  // must not be evicted mid-accretion even when its oldest tuple has
  // left the window; once closed (gap) and expired, it goes.
  SeqBuilder b({"R1", "R2"}, {true, false});
  auto op = b.Mode(PairingMode::kUnrestricted)
                .Window(Seconds(10), WindowDirection::kPreceding, 1)
                .StarGate(0, "R1.tagtime - R1.previous.tagtime <= 2 SECONDS")
                .BuildWith(SeqBackend::kNfa);
  CollectOperator out;
  op->AddSink(&out);
  auto push = [&](size_t port, Timestamp t) {
    ASSERT_TRUE(op->OnTuple(port, Reading(b.schema(), "r", "A", t)).ok());
  };
  push(0, Seconds(1));
  push(0, Seconds(2));
  EXPECT_EQ(StatValue(*op, "open_star_length"), 2);
  // Heartbeat far past the window: the group is open, so it survives.
  ASSERT_TRUE(op->OnHeartbeat(Seconds(30)).ok());
  EXPECT_EQ(StatValue(*op, "nfa_live_runs"), 1);
  EXPECT_EQ(StatValue(*op, "open_star_length"), 2);
  // A gapped R1 closes the old group and roots a new run.
  push(0, Seconds(31));
  EXPECT_EQ(StatValue(*op, "nfa_live_runs"), 2);
  ASSERT_TRUE(op->OnHeartbeat(Seconds(60)).ok());
  // The closed, expired group is purged with both its tuples; the new
  // open group survives again.
  EXPECT_EQ(StatValue(*op, "nfa_live_runs"), 1);
  EXPECT_EQ(StatValue(*op, "tuples_purged"), 2);
  // The surviving group still completes a match inside the window.
  push(1, Seconds(32));
  ASSERT_EQ(out.tuples().size(), 1u);
}

}  // namespace
}  // namespace eslev
