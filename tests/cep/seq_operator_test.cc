// SEQ operator: windows, qualifying (pairwise) conditions, purging
// behavior, arrival filters, and configuration validation.

#include <gtest/gtest.h>

#include "tests/cep/seq_test_util.h"

namespace eslev {
namespace {

using cep_test::Reading;
using cep_test::SeqBuilder;

// ---------------------------------------------------------------------------
// Example 6 with the tagid join conditions
// ---------------------------------------------------------------------------

TEST(SeqQualifyTest, TagidJoinPrunesMixedProducts) {
  // Two products interleave through the four checking steps; only
  // same-tag sequences should be reported.
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  b.Mode(PairingMode::kUnrestricted)
      .Pairwise(0, 3, "C1.tagid = C4.tagid")
      .Pairwise(1, 3, "C2.tagid = C4.tagid")
      .Pairwise(2, 3, "C3.tagid = C4.tagid")
      .Project({"C1.tagid", "C1.tagtime", "C4.tagtime"},
               {{"tag", TypeId::kString},
                {"start", TypeId::kTimestamp},
                {"finish", TypeId::kTimestamp}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);

  auto push = [&](size_t port, const std::string& tag, Timestamp t) {
    ASSERT_TRUE(op->OnTuple(port, Reading(b.schema(), "r", tag, t)).ok());
  };
  push(0, "A", Seconds(1));
  push(0, "B", Seconds(2));
  push(1, "A", Seconds(3));
  push(1, "B", Seconds(4));
  push(2, "B", Seconds(5));
  push(2, "A", Seconds(6));
  push(3, "A", Seconds(7));
  push(3, "B", Seconds(8));

  ASSERT_EQ(out.tuples().size(), 2u);
  EXPECT_EQ(out.tuples()[0].value(0).string_value(), "A");
  EXPECT_EQ(out.tuples()[0].value(1).time_value(), Seconds(1));
  EXPECT_EQ(out.tuples()[1].value(0).string_value(), "B");
}

TEST(SeqQualifyTest, RecentPicksMostRecentQualifying) {
  // With a tag join, RECENT must skip a more recent non-qualifying tuple
  // in favor of an older qualifying one.
  SeqBuilder b({"C1", "C2"});
  b.Mode(PairingMode::kRecent)
      .Pairwise(0, 1, "C1.tagid = C2.tagid")
      .Project({"C1.tagtime", "C2.tagtime"},
               {{"t1", TypeId::kTimestamp}, {"t2", TypeId::kTimestamp}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "A", Seconds(1))).ok());
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "B", Seconds(2))).ok());
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r", "A", Seconds(3))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).time_value(), Seconds(1));
}

// ---------------------------------------------------------------------------
// Windows on SEQ
// ---------------------------------------------------------------------------

TEST(SeqWindowTest, PrecedingWindowAnchoredAtLast) {
  // SEQ(C1, C2) OVER [10 SECONDS PRECEDING C2].
  SeqBuilder b({"C1", "C2"});
  b.Mode(PairingMode::kUnrestricted)
      .Window(Seconds(10), WindowDirection::kPreceding, 1)
      .Project({"C1.tagtime", "C2.tagtime"},
               {{"t1", TypeId::kTimestamp}, {"t2", TypeId::kTimestamp}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(1))).ok());
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(8))).ok());
  // C2 at 12s: C1@1 is 11s earlier (outside), C1@8 is 4s earlier (inside).
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r", "x", Seconds(12))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).time_value(), Seconds(8));
}

TEST(SeqWindowTest, WindowEvictsHistory) {
  SeqBuilder b({"C1", "C2"});
  b.Mode(PairingMode::kUnrestricted)
      .Window(Seconds(10), WindowDirection::kPreceding, 1);
  auto op = b.Build();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(i))).ok());
  }
  // Only tuples within the last 10 seconds survive.
  EXPECT_LE(op->history_size(), 11u);
  // Heartbeats evict without arrivals.
  ASSERT_TRUE(op->OnHeartbeat(Seconds(1000)).ok());
  EXPECT_EQ(op->history_size(), 0u);
}

TEST(SeqWindowTest, FollowingWindowAnchoredAtFirst) {
  // SEQ(C1, C2, C3) OVER [10 SECONDS FOLLOWING C1]: the whole sequence
  // must finish within 10s of C1.
  SeqBuilder b({"C1", "C2", "C3"});
  b.Mode(PairingMode::kUnrestricted)
      .Window(Seconds(10), WindowDirection::kFollowing, 0)
      .Project({"C1.tagtime", "C3.tagtime"},
               {{"t1", TypeId::kTimestamp}, {"t3", TypeId::kTimestamp}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(0))).ok());
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r", "x", Seconds(5))).ok());
  ASSERT_TRUE(op->OnTuple(2, Reading(b.schema(), "r", "x", Seconds(15))).ok());
  EXPECT_TRUE(out.tuples().empty());  // C3 at 15s > 0s + 10s
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(20))).ok());
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r", "x", Seconds(22))).ok());
  ASSERT_TRUE(op->OnTuple(2, Reading(b.schema(), "r", "x", Seconds(25))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).time_value(), Seconds(20));
}

TEST(SeqWindowTest, MidSequenceAnchor) {
  // OVER [5 SECONDS FOLLOWING C2] in SEQ(C1, C2, C3): C3 must be within
  // 5s of C2; C1 is unconstrained.
  SeqBuilder b({"C1", "C2", "C3"});
  b.Mode(PairingMode::kUnrestricted)
      .Window(Seconds(5), WindowDirection::kFollowing, 1)
      .Project({"C1.tagtime", "C2.tagtime", "C3.tagtime"},
               {{"t1", TypeId::kTimestamp},
                {"t2", TypeId::kTimestamp},
                {"t3", TypeId::kTimestamp}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(0))).ok());
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r", "x", Seconds(100))).ok());
  ASSERT_TRUE(op->OnTuple(2, Reading(b.schema(), "r", "x", Seconds(103))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);  // C1 100s earlier is fine
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r", "x", Seconds(200))).ok());
  ASSERT_TRUE(op->OnTuple(2, Reading(b.schema(), "r", "x", Seconds(206))).ok());
  EXPECT_EQ(out.tuples().size(), 1u);  // C3 6s after C2: rejected
}

// ---------------------------------------------------------------------------
// Purging / state size
// ---------------------------------------------------------------------------

TEST(SeqPurgeTest, UnrestrictedHistoryGrowsWithoutWindow) {
  SeqBuilder b({"C1", "C2"});
  auto op = b.Mode(PairingMode::kUnrestricted).Build();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(i))).ok());
  }
  EXPECT_EQ(op->history_size(), 100u);
}

TEST(SeqPurgeTest, RecentKeepsConstantHistory) {
  // The paper's claim: RECENT allows aggressive purging — earlier tuples
  // are replaced by later ones.
  SeqBuilder b({"C1", "C2", "C3"});
  auto op = b.Mode(PairingMode::kRecent).Build();
  CollectOperator out;
  op->AddSink(&out);
  for (int i = 0; i < 300; i += 3) {
    ASSERT_TRUE(
        op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(i))).ok());
    ASSERT_TRUE(
        op->OnTuple(1, Reading(b.schema(), "r", "x", Seconds(i + 1))).ok());
    ASSERT_TRUE(
        op->OnTuple(2, Reading(b.schema(), "r", "x", Seconds(i + 2))).ok());
  }
  EXPECT_EQ(out.tuples().size(), 100u);
  // Exact purge: per non-final position at most (bounds + latest) entries.
  EXPECT_LE(op->history_size(), 4u);
}

TEST(SeqPurgeTest, RecentPurgeKeepsCorrectness) {
  // Replay the §3.1.1 walkthrough but interleave purges: result must be
  // identical to the unpurged RECENT run.
  SeqBuilder b({"C1", "C2", "C3", "C4"});
  auto op = b.Mode(PairingMode::kRecent).Build();
  CollectOperator out;
  op->AddSink(&out);
  auto push = [&](size_t port, Timestamp t) {
    ASSERT_TRUE(op->OnTuple(port, Reading(b.schema(), "r", "x", t)).ok());
  };
  push(0, Seconds(1));
  push(0, Seconds(2));
  push(1, Seconds(3));
  push(2, Seconds(4));
  push(2, Seconds(5));
  push(1, Seconds(6));
  push(3, Seconds(7));
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).time_value(), Seconds(2));
  EXPECT_EQ(out.tuples()[0].value(1).time_value(), Seconds(3));
  EXPECT_EQ(out.tuples()[0].value(2).time_value(), Seconds(5));
}

TEST(SeqPurgeTest, ChronicleConsumptionBoundsHistory) {
  SeqBuilder b({"C1", "C2"});
  auto op = b.Mode(PairingMode::kChronicle).Build();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(2 * i))).ok());
    ASSERT_TRUE(
        op->OnTuple(1, Reading(b.schema(), "r", "x", Seconds(2 * i + 1)))
            .ok());
  }
  EXPECT_EQ(op->history_size(), 0u);  // every C1 got consumed
  EXPECT_EQ(op->matches_emitted(), 100u);
}

TEST(SeqPurgeTest, ConsecutiveKeepsOnlyCurrentRun) {
  SeqBuilder b({"C1", "C2", "C3"});
  auto op = b.Mode(PairingMode::kConsecutive).Build();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(i))).ok());
  }
  // Repeated C1 arrivals keep resetting the run.
  EXPECT_LE(op->history_size(), 1u);
}

// ---------------------------------------------------------------------------
// Arrival filters and validation
// ---------------------------------------------------------------------------

TEST(SeqConfigTest, ArrivalFilterIgnoresNonQualifyingTuples) {
  SeqBuilder b({"C1", "C2"});
  b.Mode(PairingMode::kUnrestricted)
      .ArrivalFilter(0, "C1.readerid = 'dock'")
      .Project({"C1.tagtime", "C2.tagtime"},
               {{"t1", TypeId::kTimestamp}, {"t2", TypeId::kTimestamp}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "gate", "x", Seconds(1))).ok());
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "dock", "x", Seconds(2))).ok());
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r2", "x", Seconds(3))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).time_value(), Seconds(2));
}

TEST(SeqConfigTest, MakeValidation) {
  SeqOperatorConfig config;  // no positions
  EXPECT_TRUE(SeqOperator::Make(std::move(config)).status().IsInvalid());

  SeqBuilder b({"A", "B"}, {true, true});
  b.PerTupleStar(0).Project({"A.tagid"}, {{"x", TypeId::kString}});
  // Two stars + per-tuple return violates footnote 4. SeqBuilder's
  // EXPECT would fire inside Build, so call Make directly.
  SeqOperatorConfig c2;
  c2.positions = {{"A", cep_test::ReadingSchema(), true},
                  {"B", cep_test::ReadingSchema(), true}};
  c2.per_tuple_star = 0;
  c2.projection.push_back(std::make_unique<BoundLiteral>(Value::Int(1)));
  c2.out_schema = Schema::Make({{"x", TypeId::kInt64}});
  EXPECT_TRUE(SeqOperator::Make(std::move(c2)).status().IsInvalid());

  SeqOperatorConfig c3;
  c3.positions = {{"A", cep_test::ReadingSchema(), false},
                  {"B", cep_test::ReadingSchema(), false}};
  c3.projection.push_back(std::make_unique<BoundLiteral>(Value::Int(1)));
  c3.out_schema = Schema::Make({{"x", TypeId::kInt64}});
  SeqWindow w;
  w.anchor = 5;  // out of range
  c3.window = w;
  EXPECT_TRUE(SeqOperator::Make(std::move(c3)).status().IsInvalid());
}

TEST(SeqConfigTest, PortOutOfRange) {
  SeqBuilder b({"A", "B"});
  auto op = b.Build();
  EXPECT_TRUE(op->OnTuple(7, Reading(b.schema(), "r", "x", 0))
                  .IsExecutionError());
}

TEST(SeqQualifyTest, SimultaneousTimestampsOrderedByArrival) {
  // Ties on timestamp are broken by arrival order (documented choice).
  SeqBuilder b({"C1", "C2"});
  auto op = b.Mode(PairingMode::kUnrestricted).Build();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r", "x", Seconds(1))).ok());
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r", "x", Seconds(1))).ok());
  EXPECT_EQ(out.tuples().size(), 1u);
  // Reversed arrival: C2 then C1 at the same timestamp -> no event.
  SeqBuilder b2({"C1", "C2"});
  auto op2 = b2.Mode(PairingMode::kUnrestricted).Build();
  CollectOperator out2;
  op2->AddSink(&out2);
  ASSERT_TRUE(op2->OnTuple(1, Reading(b2.schema(), "r", "x", Seconds(1))).ok());
  ASSERT_TRUE(op2->OnTuple(0, Reading(b2.schema(), "r", "x", Seconds(1))).ok());
  EXPECT_TRUE(out2.tuples().empty());
}

}  // namespace
}  // namespace eslev
