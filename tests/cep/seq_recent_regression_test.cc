// Regression: RECENT matching with join conditions chained through an
// earlier position (the paper's Example 6 writes C1.tagid=C2.tagid AND
// C1.tagid=C3.tagid AND C1.tagid=C4.tagid). A greedy backward pass picks
// the most recent C3 regardless of tag and then fails at C1; the correct
// result needs most-recent-first backtracking.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "rfid/workloads.h"

namespace eslev {
namespace {

TEST(SeqRecentRegressionTest, ChainedJoinConditionsBacktrack) {
  rfid::QualityCheckWorkloadOptions options;
  options.num_products = 10;
  options.drop_rate = 0;
  auto w = rfid::MakeQualityCheckWorkload(options);

  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM C1(readerid, tagid, tagtime);
    CREATE STREAM C2(readerid, tagid, tagtime);
    CREATE STREAM C3(readerid, tagid, tagtime);
    CREATE STREAM C4(readerid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT C4.tagid FROM C1, C2, C3, C4
    WHERE SEQ(C1, C2, C3, C4) OVER [30 MINUTES PRECEDING C4] MODE RECENT
      AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  size_t events = 0;
  ASSERT_TRUE(
      engine.Subscribe(q->output_stream, [&](const Tuple&) { ++events; })
          .ok());
  for (const auto& e : w.events) {
    ASSERT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
  }
  // Interleaved products: every product still completes under RECENT.
  EXPECT_EQ(events, w.expected_events);
  EXPECT_EQ(events, 10u);
}

}  // namespace
}  // namespace eslev
