// Shared helpers for CEP tests: build SEQ operators over the paper's
// quality-check streams C1..C4 (schema readerid, tagid, tagtime).

#ifndef ESLEV_TESTS_CEP_SEQ_TEST_UTIL_H_
#define ESLEV_TESTS_CEP_SEQ_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "cep/seq_operator.h"
#include "cep/seq_operator_base.h"
#include "exec/basic_ops.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace cep_test {

inline SchemaPtr ReadingSchema() {
  return Schema::Make({{"readerid", TypeId::kString},
                       {"tagid", TypeId::kString},
                       {"tagtime", TypeId::kTimestamp}});
}

inline Tuple Reading(const SchemaPtr& s, const std::string& reader,
                     const std::string& tag, Timestamp ts) {
  return *MakeTuple(
      s, {Value::String(reader), Value::String(tag), Value::Time(ts)}, ts);
}

/// Builds a SeqOperatorConfig for aliases (starred per `stars`), with a
/// default projection of every position's tagid and tagtime.
class SeqBuilder {
 public:
  explicit SeqBuilder(std::vector<std::string> aliases,
                      std::vector<bool> stars = {}) {
    schema_ = ReadingSchema();
    if (stars.empty()) stars.assign(aliases.size(), false);
    for (size_t i = 0; i < aliases.size(); ++i) {
      scope_.AddEntry({aliases[i], schema_, 0, stars[i]});
      SeqPosition p;
      p.alias = aliases[i];
      p.schema = schema_;
      p.star = stars[i];
      config_.positions.push_back(std::move(p));
    }
  }

  BoundExprPtr Bind(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    Binder binder(&scope_, &registry_);
    auto bound = binder.Bind(**parsed);
    EXPECT_TRUE(bound.ok()) << text << ": " << bound.status();
    return std::move(bound).ValueUnsafe();
  }

  SeqBuilder& Mode(PairingMode m) {
    config_.mode = m;
    return *this;
  }

  SeqBuilder& Window(Duration len, WindowDirection dir, size_t anchor) {
    SeqWindow w;
    w.length = len;
    w.direction = dir;
    w.anchor = anchor;
    config_.window = w;
    return *this;
  }

  SeqBuilder& Pairwise(size_t a, size_t b, const std::string& expr) {
    PairwiseConstraint c;
    c.pos_a = a;
    c.pos_b = b;
    c.expr = Bind(expr);
    config_.pairwise.push_back(std::move(c));
    return *this;
  }

  SeqBuilder& StarGate(size_t pos, const std::string& expr) {
    config_.star_gates.resize(config_.positions.size());
    config_.star_gates[pos] = Bind(expr);
    return *this;
  }

  SeqBuilder& ArrivalFilter(size_t pos, const std::string& expr) {
    config_.arrival_filters.resize(config_.positions.size());
    config_.arrival_filters[pos] = Bind(expr);
    return *this;
  }

  SeqBuilder& FinalCheck(const std::string& expr) {
    config_.final_checks.push_back(Bind(expr));
    return *this;
  }

  SeqBuilder& Project(const std::vector<std::string>& exprs,
                      std::vector<Field> out_fields) {
    config_.projection.clear();
    for (const auto& e : exprs) config_.projection.push_back(Bind(e));
    config_.out_schema = Schema::Make(std::move(out_fields));
    return *this;
  }

  SeqBuilder& PerTupleStar(int pos) {
    config_.per_tuple_star = pos;
    return *this;
  }

  std::unique_ptr<SeqOperator> Build() {
    FinishConfig();
    auto op = SeqOperator::Make(std::move(config_));
    EXPECT_TRUE(op.ok()) << op.status();
    return std::move(op).ValueUnsafe();
  }

  /// Builds through the backend factory (history or NFA runtime).
  std::unique_ptr<SeqOperatorBase> BuildWith(SeqBackend backend) {
    FinishConfig();
    auto op = MakeSeqOperator(std::move(config_), backend);
    EXPECT_TRUE(op.ok()) << op.status();
    return std::move(op).ValueUnsafe();
  }

  const SchemaPtr& schema() const { return schema_; }

 private:
  void FinishConfig() {
    if (config_.projection.empty()) {
      // Default projection: tagtime of every position.
      std::vector<Field> fields;
      for (size_t i = 0; i < config_.positions.size(); ++i) {
        config_.projection.push_back(
            Bind(config_.positions[i].alias + ".tagtime"));
        fields.push_back({"t" + std::to_string(i), TypeId::kTimestamp});
      }
      config_.out_schema = Schema::Make(std::move(fields));
    }
  }

  SchemaPtr schema_;
  BindScope scope_;
  FunctionRegistry registry_;
  SeqOperatorConfig config_;
};

}  // namespace cep_test
}  // namespace eslev

#endif  // ESLEV_TESTS_CEP_SEQ_TEST_UTIL_H_
