// Star-argument edge cases (paper §3.1.2): star aggregates on
// single-element and maximal-length runs, `previous` gates that always
// fail (every element becomes its own group), and trailing-star online
// emission interacting with window expiry mid-run.

#include <gtest/gtest.h>

#include <string>

#include "tests/cep/seq_test_util.h"

namespace eslev {
namespace {

using cep_test::Reading;
using cep_test::SeqBuilder;

// Example 7's aggregate projection over SEQ(R1*, R2) MODE CHRONICLE.
std::unique_ptr<SeqOperator> MakeExample7(SeqBuilder* b,
                                          const std::string& gate) {
  b->Mode(PairingMode::kChronicle)
      .StarGate(0, gate)
      .Pairwise(0, 1, "R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS")
      .Project({"FIRST(R1*).tagtime", "LAST(R1*).tagtime", "COUNT(R1*)",
                "R2.tagid"},
               {{"first_time", TypeId::kTimestamp},
                {"last_time", TypeId::kTimestamp},
                {"cnt", TypeId::kInt64},
                {"case_tag", TypeId::kString}});
  return b->Build();
}

constexpr char kGapGate[] = "R1.tagtime - R1.previous.tagtime <= 1 SECONDS";

TEST(StarEdgeCasesTest, SingleElementRunFirstEqualsLast) {
  SeqBuilder b({"R1", "R2"}, {true, false});
  auto op = MakeExample7(&b, kGapGate);
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(
      op->OnTuple(0, Reading(b.schema(), "r1", "p1", Seconds(1))).ok());
  ASSERT_TRUE(
      op->OnTuple(1, Reading(b.schema(), "r2", "c1", Seconds(2))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  const Tuple& e = out.tuples()[0];
  EXPECT_EQ(e.value(0).time_value(), Seconds(1));  // FIRST
  EXPECT_EQ(e.value(1).time_value(), Seconds(1));  // LAST == FIRST
  EXPECT_EQ(e.value(2).int_value(), 1);            // COUNT
}

TEST(StarEdgeCasesTest, MaximalLengthRunAggregates) {
  SeqBuilder b({"R1", "R2"}, {true, false});
  auto op = MakeExample7(&b, kGapGate);
  CollectOperator out;
  op->AddSink(&out);
  // 50 products 100ms apart: every `previous` gap passes the 1s gate, so
  // the whole run is one group and longest-match reports all of it.
  constexpr int kRun = 50;
  for (int i = 0; i < kRun; ++i) {
    ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r1",
                                       "p" + std::to_string(i),
                                       i * Milliseconds(100)))
                    .ok());
  }
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "r2", "case",
                                     kRun * Milliseconds(100)))
                  .ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  const Tuple& e = out.tuples()[0];
  EXPECT_EQ(e.value(0).time_value(), 0);
  EXPECT_EQ(e.value(1).time_value(), (kRun - 1) * Milliseconds(100));
  EXPECT_EQ(e.value(2).int_value(), kRun);
}

TEST(StarEdgeCasesTest, AlwaysFailingGateYieldsSingletonGroups) {
  SeqBuilder b({"R1", "R2"}, {true, false});
  // Products arrive strictly increasing, so this gate fails for every
  // second element: each product is its own group (the first element of
  // a group has no `previous`, so the gate cannot reject it).
  auto op = MakeExample7(&b, "R1.tagtime - R1.previous.tagtime <= 0 SECONDS");
  CollectOperator out;
  op->AddSink(&out);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r1",
                                       "p" + std::to_string(i), Seconds(i)))
                    .ok());
  }
  // Each case consumes the earliest surviving singleton (CHRONICLE).
  ASSERT_TRUE(
      op->OnTuple(1, Reading(b.schema(), "r2", "c1", Seconds(4))).ok());
  ASSERT_TRUE(
      op->OnTuple(1, Reading(b.schema(), "r2", "c2", Seconds(5))).ok());
  ASSERT_EQ(out.tuples().size(), 2u);
  EXPECT_EQ(out.tuples()[0].value(2).int_value(), 1);
  EXPECT_EQ(out.tuples()[0].value(0).time_value(), Seconds(0));
  EXPECT_EQ(out.tuples()[1].value(2).int_value(), 1);
  EXPECT_EQ(out.tuples()[1].value(0).time_value(), Seconds(1));
}

TEST(StarEdgeCasesTest, TrailingStarOnlineEmissionGrowsPerArrival) {
  // SEQ(E1*, E2*): one event per E2 arrival, COUNT(E2*) growing online.
  SeqBuilder b({"E1", "E2"}, {true, true});
  b.Mode(PairingMode::kUnrestricted)
      .Project({"FIRST(E1*).tagtime", "COUNT(E1*)", "COUNT(E2*)"},
               {{"f1", TypeId::kTimestamp},
                {"n1", TypeId::kInt64},
                {"n2", TypeId::kInt64}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "a", "x", Seconds(0))).ok());
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "a", "x", Seconds(1))).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        op->OnTuple(1, Reading(b.schema(), "b", "y", Seconds(2 + i))).ok());
    ASSERT_EQ(out.tuples().size(), static_cast<size_t>(i + 1));
    EXPECT_EQ(out.tuples().back().value(1).int_value(), 2);
    EXPECT_EQ(out.tuples().back().value(2).int_value(), i + 1);
  }
}

TEST(StarEdgeCasesTest, WindowExpiryMidRunCutsTheStarPrefix) {
  // SEQ(E1*, E2) with a 5s window PRECEDING E2: once the E1 group falls
  // out of the window, later E2 arrivals no longer see it.
  SeqBuilder b({"E1", "E2"}, {true, false});
  b.Mode(PairingMode::kUnrestricted)
      .Window(Seconds(5), WindowDirection::kPreceding, 1)
      .Project({"COUNT(E1*)"}, {{"n1", TypeId::kInt64}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        op->OnTuple(0, Reading(b.schema(), "a", "x", Seconds(i))).ok());
  }
  // First trigger inside the window: the full run matches.
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "b", "y", Seconds(4))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 3);
  // Second trigger far outside: the group expired mid-run, no event.
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "b", "y", Seconds(60))).ok());
  EXPECT_EQ(out.tuples().size(), 1u);
  // The expired group was purged, and the accounting reconciles.
  EXPECT_EQ(op->tuples_stored() - op->tuples_purged(), op->history_size());
}

TEST(StarEdgeCasesTest, OpenGroupSurvivesHeartbeatEviction) {
  // Window eviction only drops closed groups: a still-accumulating star
  // group must survive a heartbeat far in the future (it may yet extend),
  // and open_star_length reports its size.
  SeqBuilder b({"R1", "R2"}, {true, false});
  b.Mode(PairingMode::kChronicle)
      .Window(Seconds(5), WindowDirection::kPreceding, 1)
      .StarGate(0, kGapGate)
      .Project({"COUNT(R1*)"}, {{"cnt", TypeId::kInt64}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r1", "p", Seconds(1))).ok());
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r1", "p", Seconds(2))).ok());
  EXPECT_EQ(op->open_star_length(), 2u);
  ASSERT_TRUE(op->OnHeartbeat(Seconds(100)).ok());
  EXPECT_EQ(op->history_size(), 2u) << "open group must not be evicted";
}

}  // namespace
}  // namespace eslev
