// Star sequences (paper §3.1.2) — the containment scenario of
// Figure 1 / Examples 4 and 7: SEQ(R1*, R2) MODE CHRONICLE with
//   R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS   (t0, case follows)
//   R1.tagtime - R1.previous.tagtime <= 1 SECONDS (t1, intra-case gap)

#include <gtest/gtest.h>

#include "tests/cep/seq_test_util.h"

namespace eslev {
namespace {

using cep_test::Reading;
using cep_test::SeqBuilder;

class ContainmentTest : public ::testing::Test {
 protected:
  // Example 7's aggregate query: FIRST(R1*).tagtime, COUNT(R1*),
  // R2.tagid, R2.tagtime.
  std::unique_ptr<SeqOperator> MakeExample7(SeqBuilder* b) {
    b->Mode(PairingMode::kChronicle)
        .StarGate(0, "R1.tagtime - R1.previous.tagtime <= 1 SECONDS")
        .Pairwise(0, 1, "R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS")
        .Project({"FIRST(R1*).tagtime", "COUNT(R1*)", "R2.tagid",
                  "R2.tagtime"},
                 {{"first_time", TypeId::kTimestamp},
                  {"cnt", TypeId::kInt64},
                  {"case_tag", TypeId::kString},
                  {"case_time", TypeId::kTimestamp}});
    return b->Build();
  }
};

TEST_F(ContainmentTest, SingleCasePacking) {
  SeqBuilder b({"R1", "R2"}, {true, false});
  auto op = MakeExample7(&b);
  CollectOperator out;
  op->AddSink(&out);

  // Three products 0.5s apart, case read 2s after the last product.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r1",
                                       "p" + std::to_string(i),
                                       i * Milliseconds(500)))
                    .ok());
  }
  ASSERT_TRUE(
      op->OnTuple(1, Reading(b.schema(), "r2", "case1", Seconds(3))).ok());

  ASSERT_EQ(out.tuples().size(), 1u);
  const Tuple& e = out.tuples()[0];
  EXPECT_EQ(e.value(0).time_value(), 0);          // FIRST(R1*).tagtime
  EXPECT_EQ(e.value(1).int_value(), 3);           // COUNT(R1*)
  EXPECT_EQ(e.value(2).string_value(), "case1");  // R2.tagid
  EXPECT_EQ(e.value(3).time_value(), Seconds(3));
}

TEST_F(ContainmentTest, Figure1bTwoInterleavedCases) {
  // Products for case2 start before case1 is read (Figure 1(b)): gap
  // > t1 separates the two product groups; each case reading matches the
  // earliest unconsumed group (CHRONICLE).
  SeqBuilder b({"R1", "R2"}, {true, false});
  auto op = MakeExample7(&b);
  CollectOperator out;
  op->AddSink(&out);

  auto prod = [&](const std::string& tag, Timestamp ts) {
    ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r1", tag, ts)).ok());
  };
  // Group 1: p1, p2, p3 at 0, 0.4, 0.8s.
  prod("p1", Milliseconds(0));
  prod("p2", Milliseconds(400));
  prod("p3", Milliseconds(800));
  // Gap of 2s > t1 -> new group: p4, p5 at 2.8, 3.3s.
  prod("p4", Milliseconds(2800));
  prod("p5", Milliseconds(3300));
  // case1 read at 3.9s: within 5s of group1's last (0.8s).
  ASSERT_TRUE(op->OnTuple(
                  1, Reading(b.schema(), "r2", "case1", Milliseconds(3900)))
                  .ok());
  // case2 read at 4.5s: matches group2.
  ASSERT_TRUE(op->OnTuple(
                  1, Reading(b.schema(), "r2", "case2", Milliseconds(4500)))
                  .ok());

  ASSERT_EQ(out.tuples().size(), 2u);
  EXPECT_EQ(out.tuples()[0].value(2).string_value(), "case1");
  EXPECT_EQ(out.tuples()[0].value(1).int_value(), 3);
  EXPECT_EQ(out.tuples()[1].value(2).string_value(), "case2");
  EXPECT_EQ(out.tuples()[1].value(1).int_value(), 2);
  // All products consumed.
  EXPECT_EQ(op->history_size(), 0u);
}

TEST_F(ContainmentTest, StaleGroupDroppedWhenT0Exceeded) {
  // A case arriving more than 5s after a group's last product does not
  // match that group (the pairwise t0 constraint fails) but can match a
  // fresher group.
  SeqBuilder b({"R1", "R2"}, {true, false});
  auto op = MakeExample7(&b);
  CollectOperator out;
  op->AddSink(&out);

  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r1", "p1", 0)).ok());
  ASSERT_TRUE(
      op->OnTuple(0, Reading(b.schema(), "r1", "p2", Seconds(10))).ok());
  // case at 12s: group1's last is 0s (12s > 5s, fails); group2's last is
  // 10s (2s <= 5s, matches).
  ASSERT_TRUE(
      op->OnTuple(1, Reading(b.schema(), "r2", "caseX", Seconds(12))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).time_value(), Seconds(10));
  EXPECT_EQ(out.tuples()[0].value(1).int_value(), 1);
}

TEST_F(ContainmentTest, MultipleReturnPerProduct) {
  // Footnote 4: return one row per product in the matched star group.
  SeqBuilder b({"R1", "R2"}, {true, false});
  b.Mode(PairingMode::kChronicle)
      .StarGate(0, "R1.tagtime - R1.previous.tagtime <= 1 SECONDS")
      .Pairwise(0, 1, "R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS")
      .Project({"R1.tagid", "R1.tagtime", "R2.tagid", "R2.tagtime"},
               {{"item", TypeId::kString},
                {"item_time", TypeId::kTimestamp},
                {"case_tag", TypeId::kString},
                {"case_time", TypeId::kTimestamp}})
      .PerTupleStar(0);
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r1",
                                       "p" + std::to_string(i),
                                       i * Milliseconds(300)))
                    .ok());
  }
  ASSERT_TRUE(
      op->OnTuple(1, Reading(b.schema(), "r2", "caseZ", Seconds(2))).ok());
  ASSERT_EQ(out.tuples().size(), 3u);
  EXPECT_EQ(out.tuples()[0].value(0).string_value(), "p0");
  EXPECT_EQ(out.tuples()[1].value(0).string_value(), "p1");
  EXPECT_EQ(out.tuples()[2].value(0).string_value(), "p2");
  for (const auto& t : out.tuples()) {
    EXPECT_EQ(t.value(2).string_value(), "caseZ");
  }
}

TEST_F(ContainmentTest, LongestMatchOnly) {
  // The paper: "we only generate event on the longest possible star
  // sequences" — three R1 tuples produce one event with COUNT = 3, not
  // events for the 1- and 2-product suffixes.
  SeqBuilder b({"R1", "R2"}, {true, false});
  auto op = MakeExample7(&b);
  CollectOperator out;
  op->AddSink(&out);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        op->OnTuple(0, Reading(b.schema(), "r1", "p", i * Milliseconds(100)))
            .ok());
  }
  ASSERT_TRUE(
      op->OnTuple(1, Reading(b.schema(), "r2", "c", Seconds(1))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(1).int_value(), 3);
}

TEST_F(ContainmentTest, TrailingStarEmitsOnline) {
  // SEQ(E1*, E2*): one event per E2 arrival (paper §3.1.2).
  SeqBuilder b({"E1", "E2"}, {true, true});
  b.Mode(PairingMode::kUnrestricted)
      .Project({"COUNT(E1*)", "COUNT(E2*)"},
               {{"n1", TypeId::kInt64}, {"n2", TypeId::kInt64}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        op->OnTuple(0, Reading(b.schema(), "a", "x", Seconds(i))).ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        op->OnTuple(1, Reading(b.schema(), "b", "y", Seconds(10 + i))).ok());
  }
  ASSERT_EQ(out.tuples().size(), 3u);
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 3);
  EXPECT_EQ(out.tuples()[0].value(1).int_value(), 1);
  EXPECT_EQ(out.tuples()[2].value(1).int_value(), 3);
}

TEST_F(ContainmentTest, InnerStarMidSequence) {
  // SEQ(A*, B, C): a run of A's, then one B, then one C.
  SeqBuilder b({"A", "B", "C"}, {true, false, false});
  b.Mode(PairingMode::kChronicle)
      .Project({"COUNT(A*)", "B.tagtime", "C.tagtime"},
               {{"na", TypeId::kInt64},
                {"tb", TypeId::kTimestamp},
                {"tc", TypeId::kTimestamp}});
  auto op = b.Build();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "a", "x", Seconds(1))).ok());
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "a", "x", Seconds(2))).ok());
  ASSERT_TRUE(op->OnTuple(1, Reading(b.schema(), "b", "y", Seconds(3))).ok());
  ASSERT_TRUE(op->OnTuple(2, Reading(b.schema(), "c", "z", Seconds(4))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 2);
  EXPECT_EQ(out.tuples()[0].value(1).time_value(), Seconds(3));
}

TEST_F(ContainmentTest, StarGroupNotSplitAcrossEvents) {
  // Once CHRONICLE consumes a group, its members cannot reappear.
  SeqBuilder b({"R1", "R2"}, {true, false});
  auto op = MakeExample7(&b);
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, Reading(b.schema(), "r1", "p1", 0)).ok());
  ASSERT_TRUE(
      op->OnTuple(1, Reading(b.schema(), "r2", "c1", Seconds(1))).ok());
  ASSERT_TRUE(
      op->OnTuple(1, Reading(b.schema(), "r2", "c2", Seconds(2))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);  // c2 finds no products
}

}  // namespace
}  // namespace eslev
