// GetEnvInt64 / GetEnvChoice / ResolveBatchSize / ResolveSeqBackend:
// every environment knob goes through one validated parser — 0,
// negatives, garbage, and out-of-range values must be rejected with an
// error naming the variable, not silently coerced (DESIGN.md §13, §14).

#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "cep/seq_backend.h"

namespace eslev {
namespace {

// Scoped setter so a failing assertion cannot leak ESLEV_BATCH_SIZE into
// later tests (the batch knob is process-global).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, /*overwrite=*/1);
    }
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

constexpr char kVar[] = "ESLEV_ENV_TEST_VAR";

TEST(GetEnvInt64Test, UnsetReturnsNullopt) {
  ScopedEnv env(kVar, nullptr);
  auto r = GetEnvInt64(kVar, 1, 100);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->has_value());
}

TEST(GetEnvInt64Test, EmptyReturnsNullopt) {
  ScopedEnv env(kVar, "");
  auto r = GetEnvInt64(kVar, 1, 100);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->has_value());
}

TEST(GetEnvInt64Test, ParsesValidValue) {
  ScopedEnv env(kVar, "64");
  auto r = GetEnvInt64(kVar, 1, 100);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ(**r, 64);
}

TEST(GetEnvInt64Test, AcceptsRangeEndpoints) {
  {
    ScopedEnv env(kVar, "1");
    auto r = GetEnvInt64(kVar, 1, 100);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(**r, 1);
  }
  {
    ScopedEnv env(kVar, "100");
    auto r = GetEnvInt64(kVar, 1, 100);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(**r, 100);
  }
}

TEST(GetEnvInt64Test, RejectsGarbage) {
  for (const char* bad : {"abc", "12abc", "1.5", " 7 ", "0x10", "++3"}) {
    ScopedEnv env(kVar, bad);
    auto r = GetEnvInt64(kVar, 1, 100);
    EXPECT_FALSE(r.ok()) << "accepted '" << bad << "'";
    EXPECT_NE(r.status().message().find(kVar), std::string::npos)
        << "error does not name the variable: " << r.status();
  }
}

TEST(GetEnvInt64Test, RejectsOutOfRange) {
  for (const char* bad : {"0", "-1", "101", "99999999999999999999"}) {
    ScopedEnv env(kVar, bad);
    auto r = GetEnvInt64(kVar, 1, 100);
    EXPECT_FALSE(r.ok()) << "accepted '" << bad << "'";
  }
}

TEST(ResolveBatchSizeTest, ConfiguredValueWithoutOverride) {
  ScopedEnv env(kBatchSizeEnvVar, nullptr);
  auto r = ResolveBatchSize(64);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, 64u);
}

TEST(ResolveBatchSizeTest, EnvOverridesConfigured) {
  ScopedEnv env(kBatchSizeEnvVar, "256");
  auto r = ResolveBatchSize(1);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, 256u);
}

TEST(ResolveBatchSizeTest, RejectsZeroConfigured) {
  ScopedEnv env(kBatchSizeEnvVar, nullptr);
  EXPECT_FALSE(ResolveBatchSize(0).ok());
}

TEST(ResolveBatchSizeTest, RejectsOversizedConfigured) {
  ScopedEnv env(kBatchSizeEnvVar, nullptr);
  EXPECT_FALSE(
      ResolveBatchSize(static_cast<size_t>(kMaxBatchSize) + 1).ok());
}

TEST(ResolveBatchSizeTest, RejectsBadEnvValues) {
  for (const char* bad : {"0", "-4", "garbage", "64k", ""}) {
    ScopedEnv env(kBatchSizeEnvVar, bad);
    auto r = ResolveBatchSize(1);
    if (std::string(bad).empty()) {
      // Empty counts as unset: fall back to the configured value.
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(*r, 1u);
    } else {
      EXPECT_FALSE(r.ok()) << "accepted ESLEV_BATCH_SIZE='" << bad << "'";
    }
  }
}

TEST(ResolveBatchSizeTest, AcceptsMaxBatchSize) {
  ScopedEnv env(kBatchSizeEnvVar, "1048576");
  auto r = ResolveBatchSize(1);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, static_cast<size_t>(kMaxBatchSize));
}

TEST(GetEnvChoiceTest, UnsetAndEmptyReturnNullopt) {
  for (const char* value : {static_cast<const char*>(nullptr), ""}) {
    ScopedEnv env(kVar, value);
    auto r = GetEnvChoice(kVar, {"alpha", "beta"});
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(r->has_value());
  }
}

TEST(GetEnvChoiceTest, MatchesCaseInsensitively) {
  for (const char* value : {"beta", "BETA", "Beta"}) {
    ScopedEnv env(kVar, value);
    auto r = GetEnvChoice(kVar, {"alpha", "beta"});
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, 1u);
  }
}

TEST(GetEnvChoiceTest, RejectsUnknownNamingVariableAndChoices) {
  ScopedEnv env(kVar, "gamma");
  auto r = GetEnvChoice(kVar, {"alpha", "beta"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(kVar), std::string::npos)
      << r.status();
  EXPECT_NE(r.status().message().find("'alpha'"), std::string::npos)
      << r.status();
  EXPECT_NE(r.status().message().find("'beta'"), std::string::npos)
      << r.status();
}

TEST(ResolveSeqBackendTest, ConfiguredValueWithoutOverride) {
  ScopedEnv env(kSeqBackendEnvVar, nullptr);
  auto r = ResolveSeqBackend(SeqBackend::kNfa);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, SeqBackend::kNfa);
}

TEST(ResolveSeqBackendTest, EnvOverridesConfigured) {
  ScopedEnv env(kSeqBackendEnvVar, "nfa");
  auto r = ResolveSeqBackend(SeqBackend::kHistory);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, SeqBackend::kNfa);

  ScopedEnv env2(kSeqBackendEnvVar, "HISTORY");
  r = ResolveSeqBackend(SeqBackend::kNfa);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, SeqBackend::kHistory);
}

TEST(ResolveSeqBackendTest, RejectsUnknownBackend) {
  ScopedEnv env(kSeqBackendEnvVar, "dfa");
  auto r = ResolveSeqBackend(SeqBackend::kHistory);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(kSeqBackendEnvVar), std::string::npos)
      << r.status();
}

TEST(ParseSeqBackendTest, RoundTripsSpellings) {
  auto h = ParseSeqBackend("history");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*h, SeqBackend::kHistory);
  EXPECT_STREQ(SeqBackendToString(*h), "history");
  auto n = ParseSeqBackend("NFA");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, SeqBackend::kNfa);
  EXPECT_STREQ(SeqBackendToString(*n), "nfa");
  EXPECT_FALSE(ParseSeqBackend("regex").ok());
}

}  // namespace
}  // namespace eslev
