// MetricsRegistry unit tests: counter/gauge/histogram semantics,
// power-of-two bucketing, concurrent increments (the hot path is relaxed
// atomics only), snapshot merging, and JSON serialization.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace eslev {
namespace {

TEST(CounterTest, IncrementAndRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, BucketIndex) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // The last bucket absorbs the tail.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets - 1);
}

TEST(HistogramTest, ObserveTracksCountSumMax) {
  Histogram h;
  h.Observe(0);
  h.Observe(3);
  h.Observe(9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.max(), 9u);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.mean(), 4.0);
  ASSERT_EQ(snap.bucket_counts.size(), Histogram::kBuckets);
  EXPECT_EQ(snap.bucket_counts[0], 1u);                           // v == 0
  EXPECT_EQ(snap.bucket_counts[Histogram::BucketIndex(3)], 1u);   // v == 3
  EXPECT_EQ(snap.bucket_counts[Histogram::BucketIndex(9)], 1u);   // v == 9
}

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("tuples_in");
  Counter* b = registry.GetCounter("tuples_in");
  EXPECT_EQ(a, b);
  a->Increment(5);
  EXPECT_EQ(registry.GetCounter("tuples_in")->value(), 5u);
  EXPECT_NE(static_cast<void*>(registry.GetGauge("tuples_in")),
            static_cast<void*>(a));  // separate namespaces per kind
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hot");
  Histogram* h = registry.GetHistogram("dist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->max(), uint64_t{kThreads - 1});
}

TEST(MetricsSnapshotTest, MergeAddsAndPrefixes) {
  MetricsSnapshot a;
  a.counters["x"] = 1;
  a.gauges["g"] = 10;

  MetricsSnapshot b;
  b.counters["x"] = 2;
  b.gauges["g"] = 5;
  Histogram h;
  h.Observe(4);
  b.histograms["d"] = h.Snapshot();

  MetricsSnapshot merged;
  merged.Merge("s0.", a);
  merged.Merge("s0.", b);  // same prefix: values add
  merged.Merge("s1.", b);
  EXPECT_EQ(merged.counters["s0.x"], 3u);
  EXPECT_EQ(merged.gauges["s0.g"], 15);
  EXPECT_EQ(merged.counters["s1.x"], 2u);
  EXPECT_EQ(merged.histograms["s1.d"].count, 1u);
  // Bucket-wise histogram merge.
  merged.Merge("s1.", b);
  EXPECT_EQ(merged.histograms["s1.d"].count, 2u);
  EXPECT_EQ(merged.histograms["s1.d"].sum, 8u);
  EXPECT_EQ(merged.histograms["s1.d"].bucket_counts[Histogram::BucketIndex(4)],
            2u);
}

TEST(MetricsRegistryTest, ToJsonIsWellFormedAndSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Increment(2);
  registry.GetCounter("a.count")->Increment(1);
  registry.GetGauge("lag")->Set(-7);
  registry.GetHistogram("dist")->Observe(3);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"a.count\":1,\"b.count\":2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"lag\":-7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dist\":{\"count\":1,\"sum\":3,\"max\":3"),
            std::string::npos)
      << json;
  // Balanced braces, no trailing garbage.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, EmptyRegistryJson) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

}  // namespace
}  // namespace eslev
