#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace eslev {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(s.message(), "unexpected token");
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, CopyIsCheapAndEqualValued) {
  Status a = Status::NotFound("stream r1");
  Status b = a;  // shared state
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "stream r1");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::Invalid("x").IsInvalid());
  EXPECT_TRUE(Status::BindError("x").IsBindError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::ExecutionError("x").IsExecutionError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
}

Status Fails() { return Status::Invalid("inner"); }
Status Propagates() {
  ESLEV_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = Propagates();
  EXPECT_TRUE(s.IsInvalid());
  EXPECT_EQ(s.message(), "inner");
}

Result<int> MakeInt(bool fail) {
  if (fail) return Status::OutOfRange("nope");
  return 42;
}

Result<int> Doubled(bool fail) {
  ESLEV_ASSIGN_OR_RETURN(int v, MakeInt(fail));
  return v * 2;
}

TEST(ResultTest, ValuePath) {
  auto r = Doubled(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 84);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorPath) {
  auto r = Doubled(true);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(Result<int>(Status::Invalid("x")).ValueOr(7), 7);
  EXPECT_EQ(Result<int>(3).ValueOr(7), 3);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueUnsafe();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace eslev
