#include "common/string_util.h"

#include <gtest/gtest.h>

namespace eslev {
namespace {

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(AsciiToUpper("select"), "SELECT");
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToUpper(""), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(AsciiEqualsIgnoreCase("SEQ", "seq"));
  EXPECT_TRUE(AsciiEqualsIgnoreCase("", ""));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("SEQ", "SEQUEL"));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, Split) {
  auto parts = Split("20.57.9000", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "20");
  EXPECT_EQ(parts[1], "57");
  EXPECT_EQ(parts[2], "9000");

  auto empties = Split("a..b", '.');
  ASSERT_EQ(empties.size(), 3u);
  EXPECT_EQ(empties[1], "");

  auto single = Split("abc", '.');
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], "abc");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool match;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  EXPECT_EQ(SqlLikeMatch(GetParam().text, GetParam().pattern),
            GetParam().match)
      << GetParam().text << " LIKE " << GetParam().pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeMatchTest,
    ::testing::Values(
        // The paper's Example 3 pattern: '20.%.%'
        LikeCase{"20.57.9000", "20.%.%", true},
        LikeCase{"21.57.9000", "20.%.%", false},
        LikeCase{"20.57", "20.%.%", false},  // needs a second '.'
        LikeCase{"20.57.", "20.%.%", true},  // '%' may match empty
        LikeCase{"20", "20.%.%", false},
        LikeCase{"abc", "abc", true},
        LikeCase{"abc", "a_c", true},
        LikeCase{"abc", "a_d", false},
        LikeCase{"abc", "%", true},
        LikeCase{"", "%", true},
        LikeCase{"", "", true},
        LikeCase{"", "_", false},
        LikeCase{"abcdef", "a%f", true},
        LikeCase{"abcdef", "a%g", false},
        LikeCase{"aaa", "%a", true},
        LikeCase{"mississippi", "%ss%pp%", true},
        LikeCase{"mississippi", "%ss%xx%", false},
        LikeCase{"abc", "abc%", true},
        LikeCase{"abc", "%%%", true}));

}  // namespace
}  // namespace eslev
