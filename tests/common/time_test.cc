#include "common/time.h"

#include <gtest/gtest.h>

namespace eslev {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(kSecond, 1000000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(Seconds(5), 5 * kSecond);
  EXPECT_EQ(Minutes(2), 2 * kMinute);
  EXPECT_EQ(Hours(1), kHour);
  EXPECT_EQ(Milliseconds(1500), kSecond + 500 * kMillisecond);
}

struct UnitCase {
  const char* name;
  Duration expected;
};

class ParseTimeUnitTest : public ::testing::TestWithParam<UnitCase> {};

TEST_P(ParseTimeUnitTest, ParsesKnownUnits) {
  auto r = ParseTimeUnit(GetParam().name);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Units, ParseTimeUnitTest,
    ::testing::Values(UnitCase{"SECOND", kSecond}, UnitCase{"seconds", kSecond},
                      UnitCase{"Minute", kMinute}, UnitCase{"MINUTES", kMinute},
                      UnitCase{"hour", kHour}, UnitCase{"HOURS", kHour},
                      UnitCase{"day", kDay}, UnitCase{"MILLISECONDS", kMillisecond},
                      UnitCase{"microseconds", kMicrosecond}));

TEST(ParseTimeUnitTest, RejectsUnknown) {
  EXPECT_TRUE(ParseTimeUnit("fortnight").status().IsParseError());
  EXPECT_TRUE(ParseTimeUnit("").status().IsParseError());
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(0), "0s");
  EXPECT_EQ(FormatDuration(Seconds(5)), "5s");
  EXPECT_EQ(FormatDuration(Hours(1) + Minutes(30)), "1h30m");
  EXPECT_EQ(FormatDuration(Milliseconds(250)), "250ms");
  EXPECT_EQ(FormatDuration(-Seconds(2)), "-2s");
  EXPECT_EQ(FormatDuration(3), "3us");
}

TEST(TimeTest, FormatTimestamp) {
  EXPECT_EQ(FormatTimestamp(0), "0.000000s");
  EXPECT_EQ(FormatTimestamp(Seconds(12) + 345), "12.000345s");
}

}  // namespace
}  // namespace eslev
