// Vectorized execution (DESIGN.md §13): auto-batching must be
// observationally identical to tuple-at-a-time — same emissions in the
// same order — while the batch.* metrics, EXPLAIN ANALYZE counters, and
// safety gating expose what the engine actually did.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/env.h"
#include "core/engine.h"
#include "stream/stream.h"

namespace eslev {
namespace {

constexpr char kDedupScript[] = R"sql(
  CREATE STREAM readings(reader_id, tag_id, read_time);
  CREATE STREAM cleaned(reader_id, tag_id, read_time);
  INSERT INTO cleaned
  SELECT * FROM readings AS r1
  WHERE NOT EXISTS
    (SELECT * FROM TABLE( readings OVER
        (RANGE 1 seconds PRECEDING CURRENT)) AS r2
     WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
)sql";

Engine MakeEngine(size_t batch_size) {
  EngineOptions options;
  options.batch_size = batch_size;
  options.honor_batch_env = false;  // isolate tests from the environment
  return Engine(options);
}

// Feed the dedup pipeline a fixed trace and collect emissions in order.
std::vector<std::string> RunDedup(size_t batch_size) {
  Engine engine = MakeEngine(batch_size);
  EXPECT_TRUE(engine.ExecuteScript(kDedupScript).ok());
  std::vector<std::string> rows;
  EXPECT_TRUE(engine
                  .Subscribe("cleaned",
                             [&](const Tuple& t) { rows.push_back(t.ToString()); })
                  .ok());
  int sec = 1;
  for (int round = 0; round < 10; ++round) {
    for (const char* tag : {"a", "b", "a", "c", "b", "a"}) {
      EXPECT_TRUE(engine
                      .Push("readings",
                            {Value::String("r1"), Value::String(tag),
                             Value::Time(Seconds(sec))},
                            Seconds(sec))
                      .ok());
      sec += (round % 3 == 0) ? 1 : 0;  // mix duplicates and fresh reads
    }
    ++sec;
  }
  EXPECT_TRUE(engine.AdvanceTime(Seconds(sec + 60)).ok());
  return rows;
}

TEST(BatchPipelineTest, DedupByteIdenticalAcrossBatchSizes) {
  const std::vector<std::string> reference = RunDedup(1);
  ASSERT_FALSE(reference.empty());
  for (size_t batch_size : {2u, 3u, 7u, 64u, 1024u}) {
    EXPECT_EQ(RunDedup(batch_size), reference)
        << "divergence at batch_size=" << batch_size;
  }
}

TEST(BatchPipelineTest, PendingBatchFlushesOnHeartbeat) {
  Engine engine = MakeEngine(8);
  ASSERT_TRUE(engine.ExecuteScript(kDedupScript).ok());
  std::vector<std::string> rows;
  ASSERT_TRUE(engine
                  .Subscribe("cleaned",
                             [&](const Tuple& t) { rows.push_back(t.ToString()); })
                  .ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine
                    .Push("readings",
                          {Value::String("r1"), Value::String("t" + std::to_string(i)),
                           Value::Time(Seconds(i + 1))},
                          Seconds(i + 1))
                    .ok());
  }
  // Below the batch size: buffered, nothing emitted yet.
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(engine.Metrics().gauges.at("batch.pending"), 3);
  // Heartbeats are batch boundaries.
  ASSERT_TRUE(engine.AdvanceTime(Seconds(10)).ok());
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(engine.Metrics().gauges.at("batch.pending"), 0);
}

TEST(BatchPipelineTest, ExplicitFlushDeliversPendingBatch) {
  Engine engine = MakeEngine(100);
  ASSERT_TRUE(engine.ExecuteScript(kDedupScript).ok());
  size_t emitted = 0;
  ASSERT_TRUE(
      engine.Subscribe("cleaned", [&](const Tuple&) { ++emitted; }).ok());
  ASSERT_TRUE(engine
                  .Push("readings",
                        {Value::String("r"), Value::String("x"),
                         Value::Time(Seconds(1))},
                        Seconds(1))
                  .ok());
  EXPECT_EQ(emitted, 0u);
  ASSERT_TRUE(engine.FlushBatches().ok());
  EXPECT_EQ(emitted, 1u);
}

TEST(BatchPipelineTest, StreamSwitchIsABatchBoundary) {
  Engine engine = MakeEngine(100);
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM a(v, t_time);
    CREATE STREAM b(v, t_time);
  )sql")
                  .ok());
  auto qa = engine.RegisterQuery("SELECT v FROM a");
  ASSERT_TRUE(qa.ok()) << qa.status();
  size_t emitted = 0;
  ASSERT_TRUE(
      engine.Subscribe(qa->output_stream, [&](const Tuple&) { ++emitted; })
          .ok());
  ASSERT_TRUE(engine
                  .Push("a", {Value::String("1"), Value::Time(Seconds(1))},
                        Seconds(1))
                  .ok());
  EXPECT_EQ(emitted, 0u);  // buffered
  // Switching streams flushes the pending run before the new tuple.
  ASSERT_TRUE(engine
                  .Push("b", {Value::String("2"), Value::Time(Seconds(2))},
                        Seconds(2))
                  .ok());
  EXPECT_EQ(emitted, 1u);
}

TEST(BatchPipelineTest, BatchMetricsAndAnalyzeCounters) {
  Engine engine = MakeEngine(4);
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tid, read_time);
  )sql")
                  .ok());
  const std::string sql =
      "SELECT reader_id, tid FROM readings WHERE tid = 'keep'";
  auto q = engine.RegisterQuery(sql);
  ASSERT_TRUE(q.ok()) << q.status();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine
                    .Push("readings",
                          {Value::String("r"), Value::String(i % 2 ? "keep" : "drop"),
                           Value::Time(Seconds(i + 1))},
                          Seconds(i + 1))
                    .ok());
  }
  ASSERT_TRUE(engine.FlushBatches().ok());

  MetricsSnapshot snap = engine.Metrics();
  EXPECT_EQ(snap.gauges.at("batch.size"), 4);
  EXPECT_EQ(snap.gauges.at("batch.safe"), 1);
  EXPECT_EQ(snap.counters.at("batch.batches_dispatched"), 2u);
  EXPECT_EQ(snap.counters.at("batch.tuples_batched"), 8u);
  EXPECT_EQ(snap.gauges.at("batch.avg_fill_x100"), 400);
  // Filter and projection run native batch paths: no fallback tuples.
  EXPECT_EQ(snap.counters.at("batch.fallback_tuples"), 0u);

  auto analyzed = engine.Explain("EXPLAIN ANALYZE " + sql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_NE(analyzed->find("batches_in="), std::string::npos) << *analyzed;
}

TEST(BatchPipelineTest, TupleModeAnalyzeOmitsBatchCounters) {
  Engine engine = MakeEngine(1);
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tid, read_time);
  )sql")
                  .ok());
  const std::string sql = "SELECT reader_id FROM readings";
  auto q = engine.RegisterQuery(sql);
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(engine
                  .Push("readings",
                        {Value::String("r"), Value::String("t"),
                         Value::Time(Seconds(1))},
                        Seconds(1))
                  .ok());
  auto analyzed = engine.Explain("EXPLAIN ANALYZE " + sql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_EQ(analyzed->find("batches_in="), std::string::npos) << *analyzed;
}

TEST(BatchPipelineTest, FallbackOperatorCountsFallbackTuples) {
  // A running aggregate has no native batch path: the default
  // ProcessBatch loops the per-tuple path and counts what it deferred.
  Engine engine = MakeEngine(4);
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tid, read_time);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery("SELECT count(tid) FROM readings");
  ASSERT_TRUE(q.ok()) << q.status();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    .Push("readings",
                          {Value::String("r"), Value::String("t"),
                           Value::Time(Seconds(i + 1))},
                          Seconds(i + 1))
                    .ok());
  }
  MetricsSnapshot snap = engine.Metrics();
  EXPECT_GT(snap.counters.at("batch.fallback_tuples"), 0u);
}

TEST(BatchPipelineTest, IngestStagesRunNativeBatchPaths) {
  // The ingest chain (reorder -> clean -> delivery) has native
  // ProcessBatch overrides: a batched, disordered, duplicated run must
  // not inflate batch.fallback_tuples (DESIGN.md §15).
  EngineOptions options;
  options.batch_size = 4;
  options.honor_batch_env = false;
  options.honor_ingest_env = false;
  options.ingest.lateness_bound = Seconds(2);
  options.ingest.smoothing_window = Milliseconds(5);
  options.ingest.min_read_count = 1;
  Engine engine(options);
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tid, read_time);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery("SELECT reader_id, tid FROM readings");
  ASSERT_TRUE(q.ok()) << q.status();
  SchemaPtr schema = engine.FindStream("readings")->schema();
  TupleBatch batch;
  for (Timestamp ts : {Seconds(3), Seconds(1), Seconds(1), Seconds(2)}) {
    auto t = MakeTuple(schema,
                       {Value::String("r"), Value::String("t"), Value::Time(ts)},
                       ts);
    ASSERT_TRUE(t.ok()) << t.status();
    batch.Add(*t);
  }
  ASSERT_TRUE(engine.PushBatch("readings", batch).ok());
  ASSERT_TRUE(engine.AdvanceTime(Seconds(60)).ok());

  MetricsSnapshot snap = engine.Metrics();
  EXPECT_EQ(snap.gauges.at("ingest.enabled"), 1);
  EXPECT_EQ(snap.counters.at("batch.fallback_tuples"), 0u);
  // The stages really saw batched crossings, not just single tuples.
  uint64_t ingest_batches = 0;
  for (const Operator* op : engine.ingest_pipeline()->stages()) {
    ingest_batches += op->batches_in();
    EXPECT_EQ(op->batch_fallback_tuples(), 0u) << op->label();
  }
  EXPECT_GT(ingest_batches, 0u);
}

TEST(BatchPipelineTest, TableTargetDisablesBatching) {
  Engine engine = MakeEngine(64);
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM tag_locations(readerid, tid, tagtime, loc);
    CREATE TABLE object_movement(tagid, location, start_time);
    INSERT INTO object_movement
    SELECT tid, loc, tagtime
    FROM tag_locations WHERE NOT EXISTS
      (SELECT tagid FROM object_movement
       WHERE tagid = tid AND location = loc);
  )sql")
                  .ok());
  EXPECT_FALSE(engine.batching_safe());
  // Pushes run tuple-at-a-time: table contents are current immediately.
  ASSERT_TRUE(engine
                  .Push("tag_locations",
                        {Value::String("r"), Value::String("t1"),
                         Value::Time(Seconds(1)), Value::String("dock")},
                        Seconds(1))
                  .ok());
  MetricsSnapshot snap = engine.Metrics();
  EXPECT_EQ(snap.gauges.at("batch.safe"), 0);
  EXPECT_EQ(snap.gauges.at("batch.pending"), 0);
  EXPECT_EQ(snap.counters.at("batch.batches_dispatched"), 0u);
}

TEST(BatchPipelineTest, MultipleProducersIntoOneStreamDisableBatching) {
  Engine engine = MakeEngine(64);
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM a(v, t_time);
    CREATE STREAM b(v, t_time);
    CREATE STREAM merged(v, t_time);
    INSERT INTO merged SELECT * FROM a;
  )sql")
                  .ok());
  EXPECT_TRUE(engine.batching_safe());
  ASSERT_TRUE(engine.ExecuteScript("INSERT INTO merged SELECT * FROM b;").ok());
  EXPECT_FALSE(engine.batching_safe());
}

TEST(BatchPipelineTest, PushBatchDispatchesOneCrossing) {
  Engine engine = MakeEngine(1);  // knob off: PushBatch is explicit
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tid, read_time);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery("SELECT reader_id, tid FROM readings");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<std::string> rows;
  ASSERT_TRUE(engine
                  .Subscribe(q->output_stream,
                             [&](const Tuple& t) { rows.push_back(t.ToString()); })
                  .ok());
  SchemaPtr schema = engine.FindStream("readings")->schema();
  TupleBatch batch;
  for (int i = 0; i < 5; ++i) {
    auto t = MakeTuple(schema,
                       {Value::String("r"), Value::String("t" + std::to_string(i)),
                        Value::Time(Seconds(i + 1))},
                       Seconds(i + 1));
    ASSERT_TRUE(t.ok()) << t.status();
    batch.Add(*t);
  }
  ASSERT_TRUE(engine.PushBatch("readings", batch).ok());
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_EQ(engine.Metrics().counters.at("batch.batches_dispatched"), 1u);
}

TEST(BatchPipelineTest, PushBatchRejectsOutOfOrderRun) {
  Engine engine = MakeEngine(1);
  ASSERT_TRUE(
      engine.ExecuteScript("CREATE STREAM s(v, t_time);").ok());
  SchemaPtr schema = engine.FindStream("s")->schema();
  TupleBatch batch;
  for (Timestamp ts : {Seconds(5), Seconds(3)}) {
    auto t = MakeTuple(schema, {Value::String("1"), Value::Time(ts)}, ts);
    ASSERT_TRUE(t.ok());
    batch.Add(*t);
  }
  EXPECT_FALSE(engine.PushBatch("s", batch).ok());
}

TEST(BatchPipelineTest, InvalidEnvKnobSurfacesFromFirstCall) {
  ::setenv(kBatchSizeEnvVar, "not-a-number", 1);
  EngineOptions options;  // honor_batch_env defaults to true
  Engine engine(options);
  ::unsetenv(kBatchSizeEnvVar);
  Status st = engine.ExecuteScript("CREATE STREAM s(v, t_time);");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find(kBatchSizeEnvVar), std::string::npos) << st;
}

TEST(BatchPipelineTest, EnvKnobOverridesConfiguredSize) {
  ::setenv(kBatchSizeEnvVar, "16", 1);
  EngineOptions options;
  options.batch_size = 2;
  Engine engine(options);
  ::unsetenv(kBatchSizeEnvVar);
  EXPECT_EQ(engine.batch_size(), 16u);
}

TEST(BatchPipelineTest, InvalidConfiguredSizeRejected) {
  EngineOptions options;
  options.batch_size = 0;
  options.honor_batch_env = false;
  Engine engine(options);
  EXPECT_FALSE(engine.ExecuteScript("CREATE STREAM s(v, t_time);").ok());
}

}  // namespace
}  // namespace eslev
