#include "core/concurrent_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace eslev {
namespace {

TEST(ConcurrentEngineTest, MultiThreadedFeeding) {
  ConcurrentEngine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery("SELECT count(tag_id) FROM readings");
  ASSERT_TRUE(q.ok()) << q.status();
  std::atomic<int64_t> last_count{0};
  ASSERT_TRUE(engine
                  .Subscribe(q->output_stream,
                             [&](const Tuple& t) {
                               last_count = t.value(0).int_value();
                             })
                  .ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Each thread uses its own (drifting) clock; the wrapper clamps.
        const Timestamp ts = Seconds(i) + t * Milliseconds(137);
        Status s = engine.Push(
            "readings",
            {Value::String("rd" + std::to_string(t)),
             Value::String("tag" + std::to_string(i)), Value::Time(ts)},
            ts);
        if (!s.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(last_count.load(), kThreads * kPerThread);
}

TEST(ConcurrentEngineTest, ClampingKeepsHistoryOrdered) {
  ConcurrentEngine engine;
  ASSERT_TRUE(
      engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());
  // Push a late tuple after a much newer one: it is clamped, not
  // rejected.
  ASSERT_TRUE(engine
                  .Push("s", {Value::String("x"), Value::Time(Seconds(100))},
                        Seconds(100))
                  .ok());
  ASSERT_TRUE(engine
                  .Push("s", {Value::String("y"), Value::Time(Seconds(1))},
                        Seconds(1))
                  .ok());
  EXPECT_EQ(engine.engine()->current_time(), Seconds(100));
}

TEST(ConcurrentEngineTest, StaleHeartbeatIsIgnored) {
  ConcurrentEngine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());
  ASSERT_TRUE(engine.AdvanceTime(Seconds(50)).ok());
  ASSERT_TRUE(engine.AdvanceTime(Seconds(10)).ok());  // stale: no-op
  EXPECT_EQ(engine.engine()->current_time(), Seconds(50));
}

TEST(ConcurrentEngineTest, ConcurrentDedupPipeline) {
  // A full pipeline under concurrent feeding: per-thread disjoint tags,
  // so the expected dedup result is deterministic.
  ConcurrentEngine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned(reader_id, tag_id, read_time);
    INSERT INTO cleaned
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
  )sql")
                  .ok());
  // Push() holds the wrapper lock, so callbacks are serialized.
  std::set<std::string> kept_tags;
  size_t cleaned = 0;
  ASSERT_TRUE(engine
                  .Subscribe("cleaned",
                             [&](const Tuple& t) {
                               ++cleaned;
                               kept_tags.insert(t.value(1).string_value());
                             })
                  .ok());

  constexpr int kThreads = 4;
  constexpr int kDistinct = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kDistinct; ++i) {
        const std::string tag =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        const Timestamp base = Seconds(i * 10);
        // One reading plus two duplicates close behind it.
        for (int d = 0; d < 3; ++d) {
          (void)engine.Push("readings",
                            {Value::String("rd"), Value::String(tag),
                             Value::Time(base + d * Milliseconds(100))},
                            base + d * Milliseconds(100));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Clamping may stretch a thread's duplicate past the 1-second window
  // when other threads race the clock forward, so the exact count is
  // schedule-dependent — but every distinct tag must survive at least
  // once, and never more than its three pushes.
  EXPECT_EQ(kept_tags.size(), static_cast<size_t>(kThreads * kDistinct));
  EXPECT_GE(cleaned, static_cast<size_t>(kThreads * kDistinct));
  EXPECT_LE(cleaned, static_cast<size_t>(3 * kThreads * kDistinct));
}

TEST(ConcurrentEngineTest, ClampingStressKeepsJointHistoryOrdered) {
  // Genuinely concurrent producers with wildly disagreeing clocks: some
  // run forward, some deliberately run backward. Whatever interleaving
  // the scheduler picks, every observed tuple timestamp must be
  // non-decreasing (the clamped joint history is totally ordered) and
  // nothing may be rejected.
  ConcurrentEngine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());
  std::vector<Timestamp> observed;
  ASSERT_TRUE(engine
                  .Subscribe("s",
                             [&](const Tuple& t) {
                               // Runs under the ingestion lock.
                               observed.push_back(t.ts());
                             })
                  .ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Even threads count up, odd threads count down.
        const Timestamp ts = (t % 2 == 0)
                                 ? Seconds(i) + t * Milliseconds(211)
                                 : Seconds(kPerThread - i) + t * Milliseconds(211);
        Status s = engine.Push(
            "s", {Value::String("v" + std::to_string(t)), Value::Time(ts)},
            ts);
        if (!s.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  ASSERT_EQ(observed.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
  EXPECT_EQ(engine.engine()->current_time(), observed.back());
}

TEST(ConcurrentEngineTest, RacingStaleAdvanceTimeNeverMovesClockBackward) {
  // Heartbeat-only race: several time sources with drifting, partly
  // stale clocks. Stale ticks must be dropped silently (no error, no
  // regression) and the final clock must equal the global maximum tick.
  ConcurrentEngine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());

  constexpr int kThreads = 6;
  constexpr int kPerThread = 500;
  std::atomic<int> failures{0};
  Timestamp max_tick = kMinTimestamp;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      // Precompute the same sawtooth each thread will send, to know the
      // global maximum without racing on it.
      const Timestamp ts = Seconds(i % 211) + t * Milliseconds(13);
      max_tick = std::max(max_tick, ts);
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Timestamp ts = Seconds(i % 211) + t * Milliseconds(13);
        if (!engine.AdvanceTime(ts).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.engine()->current_time(), max_tick);
}

TEST(ConcurrentEngineTest, ConcurrentPushesAndHeartbeatsStayMonotonic) {
  // Pushers race a heartbeat thread; stale heartbeats must be dropped
  // and the engine clock must never move backward.
  ConcurrentEngine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());
  std::vector<Timestamp> observed;
  ASSERT_TRUE(engine
                  .Subscribe("s",
                             [&](const Tuple& t) { observed.push_back(t.ts()); })
                  .ok());

  constexpr int kPushers = 4;
  constexpr int kPerThread = 300;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kPushers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Timestamp ts = Seconds(i) + t * Milliseconds(97);
        if (!engine
                 .Push("s", {Value::String("x"), Value::Time(ts)}, ts)
                 .ok()) {
          ++failures;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kPerThread; ++i) {
      // Mix fresh and deliberately stale ticks.
      if (!engine.AdvanceTime(Seconds(i % 37)).ok()) ++failures;
    }
  });
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  ASSERT_EQ(observed.size(), static_cast<size_t>(kPushers * kPerThread));
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
  EXPECT_GE(engine.engine()->current_time(), observed.back());
}

}  // namespace
}  // namespace eslev
