// End-to-end integration: every query listing from the paper, executed
// through Engine::ExecuteScript / RegisterQuery against synthetic RFID
// workloads, with hand-checked expected outputs.

#include "core/engine.h"

#include <gtest/gtest.h>

namespace eslev {
namespace {

// ---------------------------------------------------------------------------
// Example 1: duplicate filtering
// ---------------------------------------------------------------------------

TEST(EngineExample1Test, DuplicateFiltering) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
    INSERT INTO cleaned_readings
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id
         AND r2.tag_id = r1.tag_id);
  )sql")
                  .ok());

  std::vector<Tuple> cleaned;
  ASSERT_TRUE(
      engine.Subscribe("cleaned_readings", [&](const Tuple& t) {
              cleaned.push_back(t);
            }).ok());

  auto push = [&](const std::string& reader, const std::string& tag,
                  Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push("readings",
                          {Value::String(reader), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  push("rd1", "A", Milliseconds(0));
  push("rd1", "A", Milliseconds(300));   // duplicate
  push("rd1", "A", Milliseconds(700));   // duplicate (chained)
  push("rd2", "A", Milliseconds(800));   // different reader: passes
  push("rd1", "B", Milliseconds(900));   // different tag: passes
  push("rd1", "A", Milliseconds(2500));  // fresh: passes

  ASSERT_EQ(cleaned.size(), 4u);
  EXPECT_EQ(cleaned[0].value(1).string_value(), "A");
  EXPECT_EQ(cleaned[1].value(0).string_value(), "rd2");
  EXPECT_EQ(cleaned[2].value(1).string_value(), "B");
  EXPECT_EQ(cleaned[3].ts(), Milliseconds(2500));
}

// ---------------------------------------------------------------------------
// Example 2: location tracking (stream-to-DB update)
// ---------------------------------------------------------------------------

TEST(EngineExample2Test, LocationTracking) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    STREAM tag_locations(readerid, tid, tagtime, loc);
    TABLE object_movement(tagid, location, start_time);
    INSERT INTO object_movement
    SELECT tid, loc, tagtime
    FROM tag_locations WHERE NOT EXISTS
      (SELECT tagid FROM object_movement
       WHERE tagid = tid AND location = loc);
  )sql")
                  .ok());

  auto push = [&](const std::string& tid, const std::string& loc,
                  Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push("tag_locations",
                          {Value::String("r"), Value::String(tid),
                           Value::Time(ts), Value::String(loc)},
                          ts)
                    .ok());
  };
  push("t1", "dock", Seconds(1));
  push("t1", "dock", Seconds(2));   // same location: no new row
  push("t1", "gate", Seconds(3));   // moved: new row
  push("t2", "dock", Seconds(4));   // different object: new row
  push("t1", "gate", Seconds(5));   // unchanged: no new row

  Table* table = engine.FindTable("object_movement");
  ASSERT_TRUE(table != nullptr);
  ASSERT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->rows()[0].value(0).string_value(), "t1");
  EXPECT_EQ(table->rows()[0].value(1).string_value(), "dock");
  EXPECT_EQ(table->rows()[1].value(1).string_value(), "gate");
  EXPECT_EQ(table->rows()[2].value(0).string_value(), "t2");
}

TEST(EngineExample2Test, RevisitedLocationIsNotReinserted) {
  // The paper's query records each (object, location) once: moving back
  // to a previously seen location does not insert a new row (NOT EXISTS
  // checks the full movement history).
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    STREAM tag_locations(readerid, tid, tagtime, loc);
    TABLE object_movement(tagid, location, start_time);
    INSERT INTO object_movement
    SELECT tid, loc, tagtime FROM tag_locations WHERE NOT EXISTS
      (SELECT tagid FROM object_movement
       WHERE tagid = tid AND location = loc);
  )sql")
                  .ok());
  auto push = [&](const std::string& tid, const std::string& loc,
                  Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push("tag_locations",
                          {Value::String("r"), Value::String(tid),
                           Value::Time(ts), Value::String(loc)},
                          ts)
                    .ok());
  };
  push("t1", "dock", Seconds(1));
  push("t1", "gate", Seconds(2));
  push("t1", "dock", Seconds(3));  // back to dock: already recorded
  EXPECT_EQ(engine.FindTable("object_movement")->num_rows(), 2u);
}

// ---------------------------------------------------------------------------
// Example 3: EPC-pattern aggregation with a UDF
// ---------------------------------------------------------------------------

TEST(EngineExample3Test, EpcPatternAggregation) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tid, read_time);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
      AND extract_serial(tid) > 5000
      AND extract_serial(tid) < 9999
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> counts;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      counts.push_back(t);
                    }).ok());

  auto push = [&](const std::string& epc, Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push("readings",
                          {Value::String("r"), Value::String(epc),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  push("20.17.7042", Seconds(1));  // matches
  push("21.17.7042", Seconds(2));  // wrong company
  push("20.01.0042", Seconds(3));  // serial too small
  push("20.99.9998", Seconds(4));  // matches
  push("20.99.9999", Seconds(5));  // 9999 is excluded (strict <)

  // The continuous count emits on each qualifying tuple: 1 then 2.
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].value(0).int_value(), 1);
  EXPECT_EQ(counts[1].value(0).int_value(), 2);
}

// ---------------------------------------------------------------------------
// Examples 4 & 7 / Figure 1: containment via star sequence
// ---------------------------------------------------------------------------

TEST(EngineExample7Test, ContainmentStarSequence) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
      AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
      AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> events;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      events.push_back(t);
                    }).ok());

  auto product = [&](const std::string& tag, Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push("R1",
                          {Value::String("r1"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  auto box = [&](const std::string& tag, Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push("R2",
                          {Value::String("r2"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  // Figure 1(b): products of case2 interleave before case1 is read.
  product("p1", Milliseconds(0));
  product("p2", Milliseconds(500));
  product("p3", Milliseconds(1000));
  product("p4", Milliseconds(3000));  // gap 2s > t1: starts group 2
  product("p5", Milliseconds(3600));
  box("case1", Milliseconds(4200));
  box("case2", Milliseconds(4900));

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].value(1).int_value(), 3);
  EXPECT_EQ(events[0].value(2).string_value(), "case1");
  EXPECT_EQ(events[1].value(1).int_value(), 2);
  EXPECT_EQ(events[1].value(2).string_value(), "case2");
}

TEST(EngineExample7Test, MultipleReturnVariant) {
  // The paper's per-product variant returns one row per packed item.
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT R1.tagid, R1.tagtime, R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
      AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
      AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> rows;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      rows.push_back(t);
                    }).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    .Push("R1",
                          {Value::String("r1"),
                           Value::String("p" + std::to_string(i)),
                           Value::Time(i * Milliseconds(200))},
                          i * Milliseconds(200))
                    .ok());
  }
  ASSERT_TRUE(engine
                  .Push("R2",
                        {Value::String("r2"), Value::String("boxA"),
                         Value::Time(Seconds(2))},
                        Seconds(2))
                  .ok());
  ASSERT_EQ(rows.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rows[i].value(0).string_value(), "p" + std::to_string(i));
    EXPECT_EQ(rows[i].value(2).string_value(), "boxA");
  }
}

// ---------------------------------------------------------------------------
// Example 6: quality-check SEQ with window and join conditions
// ---------------------------------------------------------------------------

TEST(EngineExample6Test, SeqWithWindowAndJoin) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM C1(readerid, tagid, tagtime);
    CREATE STREAM C2(readerid, tagid, tagtime);
    CREATE STREAM C3(readerid, tagid, tagtime);
    CREATE STREAM C4(readerid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT C4.tagid, C1.tagtime, C4.tagtime
    FROM C1, C2, C3, C4
    WHERE SEQ(C1, C2, C3, C4)
    OVER [30 MINUTES PRECEDING C4]
      AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
      AND C1.tagid=C4.tagid
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> done;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      done.push_back(t);
                    }).ok());

  auto step = [&](const std::string& stream, const std::string& tag,
                  Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push(stream,
                          {Value::String(stream), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  // Product A completes in 20 minutes (within window).
  step("C1", "A", Minutes(0));
  step("C2", "A", Minutes(5));
  step("C3", "A", Minutes(12));
  step("C4", "A", Minutes(20));
  // Product B takes 45 minutes start-to-finish (outside 30-minute window).
  step("C1", "B", Minutes(21));
  step("C2", "B", Minutes(30));
  step("C3", "B", Minutes(40));
  step("C4", "B", Minutes(66));

  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].value(0).string_value(), "A");
  EXPECT_EQ(done[0].value(1).time_value(), Minutes(0));
}

// ---------------------------------------------------------------------------
// Example 5 / §3.1.3: lab workflow EXCEPTION_SEQ + CLEVEL_SEQ
// ---------------------------------------------------------------------------

TEST(EngineExample5Test, ExceptionSeqWorkflow) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM A1(staffid, tagid, tagtime);
    CREATE STREAM A2(staffid, tagid, tagtime);
    CREATE STREAM A3(staffid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> alerts;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      alerts.push_back(t);
                    }).ok());

  auto op = [&](const std::string& stream, const std::string& tag,
                Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push(stream,
                          {Value::String("staff"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  // Round 1: correct, in time -> no alert.
  op("A1", "opA", Minutes(0));
  op("A2", "opB", Minutes(10));
  op("A3", "opC", Minutes(20));
  EXPECT_TRUE(alerts.empty());
  // Round 2: C directly follows A -> two alerts (partial + stray C).
  op("A1", "opA", Minutes(30));
  op("A3", "opC", Minutes(35));
  EXPECT_EQ(alerts.size(), 2u);
  // Round 3: started but times out; detected purely by AdvanceTime.
  op("A1", "opA", Minutes(40));
  op("A2", "opB", Minutes(50));
  ASSERT_TRUE(engine.AdvanceTime(Minutes(101)).ok());
  ASSERT_EQ(alerts.size(), 3u);
  EXPECT_EQ(alerts[2].value(0).string_value(), "opA");
  EXPECT_EQ(alerts[2].value(1).string_value(), "opB");
  EXPECT_TRUE(alerts[2].value(2).is_null());
}

TEST(EngineExample5Test, ClevelSeqEquivalentQuery) {
  // The paper: the CLEVEL_SEQ form is equivalent to EXCEPTION_SEQ.
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM A1(staffid, tagid, tagtime);
    CREATE STREAM A2(staffid, tagid, tagtime);
    CREATE STREAM A3(staffid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE (CLEVEL_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]) < 3
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> alerts;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      alerts.push_back(t);
                    }).ok());
  auto op = [&](const std::string& stream, const std::string& tag,
                Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push(stream,
                          {Value::String("staff"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  op("A1", "opA", Minutes(0));
  op("A2", "opB", Minutes(10));
  op("A3", "opC", Minutes(20));  // completes: level 3, filtered out
  EXPECT_TRUE(alerts.empty());
  op("A2", "opB", Minutes(30));  // wrong start: level 0
  EXPECT_EQ(alerts.size(), 1u);
}

// ---------------------------------------------------------------------------
// Example 8: theft detection with PRECEDING AND FOLLOWING window
// ---------------------------------------------------------------------------

TEST(EngineExample8Test, TheftDetection) {
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM tag_readings(tagid, tagtype, tagtime);
    CREATE STREAM alerts(tagid, tagtype, tagtime);
  )sql")
                  .ok());
  // The paper's Example 8 phrased with the unaccompanied *item* as the
  // alert subject: raise an alert when an item exits with no person
  // within 1 minute before or after.
  auto q = engine.RegisterQuery(R"sql(
    INSERT INTO alerts
    SELECT * FROM tag_readings AS item
    WHERE item.tagtype = 'item' AND NOT EXISTS
      (SELECT * FROM tag_readings AS person
         OVER [1 MINUTES PRECEDING AND FOLLOWING item]
       WHERE person.tagtype = 'person')
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> alerts;
  ASSERT_TRUE(engine.Subscribe("alerts", [&](const Tuple& t) {
                      alerts.push_back(t);
                    }).ok());

  auto push = [&](const std::string& id, const std::string& type,
                  Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push("tag_readings",
                          {Value::String(id), Value::String(type),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  push("p1", "person", Seconds(0));
  push("i1", "item", Seconds(30));    // covered by p1 (30s before)
  push("i2", "item", Seconds(100));   // nobody within 60s -> alert
  push("i3", "item", Seconds(200));   // p2 arrives 20s later: covered
  push("p2", "person", Seconds(220));
  ASSERT_TRUE(engine.AdvanceTime(Seconds(400)).ok());

  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].value(0).string_value(), "i2");
}

// ---------------------------------------------------------------------------
// Ad-hoc snapshot queries (§2.1) + context retrieval
// ---------------------------------------------------------------------------

TEST(EngineSnapshotTest, PatientLocationSnapshot) {
  EngineOptions options;
  options.default_retention = Hours(1);
  Engine engine(options);
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM patient_locations(patient, loc, seen_time);
  )sql")
                  .ok());
  auto push = [&](const std::string& p, const std::string& loc,
                  Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push("patient_locations",
                          {Value::String(p), Value::String(loc),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  push("alice", "ward-3", Minutes(1));
  push("bob", "icu", Minutes(2));
  push("alice", "radiology", Minutes(5));

  auto rows = engine.ExecuteSnapshot(
      "SELECT loc, seen_time FROM patient_locations "
      "WHERE patient = 'alice'");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1].value(0).string_value(), "radiology");

  // Aggregate snapshot: latest sighting per patient.
  auto latest = engine.ExecuteSnapshot(
      "SELECT patient, max(seen_time) FROM patient_locations "
      "GROUP BY patient");
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_EQ(latest->size(), 2u);
}

TEST(EngineSnapshotTest, ContextRetrievalJoin) {
  // §2.1 Context Retrieval: enrich tag readings with authorization data
  // from a table, as a continuous stream-table join.
  Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM gate_readings(tagid, gate, read_time);
    CREATE TABLE authorizations(tagid, owner, clearance);
  )sql")
                  .ok());
  Table* auth = engine.FindTable("authorizations");
  ASSERT_TRUE(auth->Insert({Value::String("t1"), Value::String("alice"),
                            Value::String("high")})
                  .ok());
  ASSERT_TRUE(auth->Insert({Value::String("t2"), Value::String("bob"),
                            Value::String("low")})
                  .ok());
  ASSERT_TRUE(auth->CreateIndex("tagid").ok());

  auto q = engine.RegisterQuery(R"sql(
    SELECT g.tagid, g.gate, a.owner, a.clearance
    FROM gate_readings AS g, authorizations AS a
    WHERE a.tagid = g.tagid
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> enriched;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      enriched.push_back(t);
                    }).ok());
  ASSERT_TRUE(engine
                  .Push("gate_readings",
                        {Value::String("t2"), Value::String("gateA"),
                         Value::Time(Seconds(1))},
                        Seconds(1))
                  .ok());
  ASSERT_TRUE(engine
                  .Push("gate_readings",
                        {Value::String("t9"), Value::String("gateA"),
                         Value::Time(Seconds(2))},
                        Seconds(2))
                  .ok());  // unknown tag: no output (inner join)
  ASSERT_EQ(enriched.size(), 1u);
  EXPECT_EQ(enriched[0].value(2).string_value(), "bob");
  EXPECT_EQ(enriched[0].value(3).string_value(), "low");
}

// ---------------------------------------------------------------------------
// Engine-level error handling and invariants
// ---------------------------------------------------------------------------

TEST(EngineErrorTest, Validation) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, b, ts_time);").ok());
  // Duplicate creation.
  EXPECT_TRUE(engine.ExecuteScript("CREATE STREAM s(a);").IsAlreadyExists());
  // Unknown stream.
  EXPECT_TRUE(engine.Push("nope", {Value::Int(1)}, 0).IsNotFound());
  EXPECT_TRUE(engine.Subscribe("nope", [](const Tuple&) {}).IsNotFound());
  // Arity mismatch.
  EXPECT_TRUE(engine.Push("s", {Value::Int(1)}, 0).IsInvalid());
  // Unknown source in a query.
  EXPECT_TRUE(
      engine.RegisterQuery("SELECT * FROM missing").status().IsNotFound());
  // Out-of-order timestamps.
  ASSERT_TRUE(engine
                  .Push("s", {Value::String("x"), Value::String("y"),
                              Value::Time(Seconds(5))},
                        Seconds(5))
                  .ok());
  EXPECT_TRUE(engine
                  .Push("s", {Value::String("x"), Value::String("y"),
                              Value::Time(Seconds(4))},
                        Seconds(4))
                  .IsOutOfRange());
  EXPECT_TRUE(engine.AdvanceTime(Seconds(1)).IsOutOfRange());
}

TEST(EngineErrorTest, OutOfOrderAllowedWhenDisabled) {
  EngineOptions options;
  options.enforce_monotonic_time = false;
  Engine engine(options);
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());
  ASSERT_TRUE(engine
                  .Push("s", {Value::String("x"), Value::Time(Seconds(5))},
                        Seconds(5))
                  .ok());
  EXPECT_TRUE(engine
                  .Push("s", {Value::String("x"), Value::Time(Seconds(4))},
                        Seconds(4))
                  .ok());
}

TEST(EngineErrorTest, InsertArityChecked) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM a(x, y);
    CREATE STREAM b(x);
  )sql")
                  .ok());
  EXPECT_TRUE(engine.RegisterQuery("INSERT INTO b SELECT * FROM a")
                  .status()
                  .IsBindError());
}

TEST(EngineErrorTest, SnapshotRequiresRetention) {
  Engine engine;  // no default retention
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());
  ASSERT_TRUE(engine
                  .Push("s", {Value::String("x"), Value::Time(1)}, 1)
                  .ok());
  EXPECT_TRUE(engine.ExecuteSnapshot("SELECT * FROM s").status().IsInvalid());
}

TEST(EngineTest, BareSelectCreatesDerivedStream) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());
  auto q = engine.RegisterQuery("SELECT a FROM s WHERE a = 'keep'");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->output_stream, "_q1");
  int got = 0;
  ASSERT_TRUE(
      engine.Subscribe(q->output_stream, [&](const Tuple&) { ++got; }).ok());
  ASSERT_TRUE(
      engine.Push("s", {Value::String("keep"), Value::Time(1)}, 1).ok());
  ASSERT_TRUE(
      engine.Push("s", {Value::String("drop"), Value::Time(2)}, 2).ok());
  EXPECT_EQ(got, 1);
}

TEST(EngineTest, ChainedQueriesComposeThroughDerivedStreams) {
  // Dedup feeding an aggregate — queries compose via named streams.
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned(reader_id, tag_id, read_time);
    INSERT INTO cleaned
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery("SELECT count(tag_id) FROM cleaned");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<int64_t> counts;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      counts.push_back(t.value(0).int_value());
                    }).ok());
  auto push = [&](const std::string& tag, Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push("readings",
                          {Value::String("r"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  push("A", Milliseconds(0));
  push("A", Milliseconds(100));  // dup, filtered before the count
  push("B", Milliseconds(200));
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.back(), 2);
}

}  // namespace
}  // namespace eslev
