// EXPLAIN ANALYZE and Engine::Metrics() over the §3.1.1 walkthrough:
// four registered SEQ(C1, C2, C3, C4) queries (one per pairing mode) fed
// the paper's joint history must report per-operator counters and
// per-mode retained-history gauges matching the purge semantics —
// UNRESTRICTED 6, RECENT 4, CHRONICLE 3, CONSECUTIVE 0.

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"

namespace eslev {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .ExecuteScript(R"sql(
      CREATE STREAM C1(readerid, tagid, tagtime);
      CREATE STREAM C2(readerid, tagid, tagtime);
      CREATE STREAM C3(readerid, tagid, tagtime);
      CREATE STREAM C4(readerid, tagid, tagtime);
    )sql")
                    .ok());
  }

  static std::string ModeQuery(const std::string& mode_clause) {
    return "SELECT C1.tagtime, C4.tagtime FROM C1, C2, C3, C4 "
           "WHERE SEQ(C1, C2, C3, C4)" +
           mode_clause;
  }

  void RegisterAllModes() {
    for (const char* clause :
         {"", " MODE RECENT", " MODE CHRONICLE", " MODE CONSECUTIVE"}) {
      auto q = engine_.RegisterQuery(ModeQuery(clause));
      ASSERT_TRUE(q.ok()) << q.status();
    }
  }

  // The §3.1.1 history [t1:C1, t2:C1, t3:C2, t4:C3, t5:C3, t6:C2, t7:C4].
  void FeedWalkthrough() {
    auto push = [&](const std::string& stream, int sec) {
      ASSERT_TRUE(engine_
                      .Push(stream,
                            {Value::String("r"), Value::String("x"),
                             Value::Time(Seconds(sec))},
                            Seconds(sec))
                      .ok());
    };
    push("C1", 1);
    push("C1", 2);
    push("C2", 3);
    push("C3", 4);
    push("C3", 5);
    push("C2", 6);
    push("C4", 7);
  }

  std::string Analyze(const std::string& sql) {
    auto r = engine_.Explain("EXPLAIN ANALYZE " + sql);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : "";
  }

  Engine engine_;
};

TEST_F(ExplainAnalyzeTest, ReportsPerModeRetainedHistory) {
  RegisterAllModes();
  FeedWalkthrough();
  struct Expect {
    const char* clause;
    int retained;
    int matches;
  };
  for (const Expect& e : {Expect{"", 6, 4}, Expect{" MODE RECENT", 4, 1},
                          Expect{" MODE CHRONICLE", 3, 1},
                          Expect{" MODE CONSECUTIVE", 0, 0}}) {
    const std::string text = Analyze(ModeQuery(e.clause));
    EXPECT_NE(text.find("(analyzed)"), std::string::npos) << text;
    EXPECT_NE(text.find("tuples_in=7"), std::string::npos) << text;
    EXPECT_NE(text.find("retained_history=" + std::to_string(e.retained)),
              std::string::npos)
        << e.clause << ": " << text;
    EXPECT_NE(text.find("matches=" + std::to_string(e.matches)),
              std::string::npos)
        << e.clause << ": " << text;
    EXPECT_NE(text.find("tuples_out=" + std::to_string(e.matches)),
              std::string::npos)
        << e.clause << ": " << text;
  }
}

TEST_F(ExplainAnalyzeTest, PlainExplainHasNoCounters) {
  RegisterAllModes();
  FeedWalkthrough();
  auto r = engine_.Explain("EXPLAIN " + ModeQuery(" MODE RECENT"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->find("tuples_in="), std::string::npos) << *r;
  EXPECT_EQ(r->find("(analyzed)"), std::string::npos) << *r;
}

TEST_F(ExplainAnalyzeTest, UnregisteredQueryIsNotFound) {
  // Nothing registered: the plan matches no live pipeline.
  auto r = engine_.Explain("EXPLAIN ANALYZE " + ModeQuery(" MODE RECENT"));
  EXPECT_TRUE(r.status().IsNotFound()) << r.status();
}

TEST_F(ExplainAnalyzeTest, ExplainInScriptIsRejected) {
  EXPECT_TRUE(engine_.ExecuteScript("EXPLAIN ANALYZE SELECT * FROM C1")
                  .IsInvalid());
}

TEST_F(ExplainAnalyzeTest, MetricsSnapshotCoversStreamsAndOperators) {
  RegisterAllModes();
  FeedWalkthrough();
  const MetricsSnapshot snap = engine_.Metrics();
  EXPECT_EQ(snap.counters.at("stream.c1.tuples_in"), 2u);
  EXPECT_EQ(snap.counters.at("stream.c2.tuples_in"), 2u);
  EXPECT_EQ(snap.counters.at("stream.c4.tuples_in"), 1u);
  // One SeqOperator per registered query; query 1 is UNRESTRICTED.
  EXPECT_EQ(snap.counters.at("query1.op0.SeqOperator.tuples_in"), 7u);
  EXPECT_EQ(snap.gauges.at("query1.op0.SeqOperator.retained_history"), 6);
  EXPECT_EQ(snap.gauges.at("query2.op0.SeqOperator.retained_history"), 4);
  EXPECT_EQ(snap.gauges.at("query3.op0.SeqOperator.retained_history"), 3);
  EXPECT_EQ(snap.gauges.at("query4.op0.SeqOperator.retained_history"), 0);
  // Purge accounting reconciles per mode: stored - purged == retained.
  for (int q = 1; q <= 4; ++q) {
    const std::string p = "query" + std::to_string(q) + ".op0.SeqOperator.";
    EXPECT_EQ(snap.gauges.at(p + "tuples_stored") -
                  snap.gauges.at(p + "tuples_purged"),
              snap.gauges.at(p + "retained_history"))
        << p;
  }
  EXPECT_GE(snap.gauges.at("engine.clock"), Seconds(7));
}

}  // namespace
}  // namespace eslev
