#include <gtest/gtest.h>

#include "core/engine.h"

namespace eslev {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .ExecuteScript(R"sql(
      CREATE STREAM readings(reader_id, tag_id, read_time);
      CREATE STREAM cleaned(reader_id, tag_id, read_time);
      CREATE STREAM R1(readerid, tagid, tagtime);
      CREATE STREAM R2(readerid, tagid, tagtime);
      CREATE TABLE object_movement(tagid, location, start_time);
    )sql")
                    .ok());
  }

  std::string Explain(const std::string& sql) {
    auto r = engine_.Explain(sql);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : "";
  }

  Engine engine_;
};

TEST_F(ExplainTest, DedupPipeline) {
  std::string plan = Explain(R"sql(
    INSERT INTO cleaned
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)
  )sql");
  EXPECT_NE(plan.find("Source: stream readings"), std::string::npos);
  EXPECT_NE(plan.find("WindowedNotExists"), std::string::npos);
  EXPECT_NE(plan.find("same stream"), std::string::npos);
  EXPECT_NE(plan.find("-> stream cleaned"), std::string::npos) << plan;
}

TEST_F(ExplainTest, SeqPipeline) {
  std::string plan = Explain(R"sql(
    SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
      AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
      AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
  )sql");
  EXPECT_NE(plan.find("SeqOperator: SEQ(R1*, R2)"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("MODE CHRONICLE"), std::string::npos);
  EXPECT_NE(plan.find("1 pairwise constraint(s)"), std::string::npos);
  EXPECT_NE(plan.find("Output: ("), std::string::npos);
}

TEST_F(ExplainTest, TableAntiJoinWithProbe) {
  std::string plan = Explain(R"sql(
    INSERT INTO object_movement
    SELECT tag_id, reader_id, read_time FROM readings WHERE NOT EXISTS
      (SELECT tagid FROM object_movement WHERE tagid = tag_id)
  )sql");
  EXPECT_NE(plan.find("TableNotExists"), std::string::npos) << plan;
  EXPECT_NE(plan.find("hash probe on tagid"), std::string::npos) << plan;
  EXPECT_NE(plan.find("-> table object_movement"), std::string::npos);
}

TEST_F(ExplainTest, AggregatePipeline) {
  std::string plan = Explain(
      "SELECT count(tag_id) FROM readings WHERE tag_id LIKE '20.%'");
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Aggregate: count(tag_id)"), std::string::npos);
}

TEST_F(ExplainTest, ExplainDoesNotRegister) {
  // Explaining must not leave live pipelines behind.
  (void)Explain("SELECT count(tag_id) FROM readings");
  size_t outputs = 0;
  ASSERT_TRUE(engine_
                  .Push("readings",
                        {Value::String("r"), Value::String("t"),
                         Value::Time(1)},
                        1)
                  .ok());
  (void)outputs;
  // No derived query stream was created.
  EXPECT_EQ(engine_.FindStream("_q1"), nullptr);
}

TEST_F(ExplainTest, Errors) {
  EXPECT_TRUE(engine_.Explain("CREATE STREAM x(a)").status().IsInvalid());
  EXPECT_TRUE(engine_.Explain("SELECT * FROM missing").status().IsNotFound());
  EXPECT_TRUE(engine_.Explain("not sql").status().IsParseError());
}

}  // namespace
}  // namespace eslev
