// Failure injection: runtime errors inside pipelines must surface as
// Status through Push/AdvanceTime, and the engine must stay usable.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace eslev {
namespace {

TEST(FailureInjectionTest, FailingUdfSurfacesThroughPush) {
  Engine engine;
  ASSERT_TRUE(
      engine.ExecuteScript("CREATE STREAM s(tag, t_time);").ok());
  // A UDF that fails on a specific input.
  ScalarFunction fn;
  fn.name = "explode_on_boom";
  fn.min_args = fn.max_args = 1;
  fn.return_type = TypeId::kString;
  fn.fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (!args[0].is_null() && args[0].string_value() == "boom") {
      return Status::ExecutionError("injected UDF failure");
    }
    return args[0];
  };
  ASSERT_TRUE(engine.mutable_registry()->RegisterScalar(fn).ok());
  auto q = engine.RegisterQuery(
      "SELECT explode_on_boom(tag) FROM s");
  ASSERT_TRUE(q.ok()) << q.status();
  size_t outputs = 0;
  ASSERT_TRUE(
      engine.Subscribe(q->output_stream, [&](const Tuple&) { ++outputs; })
          .ok());

  ASSERT_TRUE(
      engine.Push("s", {Value::String("ok"), Value::Time(1)}, 1).ok());
  EXPECT_EQ(outputs, 1u);
  // The poisoned tuple propagates the error to the caller...
  Status st = engine.Push("s", {Value::String("boom"), Value::Time(2)}, 2);
  EXPECT_TRUE(st.IsExecutionError());
  EXPECT_NE(st.message().find("injected UDF failure"), std::string::npos);
  // ...and the engine keeps working afterwards.
  ASSERT_TRUE(
      engine.Push("s", {Value::String("fine"), Value::Time(3)}, 3).ok());
  EXPECT_EQ(outputs, 2u);
}

TEST(FailureInjectionTest, DivisionByZeroInPredicate) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(v INT, t_time);").ok());
  auto q = engine.RegisterQuery("SELECT v FROM s WHERE 100 / v > 10");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(engine.Push("s", {Value::Int(5), Value::Time(1)}, 1).ok());
  EXPECT_TRUE(
      engine.Push("s", {Value::Int(0), Value::Time(2)}, 2).IsExecutionError());
  ASSERT_TRUE(engine.Push("s", {Value::Int(2), Value::Time(3)}, 3).ok());
}

TEST(FailureInjectionTest, NullsFlowThroughPipelines) {
  Engine engine;
  ASSERT_TRUE(
      engine.ExecuteScript("CREATE STREAM s(tag, v INT, t_time);").ok());
  auto q = engine.RegisterQuery("SELECT tag, v + 1 FROM s WHERE v > 10");
  ASSERT_TRUE(q.ok()) << q.status();
  size_t outputs = 0;
  ASSERT_TRUE(
      engine.Subscribe(q->output_stream, [&](const Tuple&) { ++outputs; })
          .ok());
  // NULL v: the predicate is UNKNOWN -> filtered, no error.
  ASSERT_TRUE(engine
                  .Push("s", {Value::String("a"), Value::Null(),
                              Value::Time(1)},
                        1)
                  .ok());
  EXPECT_EQ(outputs, 0u);
  ASSERT_TRUE(engine
                  .Push("s", {Value::String("b"), Value::Int(20),
                              Value::Time(2)},
                        2)
                  .ok());
  EXPECT_EQ(outputs, 1u);
}

TEST(FailureInjectionTest, MalformedEpcInExtractSerial) {
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(tid, t_time);").ok());
  auto q = engine.RegisterQuery(
      "SELECT tid FROM s WHERE extract_serial(tid) > 10");
  ASSERT_TRUE(q.ok()) << q.status();
  // extract_serial errors on malformed EPCs: the error must propagate,
  // not crash or silently drop.
  EXPECT_TRUE(engine.Push("s", {Value::String("no-dots"), Value::Time(1)}, 1)
                  .IsInvalid());
  // Well-formed tags still work after the failure.
  ASSERT_TRUE(
      engine.Push("s", {Value::String("20.1.99"), Value::Time(2)}, 2).ok());
}

TEST(FailureInjectionTest, SubscribersSeeNoPartialEmissions) {
  // When a projection fails mid-stream, downstream subscribers must not
  // observe a partially-built tuple.
  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(v INT, t_time);").ok());
  auto q = engine.RegisterQuery("SELECT 100 / v, v FROM s");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Tuple> seen;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      seen.push_back(t);
                    }).ok());
  EXPECT_TRUE(
      engine.Push("s", {Value::Int(0), Value::Time(1)}, 1).IsExecutionError());
  EXPECT_TRUE(seen.empty());
  ASSERT_TRUE(engine.Push("s", {Value::Int(4), Value::Time(2)}, 2).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].value(0).int_value(), 25);
}

}  // namespace
}  // namespace eslev
