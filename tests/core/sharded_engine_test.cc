#include "core/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <thread>

namespace eslev {
namespace {

constexpr const char* kReadingsDdl =
    "CREATE STREAM readings(reader_id, tag_id, read_time);";

Status PushReading(ShardedEngine* engine, const std::string& reader,
                   const std::string& tag, Timestamp ts) {
  return engine->Push(
      "readings",
      {Value::String(reader), Value::String(tag), Value::Time(ts)}, ts);
}

TEST(ShardedEngineTest, PartitionsByTagColumnByDefault) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.ExecuteScript(kReadingsDdl).ok());

  // Same tag from different readers must land on one shard; many tags
  // must spread across shards.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        PushReading(&engine, "rd" + std::to_string(i % 4), "tag_fixed",
                    Seconds(i))
            .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  auto counts = engine.shard_tuple_counts();
  EXPECT_EQ(std::count_if(counts.begin(), counts.end(),
                          [](uint64_t c) { return c > 0; }),
            1);

  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(PushReading(&engine, "rd", "tag" + std::to_string(i),
                            Seconds(100 + i))
                    .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  counts = engine.shard_tuple_counts();
  EXPECT_GE(std::count_if(counts.begin(), counts.end(),
                          [](uint64_t c) { return c > 0; }),
            2);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), uint64_t{0}),
            32u + 64u);
}

TEST(ShardedEngineTest, SetPartitionKeyOverridesColumn) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.ExecuteScript(kReadingsDdl).ok());
  ASSERT_TRUE(engine.SetPartitionKey("readings", "reader_id").ok());

  // Now one reader with many tags pins to a single shard.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(PushReading(&engine, "reader_fixed",
                            "tag" + std::to_string(i), Seconds(i))
                    .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  auto counts = engine.shard_tuple_counts();
  EXPECT_EQ(std::count_if(counts.begin(), counts.end(),
                          [](uint64_t c) { return c > 0; }),
            1);

  EXPECT_TRUE(engine.SetPartitionKey("readings", "no_such_col").IsNotFound());
  EXPECT_TRUE(engine.SetPartitionKey("no_such_stream", "tag_id").IsNotFound());
}

TEST(ShardedEngineTest, DedupPipelineWorksAcrossShards) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned(reader_id, tag_id, read_time);
    INSERT INTO cleaned
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
  )sql")
                  .ok());
  std::vector<std::string> kept;
  ASSERT_TRUE(engine
                  .Subscribe("cleaned",
                             [&](const Tuple& t) {
                               kept.push_back(t.value(1).string_value());
                             })
                  .ok());
  // 20 distinct tags, each read 3 times within the window.
  for (int i = 0; i < 20; ++i) {
    const std::string tag = "tag" + std::to_string(i);
    const Timestamp base = Seconds(i * 2);
    for (int d = 0; d < 3; ++d) {
      ASSERT_TRUE(
          PushReading(&engine, "rd", tag, base + d * Milliseconds(100)).ok());
    }
  }
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.DrainOutputs(), 20u);
  EXPECT_EQ(kept.size(), 20u);
  std::set<std::string> distinct(kept.begin(), kept.end());
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(ShardedEngineTest, DrainMergesAcrossShardsByTimestamp) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.ExecuteScript(kReadingsDdl).ok());
  std::vector<Timestamp> seen;
  ASSERT_TRUE(engine
                  .Subscribe("readings",
                             [&](const Tuple& t) { seen.push_back(t.ts()); })
                  .ok());
  // Many tags -> many shards; timestamps globally increasing.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        PushReading(&engine, "rd", "tag" + std::to_string(i), Seconds(i))
            .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.DrainOutputs(), 50u);
  ASSERT_EQ(seen.size(), 50u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(ShardedEngineTest, WatermarkHeartbeatReachesIdleShards) {
  // EXCEPTION_SEQ timeout (active expiration) on a single-shard workflow
  // must fire from a heartbeat even though no tuple ever reaches the
  // other shards — and none arrives on the workflow's shard after the
  // partial either.
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM A1(staffid, tagid, tagtime);
    CREATE STREAM A2(staffid, tagid, tagtime);
    CREATE STREAM A3(staffid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  for (const char* s : {"A1", "A2", "A3"}) {
    ASSERT_TRUE(engine.SetSingleShard(s).ok());
  }
  size_t alerts = 0;
  ASSERT_TRUE(
      engine.Subscribe(q->output_stream, [&](const Tuple&) { ++alerts; })
          .ok());

  auto op = [&](const std::string& stream, const std::string& tag,
                Timestamp ts) {
    ASSERT_TRUE(engine
                    .Push(stream,
                          {Value::String("staff"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  };
  op("A1", "opA", Minutes(0));
  op("A2", "opB", Minutes(10));
  ASSERT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  EXPECT_EQ(alerts, 0u);

  // The timeout is detected purely by the watermark-driven heartbeat.
  ASSERT_TRUE(engine.AdvanceTime(Minutes(120)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  EXPECT_EQ(alerts, 1u);
  EXPECT_EQ(engine.low_watermark(), Minutes(120));
}

TEST(ShardedEngineTest, LowWatermarkWaitsForSlowestProducer) {
  ShardedEngineOptions options;
  options.num_shards = 2;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM A1(staffid, tagid, tagtime);
    CREATE STREAM A2(staffid, tagid, tagtime);
    CREATE STREAM A3(staffid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  for (const char* s : {"A1", "A2", "A3"}) {
    ASSERT_TRUE(engine.SetSingleShard(s).ok());
  }
  size_t alerts = 0;
  ASSERT_TRUE(
      engine.Subscribe(q->output_stream, [&](const Tuple&) { ++alerts; })
          .ok());

  const int fast = engine.RegisterProducer();
  const int slow = engine.RegisterProducer();

  ASSERT_TRUE(engine
                  .Push("A1",
                        {Value::String("staff"), Value::String("opA"),
                         Value::Time(Minutes(0))},
                        Minutes(0))
                  .ok());
  // The fast producer races far ahead; the slow one lags before the
  // deadline, so the low watermark must NOT trigger the timeout.
  ASSERT_TRUE(engine.AdvanceProducer(fast, Minutes(500)).ok());
  ASSERT_TRUE(engine.AdvanceProducer(slow, Minutes(30)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  EXPECT_EQ(alerts, 0u);
  EXPECT_EQ(engine.low_watermark(), Minutes(30));

  // Once the slowest producer passes the deadline, the violation fires.
  ASSERT_TRUE(engine.AdvanceProducer(slow, Minutes(200)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  EXPECT_EQ(alerts, 1u);
  EXPECT_EQ(engine.low_watermark(), Minutes(200));
}

TEST(ShardedEngineTest, SnapshotGatherMergesAcrossShards) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  options.engine.default_retention = Hours(1);
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.ExecuteScript(kReadingsDdl).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        PushReading(&engine, "rd", "tag" + std::to_string(i), Seconds(i))
            .ok());
  }
  auto rows = engine.ExecuteSnapshot("SELECT * FROM readings");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 40u);
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LE((*rows)[i - 1].ts(), (*rows)[i].ts());
  }
}

TEST(ShardedEngineTest, PipelineErrorsSurfaceOnFlush) {
  ShardedEngineOptions options;
  options.num_shards = 2;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.ExecuteScript(kReadingsDdl).ok());
  // A prebuilt tuple with the wrong arity slips past the coordinator
  // (PushTuple trusts prebuilt tuples) and fails inside the shard.
  Tuple bad(nullptr, {Value::String("rd"), Value::String("t")}, Seconds(1));
  ASSERT_TRUE(engine.PushTuple("readings", bad).ok());
  Status st = engine.Flush();
  EXPECT_FALSE(st.ok());

  EXPECT_TRUE(engine.Push("nope", {Value::Int(1)}, Seconds(2)).IsNotFound());
}

TEST(ShardedEngineTest, ConcurrentProducersKeepShardHistoriesOrdered) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.ExecuteScript(kReadingsDdl).ok());
  std::vector<Timestamp> seen;
  ASSERT_TRUE(engine
                  .Subscribe("readings",
                             [&](const Tuple& t) { seen.push_back(t.ts()); })
                  .ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Per-thread drifting clocks, like readers with skewed clocks.
        const Timestamp ts = Seconds(i) + t * Milliseconds(137);
        (void)engine.Push("readings",
                          {Value::String("rd" + std::to_string(t)),
                           Value::String("tag" + std::to_string(i % 64)),
                           Value::Time(ts)},
                          ts);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.DrainOutputs(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));
  // Merged drain is globally timestamp-ordered even under racing
  // producers (per-shard clamping + timestamp merge).
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(ShardedEngineTest, SingleShardDegeneratesGracefully) {
  ShardedEngineOptions options;
  options.num_shards = 1;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.ExecuteScript(kReadingsDdl).ok());
  size_t count = 0;
  ASSERT_TRUE(
      engine.Subscribe("readings", [&](const Tuple&) { ++count; }).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        PushReading(&engine, "rd", "tag" + std::to_string(i), Seconds(i))
            .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.DrainOutputs(), 10u);
  EXPECT_EQ(count, 10u);
}

}  // namespace
}  // namespace eslev
