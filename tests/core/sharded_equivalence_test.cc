// ShardedEngine must produce the same match set as a single Engine on
// the paper's workloads (DESIGN.md §8): E1 dedup and E6 quality-check
// SEQ partition by tag, E5's lab workflow is cross-partition and runs
// via the single-shard fallback (watermark heartbeats still fan out).
//
// "Same match set" is byte-identical serialized output after a
// timestamp-stable sort — tuples with equal timestamps from different
// partitions have no defined cross-shard order.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "rfid/workloads.h"

namespace eslev {
namespace {

struct Scenario {
  std::string ddl;
  std::string query;  // empty: the DDL already contains an INSERT query
  std::string output_stream;
  std::vector<std::string> single_shard_streams;
  Duration final_advance = 0;  // heartbeat past the last event when > 0
};

std::vector<std::string> SortedOutput(std::vector<std::string> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> RunSingle(const Scenario& scenario,
                                   const rfid::Workload& workload) {
  Engine engine;
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  std::string out = scenario.output_stream;
  if (!scenario.query.empty()) {
    auto q = engine.RegisterQuery(scenario.query);
    EXPECT_TRUE(q.ok()) << q.status();
    out = q->output_stream;
  }
  std::vector<std::string> rows;
  EXPECT_TRUE(engine
                  .Subscribe(out,
                             [&](const Tuple& t) { rows.push_back(t.ToString()); })
                  .ok());
  Timestamp last = kMinTimestamp;
  for (const auto& e : workload.events) {
    EXPECT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
    last = e.tuple.ts();
  }
  if (scenario.final_advance > 0) {
    EXPECT_TRUE(engine.AdvanceTime(last + scenario.final_advance).ok());
  }
  return SortedOutput(std::move(rows));
}

std::vector<std::string> RunSharded(const Scenario& scenario,
                                    const rfid::Workload& workload,
                                    size_t num_shards) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  ShardedEngine engine(options);
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  std::string out = scenario.output_stream;
  if (!scenario.query.empty()) {
    auto q = engine.RegisterQuery(scenario.query);
    EXPECT_TRUE(q.ok()) << q.status();
    out = q->output_stream;
  }
  for (const std::string& s : scenario.single_shard_streams) {
    EXPECT_TRUE(engine.SetSingleShard(s).ok());
  }
  std::vector<std::string> rows;
  EXPECT_TRUE(engine
                  .Subscribe(out,
                             [&](const Tuple& t) { rows.push_back(t.ToString()); })
                  .ok());
  Timestamp last = kMinTimestamp;
  for (const auto& e : workload.events) {
    EXPECT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
    last = e.tuple.ts();
  }
  if (scenario.final_advance > 0) {
    EXPECT_TRUE(engine.AdvanceTime(last + scenario.final_advance).ok());
  }
  EXPECT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  return SortedOutput(std::move(rows));
}

void ExpectEquivalent(const Scenario& scenario,
                      const rfid::Workload& workload) {
  const auto reference = RunSingle(scenario, workload);
  ASSERT_FALSE(reference.empty()) << "scenario produced no output; the "
                                     "equivalence check would be vacuous";
  for (size_t shards : {2u, 4u}) {
    const auto sharded = RunSharded(scenario, workload, shards);
    ASSERT_EQ(sharded.size(), reference.size()) << "at " << shards << " shards";
    EXPECT_EQ(sharded, reference) << "at " << shards << " shards";
  }
}

TEST(ShardedEquivalenceTest, E1DuplicateElimination) {
  rfid::DuplicateWorkloadOptions options;
  options.num_distinct = 400;
  options.duplicates_per_read = 3;
  options.inter_arrival = Milliseconds(40);
  options.num_tags = 120;
  auto workload = rfid::MakeDuplicateWorkload(options);

  Scenario scenario;
  scenario.ddl = R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned_readings(reader_id, tag_id, read_time);
    INSERT INTO cleaned_readings
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id
         AND r2.tag_id = r1.tag_id);
  )sql";
  scenario.output_stream = "cleaned_readings";
  ExpectEquivalent(scenario, workload);
}

TEST(ShardedEquivalenceTest, E5ExceptionSeqSingleShardFallback) {
  rfid::LabWorkflowWorkloadOptions options;
  options.num_rounds = 120;
  options.wrong_order_rate = 0.1;
  options.wrong_start_rate = 0.1;
  options.timeout_rate = 0.1;
  auto workload = rfid::MakeLabWorkflowWorkload(options);

  Scenario scenario;
  scenario.ddl = R"sql(
    CREATE STREAM A1(staffid, tagid, tagtime);
    CREATE STREAM A2(staffid, tagid, tagtime);
    CREATE STREAM A3(staffid, tagid, tagtime);
  )sql";
  scenario.query = R"sql(
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3)
    OVER [1 HOURS FOLLOWING A1]
  )sql";
  // One workflow spans all tags: cross-partition, so the sequence's
  // source streams fall back to a single shard. The final heartbeat
  // exercises watermark-driven active expiration across shards.
  scenario.single_shard_streams = {"A1", "A2", "A3"};
  scenario.final_advance = Hours(2);
  ExpectEquivalent(scenario, workload);
}

TEST(ShardedEquivalenceTest, E6QualityCheckSeqPartitionedByTag) {
  rfid::QualityCheckWorkloadOptions options;
  options.num_products = 150;
  options.stage_delay = Seconds(2);
  options.product_interval = Seconds(1);
  options.drop_rate = 0.1;
  auto workload = rfid::MakeQualityCheckWorkload(options);

  Scenario scenario;
  scenario.ddl = R"sql(
    CREATE STREAM C1(readerid, tagid, tagtime);
    CREATE STREAM C2(readerid, tagid, tagtime);
    CREATE STREAM C3(readerid, tagid, tagtime);
    CREATE STREAM C4(readerid, tagid, tagtime);
  )sql";
  scenario.query = R"sql(
    SELECT C4.tagid, C1.tagtime, C4.tagtime
    FROM C1, C2, C3, C4
    WHERE SEQ(C1, C2, C3, C4)
    OVER [60 SECONDS PRECEDING C4]
      AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
      AND C1.tagid=C4.tagid
  )sql";
  ExpectEquivalent(scenario, workload);
}

}  // namespace
}  // namespace eslev
