// Watermark-monotonicity regression for ShardedEngine: racing producers
// with stale clocks must never move the low watermark (or any shard's
// time) backward, and the watermark-lag gauge must account exactly for
// the gap between the fastest producer and the fanned-out low watermark.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_engine.h"

namespace eslev {
namespace {

ShardedEngineOptions TwoShards() {
  ShardedEngineOptions options;
  options.num_shards = 2;
  return options;
}

TEST(ShardedEngineWatermarkTest, RacingStaleProducersNeverMoveTimeBackward) {
  ShardedEngineOptions options;
  options.num_shards = 4;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());

  constexpr int kProducers = 4;
  constexpr int kTicks = 400;
  std::vector<int> ids;
  for (int p = 0; p < kProducers; ++p) ids.push_back(engine.RegisterProducer());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  // Monitor thread: the low watermark must be nondecreasing while the
  // producers race (low_watermark() is mutex-guarded, safe to poll).
  std::thread monitor([&] {
    Timestamp prev = kMinTimestamp;
    while (!done.load(std::memory_order_acquire)) {
      const Timestamp low = engine.low_watermark();
      if (low < prev) ++failures;
      prev = low;
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kTicks; ++i) {
        // Sawtooth clocks: every fourth tick is deliberately stale.
        const Timestamp ts = (i % 4 == 3) ? Seconds(i / 2) : Seconds(i);
        if (!engine.AdvanceProducer(ids[p], ts + p * Milliseconds(31)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : producers) th.join();
  done.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(engine.Flush().ok());
  // The last fresh tick is i = kTicks - 2 (kTicks - 1 is a stale
  // sawtooth step), so producer p peaked at Seconds(kTicks - 2) + p*31ms
  // and the slowest (p = 0) pins the low watermark.
  const Timestamp peak = Seconds(kTicks - 2);
  EXPECT_EQ(engine.low_watermark(), peak);
  EXPECT_EQ(engine.watermark_lag(), (kProducers - 1) * Milliseconds(31));

  // No shard's clock trails the fanned-out watermark, none ran ahead of
  // the fastest producer.
  auto clocks = engine.shard_clocks();
  ASSERT_TRUE(clocks.ok()) << clocks.status();
  for (Timestamp c : *clocks) {
    EXPECT_GE(c, engine.low_watermark());
    EXPECT_LE(c, peak + (kProducers - 1) * Milliseconds(31));
  }
}

TEST(ShardedEngineWatermarkTest, LagIsMaxProducerMinusLowWatermark) {
  ShardedEngine engine(TwoShards());
  ASSERT_TRUE(engine.ExecuteScript("CREATE STREAM s(a, t_time);").ok());
  const int fast = engine.RegisterProducer();
  const int slow = engine.RegisterProducer();
  EXPECT_EQ(engine.watermark_lag(), 0);  // nobody reported yet
  ASSERT_TRUE(engine.AdvanceProducer(fast, Seconds(100)).ok());
  // The slow producer has not reported: low watermark is still pinned at
  // kMinTimestamp and the lag is measured against it conservatively.
  ASSERT_TRUE(engine.AdvanceProducer(slow, Seconds(10)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.low_watermark(), Seconds(10));
  EXPECT_EQ(engine.watermark_lag(), Seconds(90));
  // A stale report changes nothing.
  ASSERT_TRUE(engine.AdvanceProducer(slow, Seconds(5)).ok());
  EXPECT_EQ(engine.low_watermark(), Seconds(10));
  // Catching up closes the gap.
  ASSERT_TRUE(engine.AdvanceProducer(slow, Seconds(100)).ok());
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.low_watermark(), Seconds(100));
  EXPECT_EQ(engine.watermark_lag(), 0);
}

TEST(ShardedEngineWatermarkTest, MetricsExposeWatermarkAndShardState) {
  ShardedEngine engine(TwoShards());
  ASSERT_TRUE(engine.ExecuteScript(
                        "CREATE STREAM readings(reader_id, tag_id, t_time);")
                  .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine
                    .Push("readings",
                          {Value::String("r"), Value::String("t" + std::to_string(i)),
                           Value::Time(Seconds(i))},
                          Seconds(i))
                    .ok());
  }
  ASSERT_TRUE(engine.AdvanceTime(Seconds(30)).ok());
  ASSERT_TRUE(engine.Flush().ok());

  auto metrics = engine.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  const MetricsSnapshot& snap = *metrics;
  EXPECT_EQ(snap.gauges.at("sharded.watermark.low"), Seconds(30));
  EXPECT_EQ(snap.gauges.at("sharded.watermark.lag"), 0);
  // Routed-tuple counters cover every push across the shards.
  uint64_t routed = 0;
  for (size_t i = 0; i < engine.num_shards(); ++i) {
    routed += snap.counters.at("sharded.shard" + std::to_string(i) +
                               ".tuples_routed");
  }
  EXPECT_EQ(routed, 20u);
  // Per-shard engine metrics are merged under shard<i>. prefixes, and
  // the per-shard stream tuples_in counters add up to the routed total.
  uint64_t stream_in = 0;
  for (size_t i = 0; i < engine.num_shards(); ++i) {
    stream_in += snap.counters.at("shard" + std::to_string(i) +
                                  ".stream.readings.tuples_in");
  }
  EXPECT_EQ(stream_in, 20u);
}

TEST(ShardedEngineWatermarkTest, ExplainAnalyzeShowsEveryShard) {
  ShardedEngine engine(TwoShards());
  ASSERT_TRUE(engine.ExecuteScript(
                        "CREATE STREAM readings(reader_id, tag_id, t_time);")
                  .ok());
  const std::string query =
      "SELECT count(tag_id) FROM readings";
  ASSERT_TRUE(engine.RegisterQuery(query).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine
                    .Push("readings",
                          {Value::String("r"), Value::String("t" + std::to_string(i)),
                           Value::Time(Seconds(i))},
                          Seconds(i))
                    .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());

  // Plain EXPLAIN: one (shard 0) plan, no counters.
  auto plain = engine.Explain("EXPLAIN " + query);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->find("-- shard"), std::string::npos) << *plain;
  EXPECT_EQ(plain->find("tuples_in="), std::string::npos) << *plain;

  // EXPLAIN ANALYZE: one annotated section per shard, and the per-shard
  // tuples_in counters across sections must cover every routed tuple.
  auto analyzed = engine.Explain("EXPLAIN ANALYZE " + query);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_NE(analyzed->find("-- shard 0 --"), std::string::npos) << *analyzed;
  EXPECT_NE(analyzed->find("-- shard 1 --"), std::string::npos) << *analyzed;
  uint64_t total_in = 0;
  size_t pos = 0;
  while ((pos = analyzed->find("tuples_in=", pos)) != std::string::npos) {
    pos += 10;
    total_in += std::strtoull(analyzed->c_str() + pos, nullptr, 10);
  }
  EXPECT_EQ(total_in, 10u) << *analyzed;
}

TEST(ShardedEngineWatermarkTest, DrainMergeRecordsReorderDistance) {
  ShardedEngine engine(TwoShards());
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tag_id, t_time);
    CREATE STREAM echoed(reader_id, tag_id, t_time);
    INSERT INTO echoed SELECT * FROM readings;
  )sql")
                  .ok());
  size_t delivered = 0;
  Timestamp prev = kMinTimestamp;
  bool ordered = true;
  ASSERT_TRUE(engine
                  .Subscribe("echoed",
                             [&](const Tuple& t) {
                               ++delivered;
                               if (t.ts() < prev) ordered = false;
                               prev = t.ts();
                             })
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine
                    .Push("readings",
                          {Value::String("r"), Value::String("t" + std::to_string(i)),
                           Value::Time(Seconds(i))},
                          Seconds(i))
                    .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(engine.DrainOutputs(), 50u);
  EXPECT_EQ(delivered, 50u);
  EXPECT_TRUE(ordered) << "drain merge must deliver in timestamp order";

  auto metrics = engine.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  const HistogramSnapshot& h =
      metrics->histograms.at("sharded.drain.reorder_distance");
  EXPECT_EQ(h.count, 50u);  // one observation per delivered tuple
}

}  // namespace
}  // namespace eslev
