// Capstone integration: a complete RFID-enabled warehouse built from
// every subsystem at once, mirroring the paper's end-to-end vision —
// one DSMS serving filtering, temporal events, persistence, snapshots
// and ALE reporting simultaneously.
//
//   raw readings ──dedup(Ex.1)──▶ cleaned ──┬─▶ ALE event cycles
//   product/case readings ──SEQ(R1*,R2)(Ex.7)──▶ packed events
//                                            └─▶ location table (Ex.2)
//   door readings ──NOT EXISTS P&F window (Ex.8)──▶ theft alerts
//   workflow ops ──EXCEPTION_SEQ (Ex.5)──▶ compliance alerts
//   + ad-hoc snapshots over retained history (§2.1)

#include <gtest/gtest.h>

#include "ale/event_cycle.h"
#include "core/engine.h"
#include "rfid/workloads.h"

namespace eslev {
namespace {

class WarehouseIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    // The lab-workflow trace spans tens of hours (timeout rounds stall
    // past their 1-hour window); retain enough for the final snapshot.
    options.default_retention = Hours(200);
    engine_ = std::make_unique<Engine>(options);
    ASSERT_TRUE(engine_
                    ->ExecuteScript(R"sql(
      CREATE STREAM readings(reader_id, tag_id, read_time);
      CREATE STREAM cleaned(reader_id, tag_id, read_time);
      CREATE STREAM R1(readerid, tagid, tagtime);
      CREATE STREAM R2(readerid, tagid, tagtime);
      CREATE STREAM door(tagid, tagtype, tagtime);
      CREATE STREAM A1(staffid, tagid, tagtime);
      CREATE STREAM A2(staffid, tagid, tagtime);
      CREATE STREAM A3(staffid, tagid, tagtime);
      CREATE STREAM tag_locations(readerid, tid, tagtime, loc);
      CREATE TABLE object_movement(tagid, location, start_time);

      -- Example 1: duplicate elimination.
      INSERT INTO cleaned
      SELECT * FROM readings AS r1
      WHERE NOT EXISTS
        (SELECT * FROM TABLE( readings OVER
            (RANGE 1 seconds PRECEDING CURRENT)) AS r2
         WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);

      -- Example 2: selective location persistence.
      INSERT INTO object_movement
      SELECT tid, loc, tagtime
      FROM tag_locations WHERE NOT EXISTS
        (SELECT tagid FROM object_movement
         WHERE tagid = tid AND location = loc);
    )sql")
                    .ok());

    // Example 7: containment events.
    auto packed = engine_->RegisterQuery(R"sql(
      SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
      FROM R1, R2
      WHERE SEQ(R1*, R2) MODE CHRONICLE
        AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
        AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
    )sql");
    ASSERT_TRUE(packed.ok()) << packed.status();
    ASSERT_TRUE(engine_
                    ->Subscribe(packed->output_stream,
                                [this](const Tuple& t) {
                                  packed_items_ += t.value(1).int_value();
                                  ++packed_cases_;
                                })
                    .ok());

    // Example 8: theft detection.
    auto theft = engine_->RegisterQuery(R"sql(
      SELECT * FROM door AS item
      WHERE item.tagtype = 'item' AND NOT EXISTS
        (SELECT * FROM door AS person
           OVER [1 MINUTES PRECEDING AND FOLLOWING item]
         WHERE person.tagtype = 'person')
    )sql");
    ASSERT_TRUE(theft.ok()) << theft.status();
    ASSERT_TRUE(engine_
                    ->Subscribe(theft->output_stream,
                                [this](const Tuple&) { ++theft_alerts_; })
                    .ok());

    // Example 5: workflow compliance.
    auto workflow = engine_->RegisterQuery(R"sql(
      SELECT A1.tagid, A2.tagid, A3.tagid FROM A1, A2, A3
      WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]
    )sql");
    ASSERT_TRUE(workflow.ok()) << workflow.status();
    ASSERT_TRUE(engine_
                    ->Subscribe(workflow->output_stream,
                                [this](const Tuple&) { ++workflow_alerts_; })
                    .ok());

    // ALE reporting over the cleaned stream.
    ale::EcSpec spec;
    spec.period = Minutes(5);
    ale::ReportSpec all;
    all.name = "seen";
    all.count_only = true;
    spec.reports.push_back(all);
    auto proc = ale::EventCycleProcessor::Make(spec, 0);
    ASSERT_TRUE(proc.ok()) << proc.status();
    ale_ = std::move(proc).ValueUnsafe();
    ale::EventCycleProcessor* raw = ale_.get();
    raw->SetCallback([this](const ale::EcCycleResult& c) {
      ale_counts_.push_back(c.reports[0].count);
    });
    ASSERT_TRUE(engine_
                    ->Subscribe("cleaned",
                                [raw](const Tuple& t) {
                                  (void)raw->OnReading(
                                      t.value(1).string_value(), t.ts());
                                })
                    .ok());
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<ale::EventCycleProcessor> ale_;
  int64_t packed_items_ = 0;
  size_t packed_cases_ = 0;
  size_t theft_alerts_ = 0;
  size_t workflow_alerts_ = 0;
  std::vector<size_t> ale_counts_;
};

TEST_F(WarehouseIntegrationTest, AllSubsystemsConcurrently) {
  // Interleave four scenario traces onto one engine timeline.
  rfid::DuplicateWorkloadOptions dup_opts;
  dup_opts.num_distinct = 300;
  dup_opts.duplicates_per_read = 2;
  dup_opts.num_tags = 300;  // unique tags: one ALE sighting per tag
  auto dups = rfid::MakeDuplicateWorkload(dup_opts);

  rfid::PackingWorkloadOptions pack_opts;
  pack_opts.num_cases = 25;
  auto packing = rfid::MakePackingWorkload(pack_opts);

  rfid::DoorWorkloadOptions door_opts;
  door_opts.num_items = 40;
  door_opts.theft_rate = 0.15;
  auto doors = rfid::MakeDoorWorkload(door_opts);
  for (auto& e : doors.events) e.stream = "door";

  rfid::LabWorkflowWorkloadOptions lab_opts;
  lab_opts.num_rounds = 30;
  lab_opts.wrong_order_rate = 0.1;
  lab_opts.wrong_start_rate = 0.1;
  lab_opts.timeout_rate = 0.1;
  auto lab = rfid::MakeLabWorkflowWorkload(lab_opts);

  // Merge all traces by timestamp (the engine requires a totally
  // ordered joint history).
  std::vector<const rfid::TimedReading*> merged;
  for (const auto* w :
       {&dups.events, &packing.events, &doors.events, &lab.events}) {
    for (const auto& e : *w) merged.push_back(&e);
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const rfid::TimedReading* a,
                      const rfid::TimedReading* b) {
                     return a->tuple.ts() < b->tuple.ts();
                   });

  // Movement events for Example 2, interleaved on the same clock.
  size_t movements = 0;
  for (const rfid::TimedReading* e : merged) {
    ASSERT_TRUE(engine_->PushTuple(e->stream, e->tuple).ok());
    if (e->stream == "R2" && movements < 10) {
      // Each packed case gets recorded at the packing station.
      const Timestamp ts = e->tuple.ts();
      ASSERT_TRUE(engine_
                      ->Push("tag_locations",
                             {Value::String("dock"),
                              Value::String(
                                  e->tuple.value(1).string_value()),
                              Value::Time(ts),
                              Value::String("packing-station")},
                             ts)
                      .ok());
      ++movements;
    }
  }
  ASSERT_TRUE(engine_->AdvanceTime(engine_->current_time() + Hours(2)).ok());
  ASSERT_TRUE(ale_->OnTime(engine_->current_time()).ok());

  // Every subsystem produced its expected results, concurrently.
  EXPECT_EQ(packed_cases_, packing.expected_events);
  size_t total_products = 0;
  for (size_t s : packing.case_sizes) total_products += s;
  EXPECT_EQ(static_cast<size_t>(packed_items_), total_products);

  EXPECT_EQ(theft_alerts_, doors.expected_events);
  EXPECT_GE(workflow_alerts_, lab.expected_exceptions);

  EXPECT_EQ(engine_->FindTable("object_movement")->num_rows(), movements);

  size_t ale_total = 0;
  for (size_t c : ale_counts_) ale_total += c;
  EXPECT_EQ(ale_total, dup_opts.num_distinct);  // distinct cleaned tags

  // Ad-hoc snapshot over the shared history still works afterwards.
  auto snapshot = engine_->ExecuteSnapshot(
      "SELECT count(tag_id) FROM cleaned");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ((*snapshot)[0].value(0).int_value(),
            static_cast<int64_t>(dup_opts.num_distinct));
}

}  // namespace
}  // namespace eslev
