#include "exec/aggregate.h"

#include <gtest/gtest.h>

#include "exec/basic_ops.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Make({{"tid", TypeId::kString},
                            {"loc", TypeId::kString},
                            {"bp", TypeId::kInt64},
                            {"tagtime", TypeId::kTimestamp}});
    scope_.AddEntry({"s", schema_, 0, false});
  }

  BoundExprPtr Bind(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    Binder binder(&scope_, &registry_);
    auto bound = binder.Bind(**parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return std::move(bound).ValueUnsafe();
  }

  AggSpec Agg(const std::string& fn, const std::string& arg) {
    AggSpec spec;
    spec.fn = *registry_.FindAggregate(fn);
    if (arg == "*") {
      spec.count_star = true;
    } else {
      spec.arg = Bind(arg);
    }
    return spec;
  }

  Tuple T(const std::string& tid, const std::string& loc, int64_t bp,
          Timestamp ts) {
    return *MakeTuple(schema_,
                      {Value::String(tid), Value::String(loc), Value::Int(bp),
                       Value::Time(ts)},
                      ts);
  }

  SchemaPtr schema_;
  BindScope scope_;
  FunctionRegistry registry_;
};

TEST_F(AggregateTest, RunningCountEmitsPerTuple) {
  // Example 3 shape: SELECT count(tid) FROM readings WHERE ...
  std::vector<AggSpec> aggs;
  aggs.push_back(Agg("count", "tid"));
  std::vector<BoundExprPtr> proj;
  proj.push_back(std::make_unique<BoundAggRef>(0));
  auto out_schema = Schema::Make({{"count", TypeId::kInt64}});
  AggregateOperator op(std::move(aggs), {}, std::move(proj), nullptr,
                       out_schema, std::nullopt);
  CollectOperator out;
  op.AddSink(&out);

  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(op.OnTuple(0, T("t", "a", i, Seconds(i))).ok());
  }
  ASSERT_EQ(out.tuples().size(), 5u);
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 1);
  EXPECT_EQ(out.tuples()[4].value(0).int_value(), 5);
}

TEST_F(AggregateTest, GroupByLocation) {
  std::vector<AggSpec> aggs;
  aggs.push_back(Agg("count", "*"));
  std::vector<BoundExprPtr> group;
  group.push_back(Bind("loc"));
  std::vector<BoundExprPtr> proj;
  proj.push_back(Bind("loc"));
  proj.push_back(std::make_unique<BoundAggRef>(0));
  auto out_schema = Schema::Make(
      {{"loc", TypeId::kString}, {"count", TypeId::kInt64}});
  AggregateOperator op(std::move(aggs), std::move(group), std::move(proj),
                       nullptr, out_schema, std::nullopt);
  CollectOperator out;
  op.AddSink(&out);

  ASSERT_TRUE(op.OnTuple(0, T("a", "dock", 0, 1)).ok());
  ASSERT_TRUE(op.OnTuple(0, T("b", "gate", 0, 2)).ok());
  ASSERT_TRUE(op.OnTuple(0, T("c", "dock", 0, 3)).ok());
  ASSERT_EQ(out.tuples().size(), 3u);
  EXPECT_EQ(out.tuples()[0].value(1).int_value(), 1);  // dock: 1
  EXPECT_EQ(out.tuples()[1].value(1).int_value(), 1);  // gate: 1
  EXPECT_EQ(out.tuples()[2].value(1).int_value(), 2);  // dock: 2
  EXPECT_EQ(op.num_groups(), 2u);
}

TEST_F(AggregateTest, TimeWindowedCountRetracts) {
  // "count the number of products passing through the door every hour" —
  // here a 10-second sliding window.
  std::vector<AggSpec> aggs;
  aggs.push_back(Agg("count", "*"));
  std::vector<BoundExprPtr> proj;
  proj.push_back(std::make_unique<BoundAggRef>(0));
  auto out_schema = Schema::Make({{"count", TypeId::kInt64}});
  WindowSpec w;
  w.length = Seconds(10);
  AggregateOperator op(std::move(aggs), {}, std::move(proj), nullptr,
                       out_schema, w);
  CollectOperator out;
  op.AddSink(&out);

  ASSERT_TRUE(op.OnTuple(0, T("a", "d", 0, Seconds(0))).ok());
  ASSERT_TRUE(op.OnTuple(0, T("b", "d", 0, Seconds(5))).ok());
  ASSERT_TRUE(op.OnTuple(0, T("c", "d", 0, Seconds(12))).ok());  // evicts a? no: 12-10=2>0 yes
  ASSERT_EQ(out.tuples().size(), 3u);
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 1);
  EXPECT_EQ(out.tuples()[1].value(0).int_value(), 2);
  EXPECT_EQ(out.tuples()[2].value(0).int_value(), 2);  // a evicted
}

TEST_F(AggregateTest, WindowedMinMaxRecompute) {
  // Max blood pressure over a sliding window (min/max cannot retract, so
  // the operator recomputes from the buffer).
  std::vector<AggSpec> aggs;
  aggs.push_back(Agg("max", "bp"));
  aggs.push_back(Agg("min", "bp"));
  std::vector<BoundExprPtr> proj;
  proj.push_back(std::make_unique<BoundAggRef>(0));
  proj.push_back(std::make_unique<BoundAggRef>(1));
  auto out_schema =
      Schema::Make({{"maxbp", TypeId::kInt64}, {"minbp", TypeId::kInt64}});
  WindowSpec w;
  w.length = Seconds(10);
  AggregateOperator op(std::move(aggs), {}, std::move(proj), nullptr,
                       out_schema, w);
  CollectOperator out;
  op.AddSink(&out);

  ASSERT_TRUE(op.OnTuple(0, T("p", "d", 180, Seconds(0))).ok());
  ASSERT_TRUE(op.OnTuple(0, T("p", "d", 120, Seconds(5))).ok());
  ASSERT_TRUE(op.OnTuple(0, T("p", "d", 130, Seconds(12))).ok());  // 180 evicted
  ASSERT_EQ(out.tuples().size(), 3u);
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 180);
  EXPECT_EQ(out.tuples()[1].value(0).int_value(), 180);
  EXPECT_EQ(out.tuples()[2].value(0).int_value(), 130);  // recomputed
  EXPECT_EQ(out.tuples()[2].value(1).int_value(), 120);
}

TEST_F(AggregateTest, RowWindowedCount) {
  std::vector<AggSpec> aggs;
  aggs.push_back(Agg("count", "*"));
  std::vector<BoundExprPtr> proj;
  proj.push_back(std::make_unique<BoundAggRef>(0));
  auto out_schema = Schema::Make({{"count", TypeId::kInt64}});
  WindowSpec w;
  w.row_based = true;
  w.length = 3;
  AggregateOperator op(std::move(aggs), {}, std::move(proj), nullptr,
                       out_schema, w);
  CollectOperator out;
  op.AddSink(&out);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(op.OnTuple(0, T("t", "d", i, Seconds(i))).ok());
  }
  ASSERT_EQ(out.tuples().size(), 6u);
  EXPECT_EQ(out.tuples()[1].value(0).int_value(), 2);
  EXPECT_EQ(out.tuples()[2].value(0).int_value(), 3);
  EXPECT_EQ(out.tuples()[5].value(0).int_value(), 3);  // capped at 3 rows
}

TEST_F(AggregateTest, HavingFiltersEmission) {
  std::vector<AggSpec> aggs;
  aggs.push_back(Agg("count", "*"));
  std::vector<BoundExprPtr> proj;
  proj.push_back(std::make_unique<BoundAggRef>(0));
  auto out_schema = Schema::Make({{"count", TypeId::kInt64}});
  // HAVING count > 2 — reference the agg via a BoundAggRef comparison.
  BoundExprPtr having = std::make_unique<BoundBinary>(
      BinaryOp::kGt, std::make_unique<BoundAggRef>(0),
      std::make_unique<BoundLiteral>(Value::Int(2)));
  AggregateOperator op(std::move(aggs), {}, std::move(proj),
                       std::move(having), out_schema, std::nullopt);
  CollectOperator out;
  op.AddSink(&out);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(op.OnTuple(0, T("t", "d", 0, i)).ok());
  }
  ASSERT_EQ(out.tuples().size(), 3u);  // counts 3, 4, 5 pass
  EXPECT_EQ(out.tuples()[0].value(0).int_value(), 3);
}

TEST_F(AggregateTest, SumAndAvg) {
  std::vector<AggSpec> aggs;
  aggs.push_back(Agg("sum", "bp"));
  aggs.push_back(Agg("avg", "bp"));
  std::vector<BoundExprPtr> proj;
  proj.push_back(std::make_unique<BoundAggRef>(0));
  proj.push_back(std::make_unique<BoundAggRef>(1));
  auto out_schema =
      Schema::Make({{"sum", TypeId::kInt64}, {"avg", TypeId::kDouble}});
  AggregateOperator op(std::move(aggs), {}, std::move(proj), nullptr,
                       out_schema, std::nullopt);
  CollectOperator out;
  op.AddSink(&out);
  ASSERT_TRUE(op.OnTuple(0, T("t", "d", 10, 1)).ok());
  ASSERT_TRUE(op.OnTuple(0, T("t", "d", 20, 2)).ok());
  ASSERT_EQ(out.tuples().size(), 2u);
  EXPECT_EQ(out.tuples()[1].value(0).int_value(), 30);
  EXPECT_DOUBLE_EQ(out.tuples()[1].value(1).double_value(), 15.0);
}

}  // namespace
}  // namespace eslev
