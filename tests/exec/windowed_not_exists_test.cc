// Tests for the windowed anti-semi-join, driven by the paper's Example 1
// (duplicate elimination) and Example 8 (theft detection).

#include "exec/windowed_not_exists.h"

#include <gtest/gtest.h>

#include "exec/basic_ops.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

class DedupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Make({{"reader_id", TypeId::kString},
                            {"tag_id", TypeId::kString},
                            {"read_time", TypeId::kTimestamp}});
    scope_.AddEntry({"r2", schema_, 0, false});  // inner
    scope_.AddEntry({"r1", schema_, 1, false});  // outer
  }

  BoundExprPtr Bind(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    Binder binder(&scope_, &registry_);
    auto bound = binder.Bind(**parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return std::move(bound).ValueUnsafe();
  }

  Tuple Reading(const std::string& reader, const std::string& tag,
                Timestamp ts) {
    return *MakeTuple(
        schema_,
        {Value::String(reader), Value::String(tag), Value::Time(ts)}, ts);
  }

  SchemaPtr schema_;
  BindScope scope_;
  FunctionRegistry registry_;
};

TEST_F(DedupTest, Example1DuplicateElimination) {
  // 1-second PRECEDING window, same stream plays both roles.
  WindowSpec w;
  w.length = Seconds(1);
  w.direction = WindowDirection::kPreceding;
  WindowedNotExistsOperator op(
      w, Bind("r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id"),
      /*same_stream=*/true);
  CollectOperator out;
  op.AddSink(&out);

  ASSERT_TRUE(op.OnTuple(0, Reading("rd1", "A", Milliseconds(0))).ok());
  ASSERT_TRUE(op.OnTuple(0, Reading("rd1", "A", Milliseconds(400))).ok());  // dup
  ASSERT_TRUE(op.OnTuple(0, Reading("rd1", "B", Milliseconds(500))).ok());
  ASSERT_TRUE(op.OnTuple(0, Reading("rd2", "A", Milliseconds(600))).ok());  // other reader
  ASSERT_TRUE(op.OnTuple(0, Reading("rd1", "A", Milliseconds(900))).ok());  // dup of 400
  ASSERT_TRUE(op.OnTuple(0, Reading("rd1", "A", Milliseconds(2000))).ok());  // fresh

  ASSERT_EQ(out.tuples().size(), 4u);
  EXPECT_EQ(out.tuples()[0].ts(), Milliseconds(0));
  EXPECT_EQ(out.tuples()[1].value(1).string_value(), "B");
  EXPECT_EQ(out.tuples()[2].value(0).string_value(), "rd2");
  EXPECT_EQ(out.tuples()[3].ts(), Milliseconds(2000));
}

TEST_F(DedupTest, ChainedDuplicatesStaySuppressed) {
  // A reading every 0.5 s: each is within 1 s of the previous, so only
  // the first survives — duplicates keep refreshing the window.
  WindowSpec w;
  w.length = Seconds(1);
  w.direction = WindowDirection::kPreceding;
  WindowedNotExistsOperator op(
      w, Bind("r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id"),
      true);
  CollectOperator out;
  op.AddSink(&out);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(op.OnTuple(0, Reading("rd", "A", i * Milliseconds(500))).ok());
  }
  EXPECT_EQ(out.tuples().size(), 1u);
}

TEST_F(DedupTest, TwoStreamMode) {
  // Distinct outer/inner streams via ports.
  WindowSpec w;
  w.length = Seconds(1);
  w.direction = WindowDirection::kPreceding;
  WindowedNotExistsOperator op(w, Bind("r2.tag_id = r1.tag_id"),
                               /*same_stream=*/false);
  CollectOperator out;
  op.AddSink(&out);

  ASSERT_TRUE(op.OnTuple(1, Reading("x", "A", Milliseconds(100))).ok());
  ASSERT_TRUE(op.OnTuple(0, Reading("y", "A", Milliseconds(200))).ok());  // blocked
  ASSERT_TRUE(op.OnTuple(0, Reading("y", "B", Milliseconds(300))).ok());  // passes
  EXPECT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(1).string_value(), "B");
}

// ---------------------------------------------------------------------------
// Example 8: PRECEDING AND FOLLOWING (theft detection)
// ---------------------------------------------------------------------------

class TheftTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Make({{"tagid", TypeId::kString},
                            {"tagtype", TypeId::kString},
                            {"tagtime", TypeId::kTimestamp}});
    scope_.AddEntry({"person", schema_, 0, false});  // inner = person here
    scope_.AddEntry({"item", schema_, 1, false});    // outer = item
  }

  BoundExprPtr Bind(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    Binder binder(&scope_, &registry_);
    auto bound = binder.Bind(**parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return std::move(bound).ValueUnsafe();
  }

  Tuple R(const std::string& id, const std::string& type, Timestamp ts) {
    return *MakeTuple(schema_,
                      {Value::String(id), Value::String(type), Value::Time(ts)},
                      ts);
  }

  // Alert when an item exits with no person within 1 minute before/after.
  // (We phrase the paper's Example 8 with item as the outer tuple: alert
  // carries the unaccompanied item.)
  std::unique_ptr<WindowedNotExistsOperator> MakeOp() {
    WindowSpec w;
    w.length = Minutes(1);
    w.direction = WindowDirection::kPrecedingAndFollowing;
    auto op = std::make_unique<WindowedNotExistsOperator>(
        w, Bind("person.tagtype = 'person'"), /*same_stream=*/true,
        Bind("item.tagtype = 'item'"));
    return op;
  }

  SchemaPtr schema_;
  BindScope scope_;
  FunctionRegistry registry_;
};

TEST_F(TheftTest, PersonBeforeItemSuppressesAlert) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, R("p1", "person", Seconds(10))).ok());
  ASSERT_TRUE(op->OnTuple(0, R("i1", "item", Seconds(40))).ok());
  ASSERT_TRUE(op->OnHeartbeat(Seconds(200)).ok());
  EXPECT_TRUE(out.tuples().empty());
}

TEST_F(TheftTest, PersonAfterItemSuppressesAlert) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, R("i1", "item", Seconds(10))).ok());
  EXPECT_EQ(op->pending_count(), 1u);
  ASSERT_TRUE(op->OnTuple(0, R("p1", "person", Seconds(50))).ok());
  EXPECT_EQ(op->pending_count(), 0u);
  ASSERT_TRUE(op->OnHeartbeat(Seconds(200)).ok());
  EXPECT_TRUE(out.tuples().empty());
}

TEST_F(TheftTest, UnaccompaniedItemRaisesAlertOnExpiry) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, R("i1", "item", Seconds(10))).ok());
  // No alert until the FOLLOWING window passes (active expiration).
  EXPECT_TRUE(out.tuples().empty());
  ASSERT_TRUE(op->OnHeartbeat(Seconds(70)).ok());  // 10s + 60s boundary: still open
  EXPECT_TRUE(out.tuples().empty());
  ASSERT_TRUE(op->OnHeartbeat(Seconds(71)).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).string_value(), "i1");
}

TEST_F(TheftTest, PersonTooFarAwayDoesNotSuppress) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, R("p1", "person", Seconds(10))).ok());
  ASSERT_TRUE(op->OnTuple(0, R("i1", "item", Seconds(100))).ok());  // 90s later
  ASSERT_TRUE(op->OnTuple(0, R("p2", "person", Seconds(200))).ok());  // 100s after
  ASSERT_TRUE(op->OnHeartbeat(Seconds(300)).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).string_value(), "i1");
}

TEST_F(TheftTest, LaterArrivalFlushesPendingWithoutHeartbeat) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, R("i1", "item", Seconds(10))).ok());
  // A later item arrival advances time past i1's deadline.
  ASSERT_TRUE(op->OnTuple(0, R("i2", "item", Seconds(120))).ok());
  ASSERT_EQ(out.tuples().size(), 1u);
  EXPECT_EQ(out.tuples()[0].value(0).string_value(), "i1");
  EXPECT_EQ(op->pending_count(), 1u);  // i2 still pending
}

TEST_F(TheftTest, OnePersonCoversMultipleItems) {
  auto op = MakeOp();
  CollectOperator out;
  op->AddSink(&out);
  ASSERT_TRUE(op->OnTuple(0, R("i1", "item", Seconds(10))).ok());
  ASSERT_TRUE(op->OnTuple(0, R("i2", "item", Seconds(20))).ok());
  ASSERT_TRUE(op->OnTuple(0, R("p1", "person", Seconds(30))).ok());
  ASSERT_TRUE(op->OnHeartbeat(Seconds(500)).ok());
  EXPECT_TRUE(out.tuples().empty());
}

}  // namespace
}  // namespace eslev
