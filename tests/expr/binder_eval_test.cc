// Bind-and-evaluate tests: parse an expression, bind it against a scope,
// evaluate against concrete tuples.

#include <gtest/gtest.h>

#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

class BinderEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    readings_ = Schema::Make({{"reader_id", TypeId::kString},
                              {"tag_id", TypeId::kString},
                              {"read_time", TypeId::kTimestamp}});
    scope_.AddEntry({"r1", readings_, 0, false});
    scope_.AddEntry({"r2", readings_, 1, false});  // outer scope
  }

  Result<Value> Eval(const std::string& text, const Tuple* t1,
                     const Tuple* t2 = nullptr) {
    auto parsed = ParseExpression(text);
    if (!parsed.ok()) return parsed.status();
    Binder binder(&scope_, &registry_);
    auto bound = binder.Bind(**parsed);
    if (!bound.ok()) return bound.status();
    RowScratch scratch(scope_.size());
    scratch.SetTuple(0, t1);
    scratch.SetTuple(1, t2);
    return (*bound)->Eval(scratch.Row());
  }

  Tuple MakeReading(const std::string& reader, const std::string& tag,
                    Timestamp ts) {
    return *MakeTuple(readings_,
                      {Value::String(reader), Value::String(tag),
                       Value::Time(ts)},
                      ts);
  }

  SchemaPtr readings_;
  BindScope scope_;
  FunctionRegistry registry_;
};

TEST_F(BinderEvalTest, QualifiedAndUnqualifiedColumns) {
  Tuple a = MakeReading("rd1", "tagA", Seconds(1));
  Tuple b = MakeReading("rd2", "tagB", Seconds(2));
  // Unqualified `tag_id` is ambiguous only within one depth; r1 is depth 0
  // and r2 depth 1, so it resolves to r1.
  EXPECT_EQ(Eval("tag_id", &a, &b)->string_value(), "tagA");
  EXPECT_EQ(Eval("r2.tag_id", &a, &b)->string_value(), "tagB");
  EXPECT_EQ(Eval("r1.reader_id", &a, &b)->string_value(), "rd1");
}

TEST_F(BinderEvalTest, CrossSlotComparison) {
  Tuple a = MakeReading("rd1", "tagA", Seconds(1));
  Tuple b = MakeReading("rd1", "tagA", Seconds(2));
  EXPECT_TRUE(
      Eval("r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id", &a, &b)
          ->bool_value());
  Tuple c = MakeReading("rd9", "tagA", Seconds(2));
  EXPECT_FALSE(
      Eval("r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id", &a, &c)
          ->bool_value());
}

TEST_F(BinderEvalTest, TimestampAlgebra) {
  Tuple a = MakeReading("rd1", "t", Seconds(10));
  Tuple b = MakeReading("rd1", "t", Seconds(14));
  // ts - ts -> duration (INT micros); compare against interval literal.
  EXPECT_TRUE(
      Eval("r2.read_time - r1.read_time <= 5 SECONDS", &a, &b)->bool_value());
  EXPECT_FALSE(
      Eval("r2.read_time - r1.read_time <= 3 SECONDS", &a, &b)->bool_value());
  // ts + duration -> ts.
  auto v = Eval("r1.read_time + 5 SECONDS", &a, &b);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->type(), TypeId::kTimestamp);
  EXPECT_EQ(v->time_value(), Seconds(15));
}

TEST_F(BinderEvalTest, ArithmeticAndDivision) {
  Tuple a = MakeReading("r", "t", 0);
  EXPECT_EQ(Eval("1 + 2 * 3", &a)->int_value(), 7);
  EXPECT_EQ(Eval("7 / 2", &a)->int_value(), 3);
  EXPECT_DOUBLE_EQ(Eval("7 / 2.0", &a)->double_value(), 3.5);
  EXPECT_EQ(Eval("7 % 4", &a)->int_value(), 3);
  EXPECT_TRUE(Eval("1 / 0", &a).status().IsExecutionError());
  EXPECT_TRUE(Eval("1 % 0", &a).status().IsExecutionError());
  EXPECT_EQ(Eval("-(3 - 5)", &a)->int_value(), 2);
}

TEST_F(BinderEvalTest, LikeOnEpcPatterns) {
  Tuple a = MakeReading("r", "20.17.7042", 0);
  EXPECT_TRUE(Eval("r1.tag_id LIKE '20.%.%'", &a)->bool_value());
  EXPECT_FALSE(Eval("r1.tag_id LIKE '21.%.%'", &a)->bool_value());
  EXPECT_TRUE(Eval("r1.tag_id NOT LIKE '21.%.%'", &a)->bool_value());
  EXPECT_TRUE(Eval("r1.tag_id LIKE 3", &a).status().IsTypeError());
}

TEST_F(BinderEvalTest, UdfInPredicate) {
  // Example 3's WHERE clause, evaluated directly.
  Tuple in_range = MakeReading("r", "20.17.7042", 0);
  Tuple out_range = MakeReading("r", "20.17.142", 0);
  const char* pred =
      "tag_id LIKE '20.%.%' AND extract_serial(tag_id) > 5000 "
      "AND extract_serial(tag_id) < 9999";
  EXPECT_TRUE(Eval(pred, &in_range)->bool_value());
  EXPECT_FALSE(Eval(pred, &out_range)->bool_value());
}

TEST_F(BinderEvalTest, ThreeValuedLogic) {
  Tuple a = MakeReading("r", "t", 0);
  EXPECT_TRUE(Eval("NULL OR TRUE", &a)->bool_value());
  EXPECT_FALSE(Eval("NULL AND FALSE", &a)->bool_value());
  EXPECT_TRUE(Eval("NULL AND TRUE", &a)->is_null());
  EXPECT_TRUE(Eval("NOT NULL", &a)->is_null());
  EXPECT_TRUE(Eval("NULL = NULL", &a)->is_null());  // SQL, not structural
  EXPECT_TRUE(Eval("1 = NULL", &a)->is_null());
}

TEST_F(BinderEvalTest, NullSlotYieldsNull) {
  // r2 unbound (e.g. not-yet-matched stream): its columns read as NULL.
  Tuple a = MakeReading("r", "t", 0);
  EXPECT_TRUE(Eval("r2.tag_id", &a, nullptr)->is_null());
}

TEST_F(BinderEvalTest, BindErrors) {
  Tuple a = MakeReading("r", "t", 0);
  EXPECT_TRUE(Eval("nosuchcol", &a).status().IsBindError());
  EXPECT_TRUE(Eval("r9.tag_id", &a).status().IsBindError());
  EXPECT_TRUE(Eval("nosuchfn(tag_id)", &a).status().IsNotFound());
  EXPECT_TRUE(Eval("substr(tag_id)", &a).status().IsBindError());  // arity
  EXPECT_TRUE(Eval("count(tag_id)", &a).status().IsBindError());  // no hook
  // `.previous.` requires a starred SEQ argument.
  EXPECT_TRUE(Eval("r1.previous.tag_id", &a).status().IsBindError());
}

TEST_F(BinderEvalTest, AmbiguousWithinSameDepth) {
  BindScope scope;
  scope.AddEntry({"a", readings_, 0, false});
  scope.AddEntry({"b", readings_, 0, false});
  FunctionRegistry reg;
  Binder binder(&scope, &reg);
  auto parsed = ParseExpression("tag_id");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(binder.Bind(**parsed).status().IsBindError());
}

TEST_F(BinderEvalTest, EvalPredicateSemantics) {
  Tuple a = MakeReading("r", "t", 0);
  auto check = [&](const std::string& text) -> bool {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok());
    Binder binder(&scope_, &registry_);
    auto bound = binder.Bind(**parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    RowScratch scratch(scope_.size());
    scratch.SetTuple(0, &a);
    auto r = EvalPredicate(**bound, scratch.Row());
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  };
  EXPECT_TRUE(check("TRUE"));
  EXPECT_FALSE(check("FALSE"));
  EXPECT_FALSE(check("NULL AND TRUE"));  // UNKNOWN rejects
}

// Star-group aggregates evaluated against an assembled group.
TEST_F(BinderEvalTest, StarAggregates) {
  BindScope scope;
  scope.AddEntry({"R1", readings_, 0, true});   // starred
  scope.AddEntry({"R2", readings_, 1, false});
  FunctionRegistry reg;
  Binder binder(&scope, &reg);

  std::vector<Tuple> group = {MakeReading("p", "tag1", Seconds(1)),
                              MakeReading("p", "tag2", Seconds(2)),
                              MakeReading("p", "tag3", Seconds(3))};
  Tuple r2 = MakeReading("c", "case9", Seconds(6));

  RowScratch scratch(2);
  scratch.SetTuple(0, &group.back());
  scratch.SetTuple(1, &r2);
  scratch.SetStarGroup(0, &group);

  auto eval = [&](const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto bound = binder.Bind(**parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return (*bound)->Eval(scratch.Row());
  };

  EXPECT_EQ(eval("COUNT(R1*)")->int_value(), 3);
  EXPECT_EQ(eval("FIRST(R1*).read_time")->time_value(), Seconds(1));
  EXPECT_EQ(eval("LAST(R1*).tag_id")->string_value(), "tag3");
  EXPECT_TRUE(
      eval("R2.read_time - LAST(R1*).read_time <= 5 SECONDS")->bool_value());
  // FIRST on a non-star alias is a bind error.
  auto parsed = ParseExpression("FIRST(R2*).tag_id");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(binder.Bind(**parsed).status().IsBindError());
}

TEST_F(BinderEvalTest, PreviousReferenceOnStarGroup) {
  BindScope scope;
  scope.AddEntry({"R1", readings_, 0, true});
  FunctionRegistry reg;
  Binder binder(&scope, &reg);

  Tuple prev = MakeReading("p", "tag1", Seconds(1));
  Tuple cur = MakeReading("p", "tag2", Milliseconds(1800));

  auto parsed =
      ParseExpression("R1.read_time - R1.previous.read_time <= 1 SECONDS");
  ASSERT_TRUE(parsed.ok());
  auto bound = binder.Bind(**parsed);
  ASSERT_TRUE(bound.ok()) << bound.status();

  RowScratch scratch(1);
  scratch.SetTuple(0, &cur);
  scratch.SetPrevious(0, &prev);
  EXPECT_TRUE((*bound)->Eval(scratch.Row())->bool_value());

  // First tuple of a group: previous is NULL -> predicate is UNKNOWN.
  scratch.SetPrevious(0, nullptr);
  EXPECT_TRUE((*bound)->Eval(scratch.Row())->is_null());
}

}  // namespace
}  // namespace eslev
