#include "expr/function_registry.h"

#include <gtest/gtest.h>

namespace eslev {
namespace {

class FunctionRegistryTest : public ::testing::Test {
 protected:
  FunctionRegistry reg_;

  Result<Value> Call(const std::string& name, std::vector<Value> args) {
    auto fn = reg_.FindScalar(name);
    if (!fn.ok()) return fn.status();
    return (*fn)->fn(args);
  }
};

TEST_F(FunctionRegistryTest, ExtractSerial) {
  // Example 3: EPC format "company.productcode.serialnumber".
  EXPECT_EQ(Call("extract_serial", {Value::String("20.17.7042")})->int_value(),
            7042);
  EXPECT_TRUE(Call("extract_serial", {Value::String("20.17")})
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(Call("extract_serial", {Value::String("20.17.xyz")})
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(Call("extract_serial", {Value::Int(3)}).status().IsTypeError());
  EXPECT_TRUE(Call("extract_serial", {Value::Null()})->is_null());
}

TEST_F(FunctionRegistryTest, ExtractCompanyAndProduct) {
  EXPECT_EQ(
      Call("extract_company", {Value::String("20.17.7042")})->string_value(),
      "20");
  EXPECT_EQ(
      Call("extract_product", {Value::String("20.17.7042")})->string_value(),
      "17");
}

TEST_F(FunctionRegistryTest, StringFunctions) {
  EXPECT_EQ(Call("length", {Value::String("abcd")})->int_value(), 4);
  EXPECT_EQ(Call("lower", {Value::String("TAG")})->string_value(), "tag");
  EXPECT_EQ(Call("upper", {Value::String("tag")})->string_value(), "TAG");
  EXPECT_EQ(Call("substr", {Value::String("abcdef"), Value::Int(2),
                            Value::Int(3)})
                ->string_value(),
            "bcd");
  EXPECT_EQ(Call("substr", {Value::String("abc"), Value::Int(9)})
                ->string_value(),
            "");
  EXPECT_EQ(Call("concat", {Value::String("a"), Value::Int(1)})
                ->string_value(),
            "a1");
}

TEST_F(FunctionRegistryTest, MathAndNullHandling) {
  EXPECT_EQ(Call("abs", {Value::Int(-5)})->int_value(), 5);
  EXPECT_DOUBLE_EQ(Call("abs", {Value::Double(-2.5)})->double_value(), 2.5);
  EXPECT_TRUE(Call("abs", {Value::Null()})->is_null());
  EXPECT_EQ(Call("coalesce", {Value::Null(), Value::Int(3)})->int_value(), 3);
  EXPECT_TRUE(Call("coalesce", {Value::Null(), Value::Null()})->is_null());
}

TEST_F(FunctionRegistryTest, LookupIsCaseInsensitiveAndChecked) {
  EXPECT_TRUE(reg_.FindScalar("EXTRACT_SERIAL").ok());
  EXPECT_TRUE(reg_.FindScalar("no_such_fn").status().IsNotFound());
  EXPECT_TRUE(reg_.FindAggregate("COUNT").ok());
  EXPECT_TRUE(reg_.FindAggregate("median").status().IsNotFound());
  EXPECT_TRUE(reg_.IsAggregate("Sum"));
  EXPECT_FALSE(reg_.IsAggregate("length"));
}

TEST_F(FunctionRegistryTest, RegisterUdfAndDuplicates) {
  ScalarFunction f;
  f.name = "twice";
  f.min_args = f.max_args = 1;
  f.fn = [](const std::vector<Value>& args) -> Result<Value> {
    ESLEV_ASSIGN_OR_RETURN(int64_t v, args[0].AsInt64());
    return Value::Int(2 * v);
  };
  ASSERT_TRUE(reg_.RegisterScalar(f).ok());
  EXPECT_EQ(Call("twice", {Value::Int(21)})->int_value(), 42);
  EXPECT_TRUE(reg_.RegisterScalar(f).IsAlreadyExists());

  ScalarFunction clash;
  clash.name = "count";  // collides with aggregate
  clash.fn = f.fn;
  EXPECT_TRUE(reg_.RegisterScalar(clash).IsAlreadyExists());
}

// ---- aggregates ------------------------------------------------------------

TEST_F(FunctionRegistryTest, CountAccumulateRetract) {
  auto st = (*reg_.FindAggregate("count"))->make_state();
  ASSERT_TRUE(st->Accumulate(Value::Int(1)).ok());
  ASSERT_TRUE(st->Accumulate(Value::Null()).ok());  // NULLs don't count
  ASSERT_TRUE(st->Accumulate(Value::Int(2)).ok());
  EXPECT_EQ(st->Finalize().int_value(), 2);
  ASSERT_TRUE(st->Retract(Value::Int(1)).ok());
  EXPECT_EQ(st->Finalize().int_value(), 1);
  st->Reset();
  EXPECT_EQ(st->Finalize().int_value(), 0);
}

TEST_F(FunctionRegistryTest, SumIntAndDouble) {
  auto st = (*reg_.FindAggregate("sum"))->make_state();
  EXPECT_TRUE(st->Finalize().is_null());  // empty sum is NULL
  ASSERT_TRUE(st->Accumulate(Value::Int(3)).ok());
  ASSERT_TRUE(st->Accumulate(Value::Int(4)).ok());
  EXPECT_EQ(st->Finalize().int_value(), 7);
  ASSERT_TRUE(st->Accumulate(Value::Double(0.5)).ok());
  EXPECT_DOUBLE_EQ(st->Finalize().double_value(), 7.5);
  ASSERT_TRUE(st->Retract(Value::Int(3)).ok());
  EXPECT_DOUBLE_EQ(st->Finalize().double_value(), 4.5);
}

TEST_F(FunctionRegistryTest, Avg) {
  auto st = (*reg_.FindAggregate("avg"))->make_state();
  ASSERT_TRUE(st->Accumulate(Value::Int(2)).ok());
  ASSERT_TRUE(st->Accumulate(Value::Int(4)).ok());
  EXPECT_DOUBLE_EQ(st->Finalize().double_value(), 3.0);
}

TEST_F(FunctionRegistryTest, MinMax) {
  auto mn = (*reg_.FindAggregate("min"))->make_state();
  auto mx = (*reg_.FindAggregate("max"))->make_state();
  for (int v : {5, 2, 9, 2}) {
    ASSERT_TRUE(mn->Accumulate(Value::Int(v)).ok());
    ASSERT_TRUE(mx->Accumulate(Value::Int(v)).ok());
  }
  EXPECT_EQ(mn->Finalize().int_value(), 2);
  EXPECT_EQ(mx->Finalize().int_value(), 9);
  // Min/max cannot retract; windowed operators must recompute.
  EXPECT_TRUE(mn->Retract(Value::Int(2)).IsNotImplemented());
  EXPECT_FALSE((*reg_.FindAggregate("min"))->supports_retract);
  EXPECT_TRUE((*reg_.FindAggregate("count"))->supports_retract);
}

TEST_F(FunctionRegistryTest, MinMaxOnStrings) {
  auto mn = (*reg_.FindAggregate("min"))->make_state();
  ASSERT_TRUE(mn->Accumulate(Value::String("dock")).ok());
  ASSERT_TRUE(mn->Accumulate(Value::String("gate")).ok());
  EXPECT_EQ(mn->Finalize().string_value(), "dock");
}

}  // namespace
}  // namespace eslev
