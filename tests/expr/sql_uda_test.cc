// SQL-defined UDAs (CREATE AGGREGATE ... INITIALIZE/ITERATE/TERMINATE),
// end-to-end through the Engine.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace eslev {
namespace {

class SqlUdaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .ExecuteScript(
                        "CREATE STREAM vitals(patient, bp INT, taken_time);")
                    .ok());
  }

  void Push(const std::string& patient, int64_t bp, Timestamp ts) {
    ASSERT_TRUE(engine_
                    .Push("vitals",
                          {Value::String(patient), Value::Int(bp),
                           Value::Time(ts)},
                          ts)
                    .ok());
  }

  std::vector<Value> Run(const std::string& query) {
    auto q = engine_.RegisterQuery(query);
    EXPECT_TRUE(q.ok()) << q.status();
    std::vector<Value> out;
    EXPECT_TRUE(engine_
                    .Subscribe(q->output_stream,
                               [&](const Tuple& t) {
                                 out.push_back(t.value(0));
                               })
                    .ok());
    Push("alice", 120, Seconds(1));
    Push("alice", 130, Seconds(2));
    Push("alice", 110, Seconds(3));
    Push("alice", 140, Seconds(4));
    return out;
  }

  Engine engine_;
};

TEST_F(SqlUdaTest, RunningTotal) {
  ASSERT_TRUE(engine_
                  .ExecuteScript(
                      "CREATE AGGREGATE total AS INITIALIZE next "
                      "ITERATE state + next;")
                  .ok());
  auto out = Run("SELECT total(bp) FROM vitals");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].int_value(), 120);
  EXPECT_EQ(out[3].int_value(), 500);
}

TEST_F(SqlUdaTest, MeanWithTerminate) {
  ASSERT_TRUE(engine_
                  .ExecuteScript(
                      "CREATE AGGREGATE mean AS INITIALIZE next "
                      "ITERATE state + next TERMINATE state / n;")
                  .ok());
  auto out = Run("SELECT mean(bp) FROM vitals");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].int_value(), 120);
  EXPECT_EQ(out[3].int_value(), 125);  // 500 / 4 (integer division)
}

TEST_F(SqlUdaTest, LatestValue) {
  ASSERT_TRUE(engine_
                  .ExecuteScript(
                      "CREATE AGGREGATE latest AS INITIALIZE next "
                      "ITERATE next;")
                  .ok());
  auto out = Run("SELECT latest(bp) FROM vitals");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3].int_value(), 140);
}

TEST_F(SqlUdaTest, ExponentialSmoothing) {
  // state <- 0.75*state + 0.25*next: a realistic sensor-smoothing UDA
  // (the paper's blood-pressure monitoring scenario).
  ASSERT_TRUE(engine_
                  .ExecuteScript(
                      "CREATE AGGREGATE smooth AS INITIALIZE next "
                      "ITERATE state * 0.75 + next * 0.25 RETURNS DOUBLE;")
                  .ok());
  auto out = Run("SELECT smooth(bp) FROM vitals");
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[1].double_value(), 120 * 0.75 + 130 * 0.25);
}

TEST_F(SqlUdaTest, WorksWithGroupByAndWindows) {
  ASSERT_TRUE(engine_
                  .ExecuteScript(
                      "CREATE AGGREGATE total AS INITIALIZE next "
                      "ITERATE state + next;")
                  .ok());
  // Windowed: no retraction -> the operator recomputes per eviction.
  auto q = engine_.RegisterQuery(
      "SELECT total(bp) FROM TABLE(vitals OVER "
      "(RANGE 2 SECONDS PRECEDING CURRENT)) AS v");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<int64_t> out;
  ASSERT_TRUE(engine_
                  .Subscribe(q->output_stream,
                             [&](const Tuple& t) {
                               out.push_back(t.value(0).int_value());
                             })
                  .ok());
  Push("alice", 100, Seconds(0));
  Push("alice", 10, Seconds(1));
  Push("alice", 1, Seconds(4));  // 100 and 10 evicted
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 100);
  EXPECT_EQ(out[1], 110);
  EXPECT_EQ(out[2], 1);
}

TEST_F(SqlUdaTest, SnapshotUsage) {
  EngineOptions options;
  options.default_retention = Hours(1);
  Engine engine(options);
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE STREAM vitals(patient, bp INT, taken_time);
    CREATE AGGREGATE total AS INITIALIZE next ITERATE state + next;
  )sql")
                  .ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(engine
                    .Push("vitals",
                          {Value::String("bob"), Value::Int(i),
                           Value::Time(Seconds(i))},
                          Seconds(i))
                    .ok());
  }
  auto rows = engine.ExecuteSnapshot("SELECT total(bp) FROM vitals");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].value(0).int_value(), 6);
}

TEST_F(SqlUdaTest, Errors) {
  // Duplicate name (collides with the builtin).
  EXPECT_TRUE(engine_
                  .ExecuteScript(
                      "CREATE AGGREGATE count AS INITIALIZE next "
                      "ITERATE state;")
                  .IsAlreadyExists());
  // Unknown identifier in the body.
  EXPECT_TRUE(engine_
                  .ExecuteScript(
                      "CREATE AGGREGATE bad AS INITIALIZE nope "
                      "ITERATE state;")
                  .IsBindError());
  // Parse errors.
  EXPECT_TRUE(engine_.ExecuteScript("CREATE AGGREGATE x AS ITERATE state;")
                  .IsParseError());
  EXPECT_TRUE(engine_.ExecuteScript("CREATE AGGREGATE AS INITIALIZE 1;")
                  .IsParseError());
}

}  // namespace
}  // namespace eslev
