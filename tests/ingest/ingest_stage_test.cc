// Unit tests for the ingest subsystem (DESIGN.md §15): reorder-stage
// boundary behaviour (an event displaced by exactly the lateness bound
// is accepted, one microsecond more is late), cleaning-stage smoothing
// (window of 1, all-duplicate bursts, spurious filtering,
// interpolation provenance), option/env validation, and stage state
// save/restore.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "ingest/cleaning_stage.h"
#include "ingest/ingest_options.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/reorder_stage.h"
#include "rfid/workloads.h"

namespace eslev {
namespace {

Tuple Read(const std::string& reader, const std::string& tag, Timestamp ts) {
  auto t = MakeTuple(
      rfid::ReaderSchema(),
      {Value::String(reader), Value::String(tag), Value::Time(ts)}, ts);
  EXPECT_TRUE(t.ok());
  return std::move(t).ValueUnsafe();
}

/// Collector bound to the tail of a stage chain.
struct Collected {
  std::vector<std::pair<size_t, Tuple>> tuples;
  std::vector<Timestamp> heartbeats;
  std::vector<std::string> Rows() const {
    std::vector<std::string> rows;
    for (const auto& [port, t] : tuples) {
      rows.push_back(std::to_string(port) + ":" + t.ToString());
    }
    return rows;
  }
};

void BindSink(IngestDelivery* sink, Collected* out) {
  sink->Bind(
      [out](size_t port, const Tuple& t) {
        out->tuples.emplace_back(port, t);
        return Status::OK();
      },
      [out](size_t port, const TupleBatch& batch) {
        for (const Tuple& t : batch.tuples()) {
          out->tuples.emplace_back(port, t);
        }
        return Status::OK();
      },
      [out](Timestamp now) {
        out->heartbeats.push_back(now);
        return Status::OK();
      });
}

// ---------------------------------------------------------------------------
// ReorderStage
// ---------------------------------------------------------------------------

TEST(ReorderStageTest, ReordersWithinBound) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  ReorderStage stage(100);
  stage.set_next(&sink);

  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1000)).ok());
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "c", 1300)).ok());
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "b", 1250)).ok());  // within bound
  ASSERT_TRUE(stage.OnHeartbeat(2000).ok());

  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_EQ(out.tuples[0].second.ts(), 1000);
  EXPECT_EQ(out.tuples[1].second.ts(), 1250);
  EXPECT_EQ(out.tuples[2].second.ts(), 1300);
  EXPECT_EQ(stage.late_dropped(), 0u);
  EXPECT_EQ(stage.released(), 3u);
  EXPECT_EQ(stage.max_disorder_us(), 50);
}

TEST(ReorderStageTest, EventExactlyAtBoundIsAccepted) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  ReorderStage stage(100);
  stage.set_next(&sink);

  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1000)).ok());
  // Displaced by exactly the bound: 1000 - 100 = 900 == effective
  // frontier, still accepted.
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "b", 900)).ok());
  // One microsecond later: dropped.
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "c", 899)).ok());
  ASSERT_TRUE(stage.OnHeartbeat(2000).ok());

  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_EQ(out.tuples[0].second.ts(), 900);
  EXPECT_EQ(out.tuples[1].second.ts(), 1000);
  EXPECT_EQ(stage.late_dropped(), 1u);
  EXPECT_EQ(stage.max_disorder_us(), 101);
}

TEST(ReorderStageTest, LateHandlerReceivesDrops) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  ReorderStage stage(10);
  stage.set_next(&sink);
  std::vector<std::pair<size_t, Timestamp>> late;
  stage.set_late_handler([&](size_t port, const Tuple& t) {
    late.emplace_back(port, t.ts());
    return Status::OK();
  });

  ASSERT_TRUE(stage.OnTuple(3, Read("r", "a", 1000)).ok());
  ASSERT_TRUE(stage.OnTuple(3, Read("r", "b", 500)).ok());
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].first, 3u);
  EXPECT_EQ(late[0].second, 500);
  EXPECT_EQ(stage.late_dropped(), 1u);
}

TEST(ReorderStageTest, HeartbeatForwardsHeldBackFrontier) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  ReorderStage stage(100);
  stage.set_next(&sink);

  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1000)).ok());
  ASSERT_TRUE(stage.OnHeartbeat(1500).ok());
  // Downstream hears 1500 - 100: an arrival at 1400 is still possible.
  ASSERT_EQ(out.heartbeats.size(), 1u);
  EXPECT_EQ(out.heartbeats[0], 1400);
  // Stale tick does not move the output heartbeat backwards.
  ASSERT_TRUE(stage.OnHeartbeat(1400).ok());
  EXPECT_EQ(out.heartbeats.size(), 1u);
}

TEST(ReorderStageTest, BatchAndTupleDropsAgree) {
  // The late check uses the running effective frontier in both paths: a
  // batch carrying (2000, 500) must drop 500 exactly as two OnTuple
  // calls would.
  for (const bool batched : {false, true}) {
    Collected out;
    IngestDelivery sink;
    BindSink(&sink, &out);
    ReorderStage stage(100);
    stage.set_next(&sink);
    if (batched) {
      TupleBatch batch;
      batch.Add(Read("r", "a", 2000));
      batch.Add(Read("r", "late", 500));
      ASSERT_TRUE(stage.OnBatch(0, batch).ok());
    } else {
      ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 2000)).ok());
      ASSERT_TRUE(stage.OnTuple(0, Read("r", "late", 500)).ok());
    }
    EXPECT_EQ(stage.late_dropped(), 1u) << "batched=" << batched;
  }
}

TEST(ReorderStageTest, StateRoundTripsMidBuffer) {
  Collected out_a;
  IngestDelivery sink_a;
  BindSink(&sink_a, &out_a);
  ReorderStage a(100);
  a.set_next(&sink_a);
  ASSERT_TRUE(a.OnTuple(0, Read("r", "x", 1000)).ok());
  ASSERT_TRUE(a.OnTuple(1, Read("r", "y", 950)).ok());
  ASSERT_EQ(a.depth(), 2u);

  BinaryEncoder enc;
  ASSERT_TRUE(a.SaveState(&enc).ok());

  Collected out_b;
  IngestDelivery sink_b;
  BindSink(&sink_b, &out_b);
  ReorderStage b(100);
  b.set_next(&sink_b);
  BinaryDecoder dec(enc.buffer());
  ASSERT_TRUE(b.RestoreState(&dec).ok());
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_EQ(b.depth(), 2u);
  EXPECT_EQ(b.max_seen(), 1000);

  // Both instances release the identical sequence from here on.
  ASSERT_TRUE(a.OnHeartbeat(5000).ok());
  ASSERT_TRUE(b.OnHeartbeat(5000).ok());
  EXPECT_EQ(out_a.Rows(), out_b.Rows());
  ASSERT_EQ(out_b.tuples.size(), 2u);
  EXPECT_EQ(out_b.tuples[0].first, 1u);  // port survives the round trip
}

// ---------------------------------------------------------------------------
// CleaningStage
// ---------------------------------------------------------------------------

IngestOptions CleanOptions(Duration window, int64_t min_count,
                           Duration horizon = 0, Duration period = 0) {
  IngestOptions o;
  o.smoothing_window = window;
  o.min_read_count = min_count;
  o.interpolation_horizon = horizon;
  o.interpolation_period = period;
  return o;
}

TEST(CleaningStageTest, AllDuplicateBurstCollapsesToAnchor) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  CleaningStage stage(CleanOptions(1000, 1));
  stage.set_next(&sink);

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1000 + i * 10)).ok());
  }
  ASSERT_TRUE(stage.OnHeartbeat(10000).ok());
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].second.ts(), 1000);  // anchor read
  EXPECT_EQ(stage.dups_suppressed(), 49u);
  EXPECT_EQ(stage.emitted(), 1u);
}

TEST(CleaningStageTest, SpuriousFilteredByMinCount) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  CleaningStage stage(CleanOptions(1000, 2));
  stage.set_next(&sink);

  // "a" is read twice (believed), "ghost" once (filtered).
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1000)).ok());
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "ghost", 1100)).ok());
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1200)).ok());
  ASSERT_TRUE(stage.OnHeartbeat(10000).ok());

  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].second.value(1).ToString(), "a");
  EXPECT_EQ(stage.spurious_filtered(), 1u);
  EXPECT_EQ(stage.dups_suppressed(), 1u);
}

TEST(CleaningStageTest, SmoothingWindowOfOne) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  CleaningStage stage(CleanOptions(1, 1));
  stage.set_next(&sink);

  // Window [anchor, anchor+1]: 1000 and 1001 group, 1002 starts fresh.
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1000)).ok());
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1001)).ok());
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1002)).ok());
  ASSERT_TRUE(stage.OnHeartbeat(10000).ok());

  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_EQ(out.tuples[0].second.ts(), 1000);
  EXPECT_EQ(out.tuples[1].second.ts(), 1002);
  EXPECT_EQ(stage.dups_suppressed(), 1u);
}

TEST(CleaningStageTest, InterpolatesMissedReadsWithProvenance) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  // Fixed 100 us period, horizon 1 ms: a 300 us gap gains two fills.
  CleaningStage stage(CleanOptions(10, 1, 1000, 100));
  stage.set_next(&sink);

  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1000)).ok());
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1300)).ok());
  ASSERT_TRUE(stage.OnHeartbeat(100000).ok());

  ASSERT_EQ(out.tuples.size(), 4u);
  EXPECT_EQ(out.tuples[0].second.ts(), 1000);
  EXPECT_FALSE(out.tuples[0].second.synthesized());
  EXPECT_EQ(out.tuples[1].second.ts(), 1100);
  EXPECT_TRUE(out.tuples[1].second.synthesized());
  EXPECT_EQ(out.tuples[2].second.ts(), 1200);
  EXPECT_TRUE(out.tuples[2].second.synthesized());
  // The mirrored event-time column shifts with the tuple timestamp.
  EXPECT_EQ(out.tuples[1].second.value(2).time_value(), 1100);
  EXPECT_EQ(out.tuples[3].second.ts(), 1300);
  EXPECT_FALSE(out.tuples[3].second.synthesized());
  EXPECT_EQ(stage.interpolated(), 2u);
}

TEST(CleaningStageTest, NoInterpolationBeyondHorizon) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  CleaningStage stage(CleanOptions(10, 1, 1000, 100));
  stage.set_next(&sink);

  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 1000)).ok());
  ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", 5000)).ok());  // gap > horizon
  ASSERT_TRUE(stage.OnHeartbeat(100000).ok());
  EXPECT_EQ(stage.interpolated(), 0u);
  EXPECT_EQ(out.tuples.size(), 2u);
}

TEST(CleaningStageTest, OutputStaysSortedAcrossKeys) {
  Collected out;
  IngestDelivery sink;
  BindSink(&sink, &out);
  CleaningStage stage(CleanOptions(100, 1, 500, 50));
  stage.set_next(&sink);

  // Interleaved keys with interpolation: emissions must still come out
  // in timestamp order (the hold-back buffer's whole purpose).
  for (Timestamp ts = 1000; ts < 3000; ts += 130) {
    ASSERT_TRUE(stage.OnTuple(0, Read("r", "a", ts)).ok());
    ASSERT_TRUE(stage.OnTuple(0, Read("r", "b", ts + 7)).ok());
  }
  ASSERT_TRUE(stage.OnHeartbeat(100000).ok());
  ASSERT_GT(out.tuples.size(), 0u);
  for (size_t i = 1; i < out.tuples.size(); ++i) {
    EXPECT_LE(out.tuples[i - 1].second.ts(), out.tuples[i].second.ts());
  }
  EXPECT_GT(stage.interpolated(), 0u);  // 130 us gaps, 50 us period
}

TEST(CleaningStageTest, StateRoundTripsMidGroups) {
  const IngestOptions options = CleanOptions(1000, 2, 5000, 100);
  Collected out_a;
  IngestDelivery sink_a;
  BindSink(&sink_a, &out_a);
  CleaningStage a(options);
  a.set_next(&sink_a);
  ASSERT_TRUE(a.OnTuple(0, Read("r", "x", 1000)).ok());
  ASSERT_TRUE(a.OnTuple(0, Read("r", "x", 1100)).ok());
  ASSERT_TRUE(a.OnTuple(1, Read("r", "y", 1500)).ok());
  ASSERT_GT(a.open_groups(), 0u);

  BinaryEncoder enc;
  ASSERT_TRUE(a.SaveState(&enc).ok());
  Collected out_b;
  IngestDelivery sink_b;
  BindSink(&sink_b, &out_b);
  CleaningStage b(options);
  b.set_next(&sink_b);
  BinaryDecoder dec(enc.buffer());
  ASSERT_TRUE(b.RestoreState(&dec).ok());
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_EQ(b.open_groups(), a.open_groups());

  ASSERT_TRUE(a.OnHeartbeat(100000).ok());
  ASSERT_TRUE(b.OnHeartbeat(100000).ok());
  EXPECT_EQ(out_a.Rows(), out_b.Rows());
}

// ---------------------------------------------------------------------------
// Options and environment validation
// ---------------------------------------------------------------------------

class IngestEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* var :
         {kIngestLatenessEnvVar, kIngestSmoothingEnvVar, kIngestMinCountEnvVar,
          kIngestInterpHorizonEnvVar, kIngestInterpPeriodEnvVar,
          kIngestDeclaredDisorderEnvVar}) {
      ::unsetenv(var);
    }
  }
};

TEST_F(IngestEnvTest, EnvOverridesConfigured) {
  ::setenv(kIngestLatenessEnvVar, "2500", 1);
  ::setenv(kIngestSmoothingEnvVar, "800", 1);
  ::setenv(kIngestMinCountEnvVar, "3", 1);
  auto resolved = ResolveIngestOptions(IngestOptions{});
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(resolved->lateness_bound, 2500);
  EXPECT_EQ(resolved->smoothing_window, 800);
  EXPECT_EQ(resolved->min_read_count, 3);
  EXPECT_TRUE(resolved->enabled());
}

TEST_F(IngestEnvTest, MalformedEnvIsAnError) {
  ::setenv(kIngestLatenessEnvVar, "soon", 1);
  EXPECT_FALSE(ResolveIngestOptions(IngestOptions{}).ok());
}

TEST_F(IngestEnvTest, OutOfRangeEnvIsAnError) {
  ::setenv(kIngestLatenessEnvVar, "-5", 1);
  EXPECT_FALSE(ResolveIngestOptions(IngestOptions{}).ok());
  ::setenv(kIngestLatenessEnvVar, "999999999999999", 1);
  EXPECT_FALSE(ResolveIngestOptions(IngestOptions{}).ok());
}

TEST_F(IngestEnvTest, ValidateRejectsBadCombinations) {
  IngestOptions o;
  o.min_read_count = 0;
  EXPECT_FALSE(ValidateIngestOptions(o).ok());
  o = IngestOptions{};
  o.interpolation_horizon = 100;  // interpolation without smoothing
  EXPECT_FALSE(ValidateIngestOptions(o).ok());
  o = IngestOptions{};
  o.smoothing_window = kMaxIngestDurationUs + 1;
  EXPECT_FALSE(ValidateIngestOptions(o).ok());
  o = IngestOptions{};
  o.lateness_bound = 1000;
  o.smoothing_window = 500;
  o.min_read_count = 2;
  EXPECT_TRUE(ValidateIngestOptions(o).ok());
}

// ---------------------------------------------------------------------------
// Pipeline composition
// ---------------------------------------------------------------------------

TEST(IngestPipelineTest, PortsAssignedInFirstOfferOrder) {
  IngestOptions options;
  options.lateness_bound = 100;
  IngestPipeline pipeline(options);
  EXPECT_EQ(pipeline.PortFor("readings"), 0u);
  EXPECT_EQ(pipeline.PortFor("c1"), 1u);
  EXPECT_EQ(pipeline.PortFor("readings"), 0u);
  EXPECT_EQ(pipeline.port_name(1), "c1");
  EXPECT_EQ(pipeline.num_ports(), 2u);
}

TEST(IngestPipelineTest, ReorderFeedsCleaningFeedsDelivery) {
  IngestOptions options;
  options.lateness_bound = 100;
  options.smoothing_window = 1000;
  options.min_read_count = 2;
  IngestPipeline pipeline(options);
  Collected out;
  pipeline.BindDelivery(
      [&](size_t port, const Tuple& t) {
        out.tuples.emplace_back(port, t);
        return Status::OK();
      },
      [&](size_t port, const TupleBatch& batch) {
        for (const Tuple& t : batch.tuples()) out.tuples.emplace_back(port, t);
        return Status::OK();
      },
      [&](Timestamp now) {
        out.heartbeats.push_back(now);
        return Status::OK();
      });

  const size_t port = pipeline.PortFor("readings");
  // Disordered duplicates of "a" plus a single "ghost".
  ASSERT_TRUE(pipeline.Offer(port, Read("r", "a", 1050)).ok());
  ASSERT_TRUE(pipeline.Offer(port, Read("r", "a", 1000)).ok());
  ASSERT_TRUE(pipeline.Offer(port, Read("r", "ghost", 1100)).ok());
  EXPECT_GT(pipeline.buffered(), 0u);
  ASSERT_TRUE(pipeline.Heartbeat(100000).ok());

  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].second.ts(), 1000);  // reordered anchor
  ASSERT_EQ(pipeline.cleaning()->spurious_filtered(), 1u);
  EXPECT_FALSE(out.heartbeats.empty());
  EXPECT_EQ(pipeline.buffered(), 0u);

  MetricsSnapshot snap;
  pipeline.AppendMetrics(&snap);
  EXPECT_EQ(snap.gauges.at("ingest.enabled"), 1);
  EXPECT_EQ(snap.counters.at("ingest.clean.spurious_filtered"), 1u);
  EXPECT_NE(pipeline.ExplainLine().find("reorder[lateness_us=100"),
            std::string::npos);
}

}  // namespace
}  // namespace eslev
