// Snapshot executor: multi-source joins, correlated EXISTS, aggregates,
// ORDER BY and LIMIT — the ad-hoc query surface of §2.1.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace eslev {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.default_retention = Hours(1);
    engine_ = std::make_unique<Engine>(options);
    ASSERT_TRUE(engine_
                    ->ExecuteScript(R"sql(
      CREATE STREAM sightings(patient, loc, seen_time);
      CREATE TABLE wards(ward, floor INT);
    )sql")
                    .ok());
    Table* wards = engine_->FindTable("wards");
    ASSERT_TRUE(
        wards->Insert({Value::String("icu"), Value::Int(3)}).ok());
    ASSERT_TRUE(
        wards->Insert({Value::String("ward-1"), Value::Int(1)}).ok());
    ASSERT_TRUE(
        wards->Insert({Value::String("radiology"), Value::Int(0)}).ok());

    Push("alice", "ward-1", Minutes(1));
    Push("bob", "icu", Minutes(2));
    Push("alice", "radiology", Minutes(3));
    Push("carol", "icu", Minutes(4));
    Push("alice", "icu", Minutes(5));
  }

  void Push(const std::string& p, const std::string& loc, Timestamp ts) {
    ASSERT_TRUE(engine_
                    ->Push("sightings",
                           {Value::String(p), Value::String(loc),
                            Value::Time(ts)},
                           ts)
                    .ok());
  }

  std::vector<Tuple> Run(const std::string& sql) {
    auto r = engine_->ExecuteSnapshot(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status();
    return r.ok() ? *r : std::vector<Tuple>{};
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(SnapshotTest, OrderByTimestampDescending) {
  auto rows = Run(
      "SELECT loc, seen_time FROM sightings WHERE patient = 'alice' "
      "ORDER BY seen_time DESC");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].value(0).string_value(), "icu");
  EXPECT_EQ(rows[1].value(0).string_value(), "radiology");
  EXPECT_EQ(rows[2].value(0).string_value(), "ward-1");
}

TEST_F(SnapshotTest, LimitCapsOutput) {
  auto rows = Run(
      "SELECT loc FROM sightings WHERE patient = 'alice' "
      "ORDER BY seen_time DESC LIMIT 1");
  ASSERT_EQ(rows.size(), 1u);
  // "Where is Alice right now?" — the paper's physician query.
  EXPECT_EQ(rows[0].value(0).string_value(), "icu");
}

TEST_F(SnapshotTest, MultiKeyOrdering) {
  auto rows = Run("SELECT patient, loc FROM sightings "
                  "ORDER BY patient ASC, seen_time DESC");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].value(0).string_value(), "alice");
  EXPECT_EQ(rows[0].value(1).string_value(), "icu");  // alice's latest
  EXPECT_EQ(rows[3].value(0).string_value(), "bob");
  EXPECT_EQ(rows[4].value(0).string_value(), "carol");
}

TEST_F(SnapshotTest, StreamTableJoinSnapshot) {
  auto rows = Run(
      "SELECT s.patient, s.loc, w.floor FROM sightings AS s, wards AS w "
      "WHERE w.ward = s.loc AND s.patient = 'bob'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].value(2).int_value(), 3);
}

TEST_F(SnapshotTest, CorrelatedNotExistsLatestSighting) {
  // Patients' latest sighting: no later sighting of the same patient.
  auto rows = Run(R"sql(
    SELECT s1.patient, s1.loc FROM sightings AS s1
    WHERE NOT EXISTS
      (SELECT * FROM sightings AS s2
       WHERE s2.patient = s1.patient AND s2.seen_time > s1.seen_time)
    ORDER BY patient
  )sql");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].value(0).string_value(), "alice");
  EXPECT_EQ(rows[0].value(1).string_value(), "icu");
  EXPECT_EQ(rows[1].value(0).string_value(), "bob");
  EXPECT_EQ(rows[2].value(0).string_value(), "carol");
}

TEST_F(SnapshotTest, GroupByWithOrderAndLimit) {
  auto rows = Run(
      "SELECT loc, count(patient) FROM sightings "
      "GROUP BY loc ORDER BY count(patient) DESC, loc LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].value(0).string_value(), "icu");
  EXPECT_EQ(rows[0].value(1).int_value(), 3);
}

TEST_F(SnapshotTest, AggregateOverEmptyInput) {
  auto rows = Run("SELECT count(patient) FROM sightings WHERE loc = 'x'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].value(0).int_value(), 0);
}

TEST_F(SnapshotTest, WindowedStreamSource) {
  // Only sightings from the last 90 seconds of stream time.
  auto rows = Run(
      "SELECT patient FROM TABLE(sightings OVER "
      "(RANGE 90 SECONDS PRECEDING CURRENT)) AS s");
  ASSERT_EQ(rows.size(), 2u);  // minutes 4 and 5
}

TEST_F(SnapshotTest, ContinuousQueriesRejectOrderBy) {
  EXPECT_TRUE(engine_
                  ->RegisterQuery(
                      "SELECT patient FROM sightings ORDER BY patient")
                  .status()
                  .IsNotImplemented());
  EXPECT_TRUE(engine_->RegisterQuery("SELECT patient FROM sightings LIMIT 5")
                  .status()
                  .IsNotImplemented());
}

}  // namespace
}  // namespace eslev
