// Batch-mode differential sweep (DESIGN.md §13 acceptance): on seeded
// random traces, the engine must emit byte-identical output at every
// batch size — 1 (tuple-at-a-time), 7, 64, 1024 — in the same order,
// across dedup, SEQ pairing modes, windows, and trailing stars; the
// same holds for ShardedEngine routing-layer batching at 1/2/4 shards,
// and for a crash with a partially filled batch (the WAL is written
// before buffering, so recovery regenerates exactly the undelivered
// tail).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "recovery/checkpoint.h"

namespace eslev {
namespace {

const size_t kBatchSizes[] = {1, 7, 64, 1024};

struct Event {
  std::string stream;
  std::string tag;
  Timestamp ts;
};

std::vector<Event> MakeTrace(uint32_t seed, size_t num_events,
                             const std::vector<std::string>& streams,
                             int num_tags) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> pick_stream(0, streams.size() - 1);
  std::uniform_int_distribution<int> pick_tag(0, num_tags - 1);
  std::uniform_int_distribution<Duration> step(Milliseconds(50), Seconds(2));
  std::vector<Event> events;
  Timestamp now = Seconds(1);
  for (size_t i = 0; i < num_events; ++i) {
    events.push_back({streams[pick_stream(rng)],
                      "tag" + std::to_string(pick_tag(rng)), now});
    now += step(rng);
  }
  return events;
}

struct Scenario {
  std::string ddl;
  std::string query;
  std::vector<std::string> streams;
  std::vector<std::string> single_shard_streams;  // empty: partitioned
};

EngineOptions BatchOptions(size_t batch_size) {
  EngineOptions options;
  options.batch_size = batch_size;
  options.honor_batch_env = false;  // the sweep matrix is explicit
  return options;
}

void PushEvent(Engine& engine, const Event& e) {
  ASSERT_TRUE(engine
                  .Push(e.stream,
                        {Value::String("r"), Value::String(e.tag),
                         Value::Time(e.ts)},
                        e.ts)
                  .ok());
}

// Unsorted: single-engine equivalence is exact, including emission order.
std::vector<std::string> RunSingle(const Scenario& scenario,
                                   const std::vector<Event>& events,
                                   size_t batch_size) {
  Engine engine(BatchOptions(batch_size));
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> rows;
  EXPECT_TRUE(
      engine
          .Subscribe(q->output_stream,
                     [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  for (const Event& e : events) PushEvent(engine, e);
  EXPECT_TRUE(engine.AdvanceTime(events.back().ts + Minutes(10)).ok());
  return rows;
}

std::vector<std::string> RunSharded(const Scenario& scenario,
                                    const std::vector<Event>& events,
                                    size_t num_shards, size_t batch_size) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.engine = BatchOptions(batch_size);
  ShardedEngine engine(options);
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status();
  for (const std::string& s : scenario.single_shard_streams) {
    EXPECT_TRUE(engine.SetSingleShard(s).ok());
  }
  std::vector<std::string> rows;
  EXPECT_TRUE(
      engine
          .Subscribe(q->output_stream,
                     [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  for (const Event& e : events) {
    EXPECT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
  }
  EXPECT_TRUE(engine.AdvanceTime(events.back().ts + Minutes(10)).ok());
  EXPECT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  std::sort(rows.begin(), rows.end());
  return rows;
}

void ExpectBatchEquivalence(const Scenario& scenario, uint32_t seed,
                            size_t num_events, int num_tags) {
  const auto events = MakeTrace(seed, num_events, scenario.streams, num_tags);
  const auto reference = RunSingle(scenario, events, 1);
  for (size_t batch_size : kBatchSizes) {
    if (batch_size == 1) continue;
    EXPECT_EQ(RunSingle(scenario, events, batch_size), reference)
        << "seed " << seed << " batch_size " << batch_size;
  }
  auto sorted_reference = reference;
  std::sort(sorted_reference.begin(), sorted_reference.end());
  std::mt19937 rng(seed * 2246822519u + 3);
  for (size_t shards : {2u, 4u}) {
    // One randomized batch size per shard count keeps the sweep cheap
    // while still crossing sharding with batching on every run.
    const size_t batch_size =
        kBatchSizes[std::uniform_int_distribution<size_t>(0, 3)(rng)];
    EXPECT_EQ(RunSharded(scenario, events, shards, batch_size),
              sorted_reference)
        << "seed " << seed << " shards " << shards << " batch_size "
        << batch_size;
  }
}

constexpr char kSeqDdl[] = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
)sql";

Scenario SeqScenario(const std::string& mode_clause,
                     const std::string& window_clause) {
  Scenario s;
  s.ddl = kSeqDdl;
  s.query = "SELECT C3.tagid, C1.tagtime, C3.tagtime FROM C1, C2, C3 "
            "WHERE SEQ(C1, C2, C3)" +
            window_clause + mode_clause +
            " AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";
  s.streams = {"C1", "C2", "C3"};
  return s;
}

Scenario DedupScenario() {
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned(reader_id, tag_id, read_time);
  )sql";
  s.query = R"sql(
    INSERT INTO cleaned
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 2 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)
  )sql";
  s.streams = {"readings"};
  return s;
}

Scenario StarScenario() {
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql";
  s.query = R"sql(
    SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
      AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
      AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
  )sql";
  s.streams = {"R1", "R2"};
  s.single_shard_streams = s.streams;
  return s;
}

class BatchDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BatchDifferentialTest, DedupWindowedNotExists) {
  ExpectBatchEquivalence(DedupScenario(), GetParam() ^ 0x85ebca6bu, 300, 5);
}

TEST_P(BatchDifferentialTest, SeqAcrossPairingModes) {
  const uint32_t seed = GetParam();
  int i = 0;
  for (const char* mode :
       {"", " MODE RECENT", " MODE CHRONICLE", " MODE CONSECUTIVE"}) {
    Scenario s = SeqScenario(mode, "");
    if (std::string(mode) == " MODE CONSECUTIVE") {
      s.single_shard_streams = s.streams;
    }
    ExpectBatchEquivalence(s, seed * 31u + static_cast<uint32_t>(i++), 240, 5);
  }
}

TEST_P(BatchDifferentialTest, WindowedSeq) {
  ExpectBatchEquivalence(
      SeqScenario(" MODE CHRONICLE", " OVER [30 SECONDS PRECEDING C3]"),
      GetParam() + 7, 240, 5);
}

TEST_P(BatchDifferentialTest, TrailingStarGroups) {
  ExpectBatchEquivalence(StarScenario(), GetParam() + 101, 200, 4);
}

// ---- crash with a partially filled batch --------------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "batch_diff_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Crash mid-batch: the engine dies with tuples sitting in the pending
// batch — WAL-appended (durability precedes buffering) but with none of
// their emissions delivered. The consumer passes the count of emissions
// it durably received as `deliver_after`, so recovery re-delivers
// exactly the lost tail; the concatenation must equal the uninterrupted
// tuple-mode run, byte for byte.
std::vector<std::string> RunKilledMidBatch(const Scenario& scenario,
                                           const std::vector<Event>& events,
                                           size_t batch_size, size_t ckpt_at,
                                           size_t kill_at,
                                           size_t recover_batch_size,
                                           const std::string& dir) {
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;  // every append durable at the kill
  std::vector<std::string> rows;
  std::string output_stream;
  {
    Engine a(BatchOptions(batch_size));
    EXPECT_TRUE(a.ExecuteScript(scenario.ddl).ok());
    auto qa = a.RegisterQuery(scenario.query);
    EXPECT_TRUE(qa.ok()) << qa.status();
    output_stream = qa->output_stream;
    EXPECT_TRUE(
        a.Subscribe(qa->output_stream,
                    [&](const Tuple& t) { rows.push_back(t.ToString()); })
            .ok());
    EXPECT_TRUE(a.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    for (size_t i = 0; i < ckpt_at; ++i) PushEvent(a, events[i]);
    EXPECT_TRUE(a.Checkpoint(dir).ok());
    for (size_t i = ckpt_at; i < kill_at; ++i) PushEvent(a, events[i]);
    // No flush: with batch_size > 1 the engine usually dies holding a
    // partial batch here.
  }  // crash

  ReplayOptions replay;
  replay.deliver_after[output_stream] = rows.size();
  Engine b(BatchOptions(recover_batch_size));
  EXPECT_TRUE(b.ExecuteScript(scenario.ddl).ok());
  auto qb = b.RegisterQuery(scenario.query);
  EXPECT_TRUE(qb.ok()) << qb.status();
  EXPECT_TRUE(
      b.Subscribe(qb->output_stream,
                  [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  Status recovered = b.RecoverFrom(dir, replay);
  EXPECT_TRUE(recovered.ok()) << recovered;
  for (size_t i = kill_at; i < events.size(); ++i) PushEvent(b, events[i]);
  EXPECT_TRUE(b.AdvanceTime(events.back().ts + Minutes(10)).ok());
  return rows;
}

TEST_P(BatchDifferentialTest, KillRecoverMidBatch) {
  const uint32_t seed = GetParam();
  const Scenario scenario = SeqScenario(" MODE CHRONICLE", "");
  const auto events = MakeTrace(seed + 59, 200, scenario.streams, 4);
  const auto reference = RunSingle(scenario, events, 1);
  std::mt19937 rng(seed * 40503u + 11);
  for (int round = 0; round < 3; ++round) {
    const size_t batch_size =
        kBatchSizes[std::uniform_int_distribution<size_t>(1, 3)(rng)];
    const size_t recover_batch_size =
        kBatchSizes[std::uniform_int_distribution<size_t>(0, 3)(rng)];
    const size_t ckpt_at =
        std::uniform_int_distribution<size_t>(0, events.size() - 1)(rng);
    const size_t kill_at =
        std::uniform_int_distribution<size_t>(ckpt_at, events.size())(rng);
    const std::string dir = FreshDir("kill_s" + std::to_string(seed) + "_r" +
                                     std::to_string(round));
    const auto killed =
        RunKilledMidBatch(scenario, events, batch_size, ckpt_at, kill_at,
                          recover_batch_size, dir);
    EXPECT_EQ(killed, reference)
        << "seed " << seed << " batch " << batch_size << " recover_batch "
        << recover_batch_size << " ckpt_at " << ckpt_at << " kill_at "
        << kill_at;
    std::filesystem::remove_all(dir);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferentialTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace eslev
