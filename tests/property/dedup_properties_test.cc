// Property sweeps for Example 1's duplicate elimination over randomized
// workloads: the output must be duplicate-free at the threshold, must
// cover every input reading, and must be a subset of the input.

#include <gtest/gtest.h>

#include <map>

#include "core/engine.h"
#include "rfid/workloads.h"

namespace eslev {
namespace {

struct DedupParam {
  uint32_t seed;
  size_t duplicates;
  int spread_ms;
};

class DedupPropertyTest : public ::testing::TestWithParam<DedupParam> {};

TEST_P(DedupPropertyTest, Invariants) {
  const auto& p = GetParam();
  rfid::DuplicateWorkloadOptions options;
  options.seed = p.seed;
  options.num_distinct = 300;
  options.duplicates_per_read = p.duplicates;
  options.duplicate_spread = Milliseconds(p.spread_ms);
  auto workload = rfid::MakeDuplicateWorkload(options);

  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned(reader_id, tag_id, read_time);
    INSERT INTO cleaned
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
  )sql")
                  .ok());

  std::vector<Tuple> output;
  ASSERT_TRUE(engine.Subscribe("cleaned", [&](const Tuple& t) {
                      output.push_back(t);
                    }).ok());
  std::multiset<std::tuple<std::string, std::string, Timestamp>> inputs;
  for (const auto& e : workload.events) {
    inputs.insert({e.tuple.value(0).string_value(),
                   e.tuple.value(1).string_value(), e.tuple.ts()});
    ASSERT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
  }
  // Deliver any pending partial batch before reading the output (no-op
  // in tuple-at-a-time mode; see ESLEV_BATCH_SIZE).
  ASSERT_TRUE(engine.FlushBatches().ok());

  // P1: no two output readings with the same key within the threshold.
  std::map<std::pair<std::string, std::string>, Timestamp> last_kept;
  for (const Tuple& t : output) {
    auto key = std::make_pair(t.value(0).string_value(),
                              t.value(1).string_value());
    auto it = last_kept.find(key);
    if (it != last_kept.end()) {
      EXPECT_GT(t.ts() - it->second, Seconds(1))
          << "duplicate survived: " << t.ToString();
    }
    last_kept[key] = t.ts();
  }

  // P2: the output is a subset of the input.
  for (const Tuple& t : output) {
    EXPECT_TRUE(inputs.count({t.value(0).string_value(),
                              t.value(1).string_value(), t.ts()}) > 0)
        << "output tuple not in input: " << t.ToString();
  }

  // P3: every input reading is represented — some output with the same
  // key exists within the threshold at or before it.
  std::map<std::pair<std::string, std::string>, std::vector<Timestamp>>
      kept_times;
  for (const Tuple& t : output) {
    kept_times[{t.value(0).string_value(), t.value(1).string_value()}]
        .push_back(t.ts());
  }
  for (const auto& e : workload.events) {
    auto key = std::make_pair(e.tuple.value(0).string_value(),
                              e.tuple.value(1).string_value());
    const auto& times = kept_times[key];
    bool covered = false;
    for (Timestamp kept : times) {
      if (kept <= e.tuple.ts() && e.tuple.ts() - kept <= Seconds(1)) {
        covered = true;
        break;
      }
    }
    // A duplicate may also be covered transitively through a chain of
    // suppressed readings; with the generator's spread <= 1 s the direct
    // check suffices.
    EXPECT_TRUE(covered) << "input reading not represented: "
                         << e.tuple.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DedupPropertyTest,
    ::testing::Values(DedupParam{11, 0, 500}, DedupParam{12, 1, 300},
                      DedupParam{13, 2, 800}, DedupParam{14, 5, 999},
                      DedupParam{15, 8, 100}, DedupParam{16, 3, 650}),
    [](const ::testing::TestParamInfo<DedupParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_dup" +
             std::to_string(param_info.param.duplicates) + "_spread" +
             std::to_string(param_info.param.spread_ms);
    });

}  // namespace
}  // namespace eslev
