// Cross-operator consistency sweeps for EXCEPTION_SEQ / CLEVEL_SEQ /
// SEQ-CONSECUTIVE over random traces:
//   * CLEVEL = n events   == SEQ(...) MODE CONSECUTIVE events
//     (both define "the sequence completed as an adjacent run");
//   * CLEVEL < n events   == EXCEPTION_SEQ events;
//   * every arrival drives at most a bounded number of terminals.

#include <gtest/gtest.h>

#include <random>

#include "core/engine.h"

namespace eslev {
namespace {

struct Param {
  uint32_t seed;
  size_t length;
};

class ExceptionPartitionTest : public ::testing::TestWithParam<Param> {};

TEST_P(ExceptionPartitionTest, ClevelCompletionsMatchConsecutiveSeq) {
  const auto& p = GetParam();
  std::mt19937 rng(p.seed);
  std::uniform_int_distribution<size_t> stream_dist(0, 2);

  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM A1(staffid, tagid, tagtime);
    CREATE STREAM A2(staffid, tagid, tagtime);
    CREATE STREAM A3(staffid, tagid, tagtime);
  )sql")
                  .ok());

  auto completions = engine.RegisterQuery(R"sql(
    SELECT A1.tagid FROM A1, A2, A3
    WHERE (CLEVEL_SEQ(A1, A2, A3)) = 3
  )sql");
  ASSERT_TRUE(completions.ok()) << completions.status();
  auto exceptions = engine.RegisterQuery(R"sql(
    SELECT A1.tagid FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3)
  )sql");
  ASSERT_TRUE(exceptions.ok()) << exceptions.status();
  auto consecutive = engine.RegisterQuery(R"sql(
    SELECT A1.tagid FROM A1, A2, A3
    WHERE SEQ(A1, A2, A3) MODE CONSECUTIVE
  )sql");
  ASSERT_TRUE(consecutive.ok()) << consecutive.status();

  size_t n_complete = 0, n_exception = 0, n_consecutive = 0;
  ASSERT_TRUE(engine.Subscribe(completions->output_stream,
                               [&](const Tuple&) { ++n_complete; })
                  .ok());
  ASSERT_TRUE(engine.Subscribe(exceptions->output_stream,
                               [&](const Tuple&) { ++n_exception; })
                  .ok());
  ASSERT_TRUE(engine.Subscribe(consecutive->output_stream,
                               [&](const Tuple&) { ++n_consecutive; })
                  .ok());

  for (size_t i = 0; i < p.length; ++i) {
    const size_t s = stream_dist(rng);
    const Timestamp ts = Seconds(static_cast<int64_t>(i + 1));
    ASSERT_TRUE(engine
                    .Push("A" + std::to_string(s + 1),
                          {Value::String("staff"),
                           Value::String("op" + std::to_string(s)),
                           Value::Time(ts)},
                          ts)
                    .ok());
  }
  // Deliver any pending partial batch before reading the counters (no-op
  // in tuple-at-a-time mode; see ESLEV_BATCH_SIZE).
  ASSERT_TRUE(engine.FlushBatches().ok());

  // Both definitions of "completed adjacent A1,A2,A3 run" must agree.
  EXPECT_EQ(n_complete, n_consecutive);
  // Terminals are bounded: each arrival raises at most 2 exceptions
  // (abandoned partial + unstartable incoming tuple).
  EXPECT_LE(n_exception, 2 * p.length);
  // On a uniform random trace of meaningful length something happens.
  if (p.length >= 30) {
    EXPECT_GT(n_exception + n_complete, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExceptionPartitionTest,
    ::testing::Values(Param{31, 10}, Param{32, 30}, Param{33, 60},
                      Param{34, 100}, Param{35, 200}, Param{36, 500}),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_len" +
             std::to_string(param_info.param.length);
    });

}  // namespace
}  // namespace eslev
