// Ingest differential sweep (DESIGN.md §15 acceptance): a workload that
// is disordered (within the lateness bound), duplicated, and
// spurious-injected, pushed through an ingest-enabled engine, must
// produce byte-identical output to the clean, in-order run with ingest
// disabled — across the four SEQ pairing modes, both SEQ backends,
// batch sizes {1, 7, 64}, 1/2/4 shards, and a kill/recover mid-stream
// with the reorder buffer non-empty.
//
// Noise construction (rfid::InjectNoise): every clean event gains
// exactly one identical duplicate copy (duplicate_rate 1.0, one copy),
// so with min_read_count = 2 the cleaning stage believes every real
// read and filters every once-seen ghost; arrival disorder is bounded
// by max_shift <= lateness_bound, so the reorder stage restores the
// exact clean order with zero late drops. Timestamps are made unique
// first (NormalizeUniqueTimestamps) because the reorder stage breaks
// timestamp ties by arrival order, which a disordered run cannot
// reproduce.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "recovery/checkpoint.h"
#include "rfid/workloads.h"

namespace eslev {
namespace {

using rfid::InjectNoise;
using rfid::NoiseOptions;
using rfid::NoiseStats;
using rfid::Workload;

const Duration kMaxShift = Milliseconds(400);
const Duration kSmoothing = Milliseconds(1);
const size_t kBatchSizes[] = {1, 7, 64};

struct Scenario {
  std::string ddl;
  std::string query;
  std::vector<std::string> streams;
  std::vector<std::string> single_shard_streams;  // empty: partitioned
};

// Clean trace as an rfid::Workload so the noise injector applies
// directly. Inter-arrival >= 50 ms keeps distinct same-key reads far
// outside the 1 ms smoothing window, so cleaning is an identity on the
// clean events once each is duplicated past min_read_count.
Workload MakeCleanWorkload(uint32_t seed, size_t num_events,
                           const std::vector<std::string>& streams,
                           int num_tags) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> pick_stream(0, streams.size() - 1);
  std::uniform_int_distribution<int> pick_tag(0, num_tags - 1);
  std::uniform_int_distribution<Duration> step(Milliseconds(50), Seconds(2));
  Workload w;
  Timestamp now = Seconds(1);
  for (size_t i = 0; i < num_events; ++i) {
    auto t = MakeTuple(rfid::ReaderSchema(),
                       {Value::String("r"),
                        Value::String("tag" + std::to_string(pick_tag(rng))),
                        Value::Time(now)},
                       now);
    EXPECT_TRUE(t.ok());
    w.events.push_back({streams[pick_stream(rng)], std::move(t).ValueUnsafe()});
    now += step(rng);
  }
  rfid::NormalizeUniqueTimestamps(&w);
  return w;
}

Workload MakeNoisy(const Workload& clean, uint32_t seed, NoiseStats* stats) {
  Workload noisy = clean;
  NoiseOptions noise;
  noise.max_shift = kMaxShift;
  noise.duplicate_rate = 1.0;  // every event reaches min_read_count = 2
  noise.duplicate_copies = 1;
  noise.spurious_rate = 0.25;
  noise.drop_rate = 0.0;  // byte-identity: nothing may go missing
  noise.seed = seed;
  *stats = InjectNoise(&noisy, noise);
  EXPECT_LE(stats->max_disorder, kMaxShift);
  EXPECT_GT(stats->duplicates_added, 0u);
  return noisy;
}

EngineOptions CleanOptions(size_t batch_size, SeqBackend backend) {
  EngineOptions options;
  options.batch_size = batch_size;
  options.honor_batch_env = false;
  options.seq_backend = backend;
  options.honor_ingest_env = false;  // the sweep matrix is explicit
  return options;
}

EngineOptions NoisyOptions(size_t batch_size, SeqBackend backend) {
  EngineOptions options = CleanOptions(batch_size, backend);
  options.ingest.lateness_bound = kMaxShift;
  options.ingest.smoothing_window = kSmoothing;
  options.ingest.min_read_count = 2;
  return options;
}

Timestamp LastTs(const Workload& w) {
  Timestamp last = kMinTimestamp;
  for (const auto& ev : w.events) last = std::max(last, ev.tuple.ts());
  return last;
}

void PushAll(Engine& engine, const Workload& w) {
  for (const auto& ev : w.events) {
    ASSERT_TRUE(
        engine.Push(ev.stream, ev.tuple.values(), ev.tuple.ts()).ok());
  }
}

// Exact emission order: single-engine equivalence is byte-for-byte.
std::vector<std::string> RunSingle(const Scenario& scenario,
                                   const Workload& w,
                                   const EngineOptions& options) {
  Engine engine(options);
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> rows;
  EXPECT_TRUE(
      engine
          .Subscribe(q->output_stream,
                     [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  PushAll(engine, w);
  EXPECT_TRUE(engine.AdvanceTime(LastTs(w) + Minutes(10)).ok());
  if (engine.ingest_enabled()) {
    // Bounded disorder through a covering lateness bound loses nothing.
    EXPECT_EQ(engine.ingest_pipeline()->reorder()->late_dropped(), 0u);
    EXPECT_GT(engine.ingest_pipeline()->cleaning()->dups_suppressed(), 0u);
  }
  return rows;
}

std::vector<std::string> RunSharded(const Scenario& scenario,
                                    const Workload& w, size_t num_shards,
                                    size_t batch_size, bool with_ingest) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.engine = with_ingest ? NoisyOptions(batch_size, SeqBackend::kHistory)
                               : CleanOptions(batch_size, SeqBackend::kHistory);
  ShardedEngine engine(options);
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status();
  for (const std::string& s : scenario.single_shard_streams) {
    EXPECT_TRUE(engine.SetSingleShard(s).ok());
  }
  std::vector<std::string> rows;
  EXPECT_TRUE(
      engine
          .Subscribe(q->output_stream,
                     [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  for (const auto& ev : w.events) {
    EXPECT_TRUE(
        engine.Push(ev.stream, ev.tuple.values(), ev.tuple.ts()).ok());
  }
  EXPECT_TRUE(engine.AdvanceTime(LastTs(w) + Minutes(10)).ok());
  EXPECT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  std::sort(rows.begin(), rows.end());
  return rows;
}

void ExpectIngestEquivalence(const Scenario& scenario, uint32_t seed,
                             size_t num_events, int num_tags) {
  const Workload clean =
      MakeCleanWorkload(seed, num_events, scenario.streams, num_tags);
  NoiseStats stats;
  const Workload noisy = MakeNoisy(clean, seed * 2654435761u + 1, &stats);

  const auto reference =
      RunSingle(scenario, clean, CleanOptions(1, SeqBackend::kHistory));
  for (size_t batch_size : kBatchSizes) {
    EXPECT_EQ(RunSingle(scenario, noisy,
                        NoisyOptions(batch_size, SeqBackend::kHistory)),
              reference)
        << "seed " << seed << " batch_size " << batch_size << " history";
  }
  EXPECT_EQ(RunSingle(scenario, noisy, NoisyOptions(1, SeqBackend::kNfa)),
            reference)
      << "seed " << seed << " nfa";

  auto sorted_reference = reference;
  std::sort(sorted_reference.begin(), sorted_reference.end());
  std::mt19937 rng(seed * 2246822519u + 7);
  for (size_t shards : {1u, 2u, 4u}) {
    const size_t batch_size =
        kBatchSizes[std::uniform_int_distribution<size_t>(0, 2)(rng)];
    EXPECT_EQ(RunSharded(scenario, noisy, shards, batch_size,
                         /*with_ingest=*/true),
              sorted_reference)
        << "seed " << seed << " shards " << shards << " batch_size "
        << batch_size;
  }
}

constexpr char kSeqDdl[] = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
)sql";

Scenario SeqScenario(const std::string& mode_clause) {
  Scenario s;
  s.ddl = kSeqDdl;
  s.query = "SELECT C3.tagid, C1.tagtime, C3.tagtime FROM C1, C2, C3 "
            "WHERE SEQ(C1, C2, C3)" +
            mode_clause + " AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";
  s.streams = {"C1", "C2", "C3"};
  return s;
}

Scenario DedupScenario() {
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned(reader_id, tag_id, read_time);
  )sql";
  s.query = R"sql(
    INSERT INTO cleaned
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 2 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id)
  )sql";
  s.streams = {"readings"};
  return s;
}

Scenario StarScenario() {
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql";
  s.query = R"sql(
    SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
      AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
      AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
  )sql";
  s.streams = {"R1", "R2"};
  s.single_shard_streams = s.streams;
  return s;
}

class IngestDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IngestDifferentialTest, SeqAcrossPairingModes) {
  const uint32_t seed = GetParam();
  int i = 0;
  for (const char* mode :
       {"", " MODE RECENT", " MODE CHRONICLE", " MODE CONSECUTIVE"}) {
    Scenario s = SeqScenario(mode);
    if (std::string(mode) == " MODE CONSECUTIVE") {
      s.single_shard_streams = s.streams;
    }
    ExpectIngestEquivalence(s, seed * 31u + static_cast<uint32_t>(i++), 160, 5);
  }
}

TEST_P(IngestDifferentialTest, DedupWindowedNotExists) {
  ExpectIngestEquivalence(DedupScenario(), GetParam() ^ 0x85ebca6bu, 200, 5);
}

TEST_P(IngestDifferentialTest, TrailingStarGroups) {
  ExpectIngestEquivalence(StarScenario(), GetParam() + 101, 160, 4);
}

// ---- kill/recover with a non-empty reorder buffer -----------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ingest_diff_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Crash with events buffered inside the ingest chain: raw arrivals are
// WAL-logged before they enter the pipeline, so recovery re-offers them
// through the restored ingest state and re-derives the identical
// release sequence. `deliver_after` carries the consumer's durable
// emission count, so the concatenation of pre-crash and post-recovery
// deliveries must equal the clean uninterrupted run byte for byte.
std::vector<std::string> RunKilledMidIngest(const Scenario& scenario,
                                            const Workload& noisy,
                                            size_t batch_size, size_t ckpt_at,
                                            size_t kill_at,
                                            const std::string& dir) {
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;  // every append durable at the kill
  std::vector<std::string> rows;
  std::string output_stream;
  {
    Engine a(NoisyOptions(batch_size, SeqBackend::kHistory));
    EXPECT_TRUE(a.ExecuteScript(scenario.ddl).ok());
    auto qa = a.RegisterQuery(scenario.query);
    EXPECT_TRUE(qa.ok()) << qa.status();
    output_stream = qa->output_stream;
    EXPECT_TRUE(
        a.Subscribe(qa->output_stream,
                    [&](const Tuple& t) { rows.push_back(t.ToString()); })
            .ok());
    EXPECT_TRUE(a.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    for (size_t i = 0; i < ckpt_at; ++i) {
      const auto& ev = noisy.events[i];
      EXPECT_TRUE(a.Push(ev.stream, ev.tuple.values(), ev.tuple.ts()).ok());
    }
    EXPECT_TRUE(a.Checkpoint(dir).ok());
    for (size_t i = ckpt_at; i < kill_at; ++i) {
      const auto& ev = noisy.events[i];
      EXPECT_TRUE(a.Push(ev.stream, ev.tuple.values(), ev.tuple.ts()).ok());
    }
    // The kill target of this suite: the engine dies while the reorder
    // stage still holds undelivered events (any pushed event within the
    // lateness bound of the frontier is held back, so after at least
    // one push the buffer is never empty).
    if (kill_at > 0) {
      EXPECT_GT(a.Metrics().gauges.at("ingest.reorder.depth"), 0)
          << "kill_at " << kill_at;
    }
  }  // crash

  ReplayOptions replay;
  replay.deliver_after[output_stream] = rows.size();
  Engine b(NoisyOptions(batch_size, SeqBackend::kHistory));
  EXPECT_TRUE(b.ExecuteScript(scenario.ddl).ok());
  auto qb = b.RegisterQuery(scenario.query);
  EXPECT_TRUE(qb.ok()) << qb.status();
  EXPECT_TRUE(
      b.Subscribe(qb->output_stream,
                  [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  Status recovered = b.RecoverFrom(dir, replay);
  EXPECT_TRUE(recovered.ok()) << recovered;
  for (size_t i = kill_at; i < noisy.events.size(); ++i) {
    const auto& ev = noisy.events[i];
    EXPECT_TRUE(b.Push(ev.stream, ev.tuple.values(), ev.tuple.ts()).ok());
  }
  EXPECT_TRUE(b.AdvanceTime(LastTs(noisy) + Minutes(10)).ok());
  EXPECT_EQ(b.ingest_pipeline()->reorder()->late_dropped(), 0u);
  return rows;
}

TEST_P(IngestDifferentialTest, KillRecoverWithBufferedReorder) {
  const uint32_t seed = GetParam();
  const Scenario scenario = SeqScenario(" MODE CHRONICLE");
  const Workload clean =
      MakeCleanWorkload(seed + 59, 160, scenario.streams, 4);
  NoiseStats stats;
  const Workload noisy = MakeNoisy(clean, seed * 40503u + 13, &stats);
  const auto reference =
      RunSingle(scenario, clean, CleanOptions(1, SeqBackend::kHistory));
  std::mt19937 rng(seed * 40503u + 11);
  for (int round = 0; round < 3; ++round) {
    const size_t batch_size =
        kBatchSizes[std::uniform_int_distribution<size_t>(0, 2)(rng)];
    const size_t ckpt_at = std::uniform_int_distribution<size_t>(
        1, noisy.events.size() - 1)(rng);
    const size_t kill_at = std::uniform_int_distribution<size_t>(
        ckpt_at, noisy.events.size())(rng);
    const std::string dir = FreshDir("kill_s" + std::to_string(seed) + "_r" +
                                     std::to_string(round));
    const auto killed = RunKilledMidIngest(scenario, noisy, batch_size,
                                           ckpt_at, kill_at, dir);
    EXPECT_EQ(killed, reference)
        << "seed " << seed << " batch " << batch_size << " ckpt_at "
        << ckpt_at << " kill_at " << kill_at;
    std::filesystem::remove_all(dir);
  }
}

// Sharded front-end ingest: the pipeline sits ahead of hash
// partitioning and checkpoints into <dir>/ingest.state; the kill lands
// with raw arrivals buffered ahead of the shards.
std::vector<std::string> RunShardedKilledMidIngest(const Scenario& scenario,
                                                   const Workload& noisy,
                                                   size_t num_shards,
                                                   size_t ckpt_at,
                                                   size_t kill_at,
                                                   const std::string& dir) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.engine = NoisyOptions(1, SeqBackend::kHistory);
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;
  std::vector<std::string> rows;
  auto push = [](ShardedEngine& engine, const rfid::TimedReading& ev) {
    ASSERT_TRUE(
        engine.Push(ev.stream, ev.tuple.values(), ev.tuple.ts()).ok());
  };
  {
    ShardedEngine a(options);
    EXPECT_TRUE(a.ExecuteScript(scenario.ddl).ok());
    auto qa = a.RegisterQuery(scenario.query);
    EXPECT_TRUE(qa.ok()) << qa.status();
    EXPECT_TRUE(
        a.Subscribe(qa->output_stream,
                    [&](const Tuple& t) { rows.push_back(t.ToString()); })
            .ok());
    EXPECT_TRUE(a.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    for (size_t i = 0; i < ckpt_at; ++i) push(a, noisy.events[i]);
    EXPECT_TRUE(a.Checkpoint(dir).ok());
    for (size_t i = ckpt_at; i < kill_at; ++i) push(a, noisy.events[i]);
    // The consumer drained everything delivered so far; the crash loses
    // only in-flight state (including the ingest buffers), which
    // recovery must regenerate.
    EXPECT_TRUE(a.Flush().ok());
    a.DrainOutputs();
  }  // crash

  ShardedEngine b(options);
  EXPECT_TRUE(b.ExecuteScript(scenario.ddl).ok());
  auto qb = b.RegisterQuery(scenario.query);
  EXPECT_TRUE(qb.ok()) << qb.status();
  EXPECT_TRUE(
      b.Subscribe(qb->output_stream,
                  [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  Status recovered = b.RecoverFrom(dir);
  EXPECT_TRUE(recovered.ok()) << recovered;
  for (size_t i = kill_at; i < noisy.events.size(); ++i) {
    push(b, noisy.events[i]);
  }
  EXPECT_TRUE(b.AdvanceTime(LastTs(noisy) + Minutes(10)).ok());
  EXPECT_TRUE(b.Flush().ok());
  b.DrainOutputs();
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST_P(IngestDifferentialTest, ShardedKillRecoverWithIngest) {
  const uint32_t seed = GetParam();
  const Scenario scenario = SeqScenario(" MODE CHRONICLE");
  const Workload clean =
      MakeCleanWorkload(seed + 97, 140, scenario.streams, 4);
  NoiseStats stats;
  const Workload noisy = MakeNoisy(clean, seed * 69621u + 29, &stats);
  auto reference =
      RunSingle(scenario, clean, CleanOptions(1, SeqBackend::kHistory));
  std::sort(reference.begin(), reference.end());
  std::mt19937 rng(seed * 69621u + 31);
  for (size_t shards : {2u, 4u}) {
    const size_t ckpt_at = std::uniform_int_distribution<size_t>(
        1, noisy.events.size() - 1)(rng);
    const size_t kill_at = std::uniform_int_distribution<size_t>(
        ckpt_at, noisy.events.size())(rng);
    const std::string dir = FreshDir("shard_s" + std::to_string(seed) + "_n" +
                                     std::to_string(shards));
    const auto killed = RunShardedKilledMidIngest(scenario, noisy, shards,
                                                  ckpt_at, kill_at, dir);
    EXPECT_EQ(killed, reference)
        << "seed " << seed << " shards " << shards << " ckpt_at " << ckpt_at
        << " kill_at " << kill_at;
    std::filesystem::remove_all(dir);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IngestDifferentialTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace eslev
