// Kill-replay differential sweep (DESIGN.md §10 acceptance): on seeded
// random traces, crash the engine at a random point (after a checkpoint
// taken at another random point), recover from checkpoint + WAL suffix,
// feed the remaining trace, and require the concatenation of pre-crash
// and post-recovery emissions to be byte-identical to an uninterrupted
// run — across all four pairing modes, windowed SEQ, the trailing-star
// extension, EXCEPTION_SEQ deadline anchors, and ShardedEngine at
// 1/2/4 shards.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "cep/seq_backend.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "recovery/checkpoint.h"
#include "replication/replicated_engine.h"

namespace eslev {
namespace {

struct Event {
  std::string stream;
  std::string tag;
  Timestamp ts;
};

std::vector<Event> MakeTrace(uint32_t seed, size_t num_events,
                             const std::vector<std::string>& streams,
                             int num_tags) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> pick_stream(0, streams.size() - 1);
  std::uniform_int_distribution<int> pick_tag(0, num_tags - 1);
  std::uniform_int_distribution<Duration> step(Milliseconds(50), Seconds(2));
  std::vector<Event> events;
  Timestamp now = Seconds(1);
  for (size_t i = 0; i < num_events; ++i) {
    events.push_back({streams[pick_stream(rng)],
                      "tag" + std::to_string(pick_tag(rng)), now});
    now += step(rng);
  }
  return events;
}

struct Scenario {
  std::string ddl;
  std::string query;
  std::vector<std::string> streams;
  // How far past the last event the closing heartbeat advances —
  // EXCEPTION_SEQ scenarios need it beyond the FOLLOWING window so
  // checkpointed deadlines fire after recovery.
  Duration tail_advance = Minutes(10);
};

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "recovery_diff_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void PushEvent(Engine& engine, const Event& e) {
  ASSERT_TRUE(engine
                  .Push(e.stream,
                        {Value::String("r"), Value::String(e.tag),
                         Value::Time(e.ts)},
                        e.ts)
                  .ok());
}

std::vector<std::string> RunUninterrupted(const Scenario& scenario,
                                          const std::vector<Event>& events) {
  Engine engine;
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> rows;
  EXPECT_TRUE(
      engine
          .Subscribe(q->output_stream,
                     [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  for (const Event& e : events) PushEvent(engine, e);
  EXPECT_TRUE(engine.AdvanceTime(events.back().ts + scenario.tail_advance).ok());
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Run the same trace with a checkpoint at `ckpt_at` and a crash at
// `kill_at` (engine destroyed, only the WAL and checkpoint survive),
// then recover into a fresh engine and feed the tail. Returns the
// concatenation of pre-crash and post-recovery emissions, sorted.
std::vector<std::string> RunKilled(const Scenario& scenario,
                                   const std::vector<Event>& events,
                                   size_t ckpt_at, size_t kill_at,
                                   const std::string& dir) {
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;  // every append durable at the kill
  std::vector<std::string> rows;
  std::string output_stream;
  {
    Engine a;
    EXPECT_TRUE(a.ExecuteScript(scenario.ddl).ok());
    auto qa = a.RegisterQuery(scenario.query);
    EXPECT_TRUE(qa.ok()) << qa.status();
    output_stream = qa->output_stream;
    EXPECT_TRUE(
        a.Subscribe(qa->output_stream,
                    [&](const Tuple& t) { rows.push_back(t.ToString()); })
            .ok());
    EXPECT_TRUE(a.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    for (size_t i = 0; i < ckpt_at; ++i) PushEvent(a, events[i]);
    EXPECT_TRUE(a.Checkpoint(dir).ok());
    for (size_t i = ckpt_at; i < kill_at; ++i) PushEvent(a, events[i]);
  }  // crash: nothing after this line sees engine A

  Engine b;
  EXPECT_TRUE(b.ExecuteScript(scenario.ddl).ok());
  auto qb = b.RegisterQuery(scenario.query);
  EXPECT_TRUE(qb.ok()) << qb.status();
  EXPECT_TRUE(
      b.Subscribe(qb->output_stream,
                  [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  // The consumer durably received rows.size() emissions before the
  // crash; replay re-delivers exactly the lost tail. In tuple-at-a-time
  // mode the tail is empty (every emission was delivered synchronously);
  // in batch mode (ESLEV_BATCH_SIZE) the engine can die holding a
  // partial batch whose emissions were never delivered, and this is how
  // an exactly-once consumer recovers them (DESIGN.md §13).
  ReplayOptions replay;
  replay.deliver_after[output_stream] = rows.size();
  Status recovered = b.RecoverFrom(dir, replay);
  EXPECT_TRUE(recovered.ok()) << recovered;
  for (size_t i = kill_at; i < events.size(); ++i) PushEvent(b, events[i]);
  EXPECT_TRUE(b.AdvanceTime(events.back().ts + scenario.tail_advance).ok());
  std::sort(rows.begin(), rows.end());
  return rows;
}

void ExpectKillReplayEquivalence(const Scenario& scenario, uint32_t seed,
                                 size_t num_events, int num_tags,
                                 const std::string& tag) {
  const auto events = MakeTrace(seed, num_events, scenario.streams, num_tags);
  const auto reference = RunUninterrupted(scenario, events);
  std::mt19937 rng(seed * 2654435761u + 1);
  for (int round = 0; round < 3; ++round) {
    const size_t ckpt_at =
        std::uniform_int_distribution<size_t>(0, num_events - 1)(rng);
    const size_t kill_at =
        std::uniform_int_distribution<size_t>(ckpt_at, num_events)(rng);
    const std::string dir =
        FreshDir(tag + "_s" + std::to_string(seed) + "_r" +
                 std::to_string(round));
    const auto killed = RunKilled(scenario, events, ckpt_at, kill_at, dir);
    EXPECT_EQ(killed, reference)
        << tag << " seed " << seed << " ckpt_at " << ckpt_at << " kill_at "
        << kill_at;
    std::filesystem::remove_all(dir);
  }
}

constexpr char kSeqDdl[] = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
)sql";

Scenario SeqScenario(const std::string& mode_clause,
                     const std::string& window_clause) {
  Scenario s;
  s.ddl = kSeqDdl;
  s.query = "SELECT C3.tagid, C1.tagtime, C3.tagtime FROM C1, C2, C3 "
            "WHERE SEQ(C1, C2, C3)" +
            window_clause + mode_clause +
            " AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";
  s.streams = {"C1", "C2", "C3"};
  return s;
}

class RecoveryDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RecoveryDifferentialTest, SeqAcrossAllPairingModes) {
  const uint32_t seed = GetParam();
  int i = 0;
  for (const char* mode :
       {"", " MODE RECENT", " MODE CHRONICLE", " MODE CONSECUTIVE"}) {
    ExpectKillReplayEquivalence(SeqScenario(mode, ""), seed ^ 0x9e3779b9u, 160,
                                4, "mode" + std::to_string(i++));
  }
}

TEST_P(RecoveryDifferentialTest, WindowedSeq) {
  ExpectKillReplayEquivalence(
      SeqScenario(" MODE CHRONICLE", " OVER [30 SECONDS PRECEDING C3]"),
      GetParam() + 7, 160, 4, "windowed");
}

Scenario StarScenario() {
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql";
  s.query = R"sql(
    SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
      AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
      AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
  )sql";
  s.streams = {"R1", "R2"};
  return s;
}

Scenario ExceptionScenario() {
  Scenario s;
  s.ddl = kSeqDdl;
  s.query = "SELECT C1.tagid, C1.tagtime FROM C1, C2, C3 "
            "WHERE EXCEPTION_SEQ(C1, C2, C3) OVER [10 MINUTES FOLLOWING C1] "
            "AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";
  s.streams = {"C1", "C2", "C3"};
  s.tail_advance = Minutes(30);  // beyond every open deadline
  return s;
}

TEST_P(RecoveryDifferentialTest, TrailingStarGroups) {
  ExpectKillReplayEquivalence(StarScenario(), GetParam() + 101, 140, 3, "star");
}

TEST_P(RecoveryDifferentialTest, ExceptionSeqDeadlinesSurviveTheCrash) {
  // Anchored 10-minute deadlines: many are open at the kill point, so
  // recovery must reconstruct them from the checkpoint (and WAL-replayed
  // heartbeats) for the tail heartbeat to fire the same violations.
  ExpectKillReplayEquivalence(ExceptionScenario(), GetParam() + 211, 140, 4,
                              "exception");
}

// ---- sharded: coordinated checkpoint + front-end WAL --------------------

std::vector<std::string> RunShardedUninterrupted(
    const Scenario& scenario, const std::vector<Event>& events,
    size_t num_shards) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  ShardedEngine engine(options);
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> rows;
  EXPECT_TRUE(
      engine
          .Subscribe(q->output_stream,
                     [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  for (const Event& e : events) {
    EXPECT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
  }
  EXPECT_TRUE(engine.AdvanceTime(events.back().ts + scenario.tail_advance).ok());
  EXPECT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> RunShardedKilled(const Scenario& scenario,
                                          const std::vector<Event>& events,
                                          size_t num_shards, size_t ckpt_at,
                                          size_t kill_at,
                                          const std::string& dir) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;
  std::vector<std::string> rows;
  auto push = [](ShardedEngine& engine, const Event& e) {
    ASSERT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
  };
  {
    ShardedEngine a(options);
    EXPECT_TRUE(a.ExecuteScript(scenario.ddl).ok());
    auto qa = a.RegisterQuery(scenario.query);
    EXPECT_TRUE(qa.ok()) << qa.status();
    EXPECT_TRUE(
        a.Subscribe(qa->output_stream,
                    [&](const Tuple& t) { rows.push_back(t.ToString()); })
            .ok());
    EXPECT_TRUE(a.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    for (size_t i = 0; i < ckpt_at; ++i) push(a, events[i]);
    EXPECT_TRUE(a.Checkpoint(dir).ok());
    for (size_t i = ckpt_at; i < kill_at; ++i) push(a, events[i]);
    // The consumer drained everything delivered so far; the crash loses
    // only in-flight state, which recovery must regenerate.
    EXPECT_TRUE(a.Flush().ok());
    a.DrainOutputs();
  }  // crash

  ShardedEngine b(options);
  EXPECT_TRUE(b.ExecuteScript(scenario.ddl).ok());
  auto qb = b.RegisterQuery(scenario.query);
  EXPECT_TRUE(qb.ok()) << qb.status();
  EXPECT_TRUE(
      b.Subscribe(qb->output_stream,
                  [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  Status recovered = b.RecoverFrom(dir);
  EXPECT_TRUE(recovered.ok()) << recovered;
  for (size_t i = kill_at; i < events.size(); ++i) push(b, events[i]);
  EXPECT_TRUE(b.AdvanceTime(events.back().ts + scenario.tail_advance).ok());
  EXPECT_TRUE(b.Flush().ok());
  b.DrainOutputs();
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST_P(RecoveryDifferentialTest, ShardedKillReplayAt124Shards) {
  const uint32_t seed = GetParam();
  const Scenario scenario = SeqScenario(" MODE CHRONICLE", "");
  const auto events = MakeTrace(seed + 53, 160, scenario.streams, 4);
  std::mt19937 rng(seed * 40503u + 3);
  for (size_t shards : {1u, 2u, 4u}) {
    const auto reference =
        RunShardedUninterrupted(scenario, events, shards);
    const size_t ckpt_at =
        std::uniform_int_distribution<size_t>(0, events.size() - 1)(rng);
    const size_t kill_at =
        std::uniform_int_distribution<size_t>(ckpt_at, events.size())(rng);
    const std::string dir =
        FreshDir("sharded_s" + std::to_string(seed) + "_n" +
                 std::to_string(shards));
    const auto killed = RunShardedKilled(scenario, events, shards, ckpt_at,
                                         kill_at, dir);
    EXPECT_EQ(killed, reference)
        << shards << " shards, seed " << seed << " ckpt_at " << ckpt_at
        << " kill_at " << kill_at;
    std::filesystem::remove_all(dir);
  }
}

// ---- replicated: kill a primary shard, promote its hot standby ----------

// Run the trace on a ReplicatedShardedEngine: checkpoint at `ckpt_at`
// (which provisions the standbys), kill shard `shard_to_kill` at
// `kill_at` after draining everything delivered so far, keep pushing
// into the dark window (the victim's share reaches only the WAL, which
// is exactly what its standby replays), promote at `resume_at`, and
// finish the trace on the promoted engine. Replicate() is sprinkled
// through the trace so shipping/apply runs incrementally, not as one
// big promotion-time catch-up. Returns the sorted emissions, which must
// be byte-identical to the failure-free sharded run.
std::vector<std::string> RunReplicatedKillPromote(
    const Scenario& scenario, const std::vector<Event>& events,
    size_t num_shards, size_t ckpt_at, size_t kill_at, size_t resume_at,
    size_t shard_to_kill, const std::string& dir) {
  ReplicatedShardedEngineOptions options;
  options.num_shards = num_shards;
  options.dir = dir;
  options.wal.group_commit_bytes = 0;  // every append durable at the kill
  options.wal.segment_bytes = 2048;    // rotate mid-trace: sealed + live ship
  auto opened = ReplicatedShardedEngine::Open(options);
  EXPECT_TRUE(opened.ok()) << opened.status();
  ReplicatedShardedEngine& engine = **opened;
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> rows;
  EXPECT_TRUE(
      engine
          .Subscribe(q->output_stream,
                     [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  auto push = [&](size_t i) {
    const Event& e = events[i];
    ASSERT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
    if (i % 40 == 17) {
      Status replicated = engine.Replicate();
      EXPECT_TRUE(replicated.ok()) << replicated;
    }
  };
  for (size_t i = 0; i < ckpt_at; ++i) push(i);
  EXPECT_TRUE(engine.Flush().ok());
  Status ckpt = engine.Checkpoint();
  EXPECT_TRUE(ckpt.ok()) << ckpt;
  for (size_t i = ckpt_at; i < kill_at; ++i) push(i);
  // The consumer drained everything delivered so far; the failover must
  // regenerate only what was in flight, without double-delivering this.
  EXPECT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  EXPECT_TRUE(engine.KillShard(shard_to_kill).ok());
  for (size_t i = kill_at; i < resume_at; ++i) push(i);
  auto healed = engine.HealFailures();
  EXPECT_TRUE(healed.ok()) << healed.status();
  if (healed.ok()) {
    EXPECT_EQ(*healed, 1u);
  }
  for (size_t i = resume_at; i < events.size(); ++i) push(i);
  EXPECT_TRUE(
      engine.AdvanceTime(events.back().ts + scenario.tail_advance).ok());
  EXPECT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  std::sort(rows.begin(), rows.end());
  return rows;
}

void ExpectKillPromoteEquivalence(const Scenario& scenario, uint32_t seed,
                                  size_t num_events, int num_tags,
                                  const std::string& tag) {
  const auto events = MakeTrace(seed, num_events, scenario.streams, num_tags);
  std::mt19937 rng(seed * 69621u + 5);
  for (size_t shards : {1u, 2u, 4u}) {
    const auto reference = RunShardedUninterrupted(scenario, events, shards);
    const size_t ckpt_at =
        std::uniform_int_distribution<size_t>(1, num_events / 2)(rng);
    const size_t kill_at =
        std::uniform_int_distribution<size_t>(ckpt_at, num_events - 1)(rng);
    const size_t resume_at =
        std::uniform_int_distribution<size_t>(kill_at, num_events)(rng);
    const size_t shard_to_kill =
        std::uniform_int_distribution<size_t>(0, shards - 1)(rng);
    const std::string dir =
        FreshDir("promote_" + tag + "_s" + std::to_string(seed) + "_n" +
                 std::to_string(shards));
    const auto promoted = RunReplicatedKillPromote(
        scenario, events, shards, ckpt_at, kill_at, resume_at, shard_to_kill,
        dir);
    EXPECT_EQ(promoted, reference)
        << tag << " shards " << shards << " seed " << seed << " ckpt_at "
        << ckpt_at << " kill_at " << kill_at << " resume_at " << resume_at
        << " victim " << shard_to_kill;
    std::filesystem::remove_all(dir);
  }
}

TEST_P(RecoveryDifferentialTest, PromoteAcrossAllPairingModes) {
  int i = 0;
  for (const char* mode :
       {"", " MODE RECENT", " MODE CHRONICLE", " MODE CONSECUTIVE"}) {
    ExpectKillPromoteEquivalence(SeqScenario(mode, ""),
                                 GetParam() * 31u + static_cast<uint32_t>(i),
                                 120, 4, "pmode" + std::to_string(i));
    ++i;
  }
}

TEST_P(RecoveryDifferentialTest, PromoteWindowedSeq) {
  ExpectKillPromoteEquivalence(
      SeqScenario(" MODE CHRONICLE", " OVER [30 SECONDS PRECEDING C3]"),
      GetParam() + 307, 120, 4, "pwindowed");
}

TEST_P(RecoveryDifferentialTest, PromoteTrailingStarGroups) {
  ExpectKillPromoteEquivalence(StarScenario(), GetParam() + 401, 120, 3,
                               "pstar");
}

TEST_P(RecoveryDifferentialTest, PromoteExceptionSeqDeadlines) {
  // The deadline for every C1 still open at the kill is owned by the
  // victim's standby after promotion; each must fire exactly once.
  ExpectKillPromoteEquivalence(ExceptionScenario(), GetParam() + 503, 120, 4,
                               "pexception");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryDifferentialTest,
                         ::testing::Values(1u, 2u, 3u));

// ---- NFA backend: same sweeps, matcher state in the run tree ------------

// Forces ESLEV_SEQ_BACKEND for a scope, restoring whatever was exported
// before (the CI property legs pin the variable binary-wide; plain
// unsetenv would strip the override from every later test).
class ScopedBackendOverride {
 public:
  explicit ScopedBackendOverride(SeqBackend backend) {
    const char* prev = std::getenv(kSeqBackendEnvVar);
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv(kSeqBackendEnvVar, SeqBackendToString(backend), /*overwrite=*/1);
  }
  ~ScopedBackendOverride() {
    if (had_prev_) {
      ::setenv(kSeqBackendEnvVar, prev_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(kSeqBackendEnvVar);
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST_P(RecoveryDifferentialTest, NfaBackendKillReplay) {
  // Checkpoints on the NFA backend serialize the shared-prefix run tree
  // (DESIGN.md §14); recovery must rebuild it so the tail of the trace
  // completes exactly the matches the uninterrupted run produces.
  ScopedBackendOverride backend(SeqBackend::kNfa);
  ExpectKillReplayEquivalence(SeqScenario(" MODE CHRONICLE", ""),
                              GetParam() + 601, 160, 4, "nfa_chronicle");
  ExpectKillReplayEquivalence(SeqScenario(" MODE RECENT", ""),
                              GetParam() + 607, 160, 4, "nfa_recent");
  ExpectKillReplayEquivalence(StarScenario(), GetParam() + 613, 140, 3,
                              "nfa_star");
  ExpectKillReplayEquivalence(ExceptionScenario(), GetParam() + 619, 140, 4,
                              "nfa_exception");
}

TEST_P(RecoveryDifferentialTest, NfaBackendPromote) {
  // Kill a primary shard and promote its standby with the NFA backend on
  // both sides of the failover.
  ScopedBackendOverride backend(SeqBackend::kNfa);
  ExpectKillPromoteEquivalence(SeqScenario(" MODE CHRONICLE", ""),
                               GetParam() + 701, 120, 4, "nfa_pchronicle");
  ExpectKillPromoteEquivalence(StarScenario(), GetParam() + 707, 120, 3,
                               "nfa_pstar");
}

// ---- cross-backend checkpoints are rejected, never misread --------------

// The two matchers serialize different state shapes under the same
// operator ids. A checkpoint taken under one backend must be refused by
// the other with an actionable error — silently decoding it as the
// wrong shape would corrupt matcher state.
class SeqCheckpointCompatibilityTest
    : public ::testing::TestWithParam<std::tuple<SeqBackend, SeqBackend>> {};

TEST_P(SeqCheckpointCompatibilityTest, CrossBackendRestoreRejected) {
  const SeqBackend from = std::get<0>(GetParam());
  const SeqBackend to = std::get<1>(GetParam());
  const Scenario scenario = SeqScenario(" MODE CHRONICLE", "");
  const auto events = MakeTrace(11, 60, scenario.streams, 3);
  const std::string dir =
      FreshDir(std::string("xbackend_") + SeqBackendToString(from) + "_" +
               SeqBackendToString(to));
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;
  {
    ScopedBackendOverride backend(from);
    Engine a;
    ASSERT_TRUE(a.ExecuteScript(scenario.ddl).ok());
    ASSERT_TRUE(a.RegisterQuery(scenario.query).ok());
    ASSERT_TRUE(a.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    for (const Event& e : events) PushEvent(a, e);
    ASSERT_TRUE(a.Checkpoint(dir).ok());
  }
  ScopedBackendOverride backend(to);
  Engine b;
  ASSERT_TRUE(b.ExecuteScript(scenario.ddl).ok());
  ASSERT_TRUE(b.RegisterQuery(scenario.query).ok());
  const Status restored = b.RecoverFrom(dir);
  if (from == to) {
    EXPECT_TRUE(restored.ok()) << restored;
  } else {
    ASSERT_FALSE(restored.ok())
        << "a " << SeqBackendToString(from)
        << " checkpoint must not restore under "
        << SeqBackendToString(to);
    // The error tells the operator how to get the state back.
    EXPECT_NE(restored.message().find(kSeqBackendEnvVar), std::string::npos)
        << restored;
    EXPECT_NE(restored.message().find(SeqBackendToString(from)),
              std::string::npos)
        << restored;
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Directions, SeqCheckpointCompatibilityTest,
    ::testing::Values(
        std::make_tuple(SeqBackend::kHistory, SeqBackend::kNfa),
        std::make_tuple(SeqBackend::kNfa, SeqBackend::kHistory),
        std::make_tuple(SeqBackend::kHistory, SeqBackend::kHistory),
        std::make_tuple(SeqBackend::kNfa, SeqBackend::kNfa)));

}  // namespace
}  // namespace eslev
