// SEQ backend differential sweep (DESIGN.md §14 acceptance): on seeded
// random traces and randomized query shapes, the compiled-NFA matcher
// must emit byte-identical output to the history matcher — same rows,
// same order — across all four pairing modes, windowed SEQ, trailing
// stars, negation, and EXCEPTION_SEQ deadlines (with heartbeat-driven
// active expiration), at batch sizes 1/7/64 and on 1/2/4 shards, and
// across a kill-recover cycle. The backend is forced per engine through
// ESLEV_SEQ_BACKEND so the sweep stays meaningful when CI pins the
// variable globally; each run asserts the engine actually resolved the
// requested backend.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "cep/seq_backend.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "recovery/checkpoint.h"

namespace eslev {
namespace {

const size_t kBatchSizes[] = {1, 7, 64};

// Scoped setter: the backend knob is process-global, so a failing
// assertion must not leak a forced value into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, /*overwrite=*/1);
    }
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

struct Event {
  std::string stream;  // empty: a heartbeat (AdvanceTime)
  std::string tag;
  Timestamp ts;
};

// Random trace over `streams`; with heartbeats interleaved the sweep
// also drives active expiration through both backends.
std::vector<Event> MakeTrace(uint32_t seed, size_t num_events,
                             const std::vector<std::string>& streams,
                             int num_tags, bool with_heartbeats) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> pick_stream(0, streams.size() - 1);
  std::uniform_int_distribution<int> pick_tag(0, num_tags - 1);
  std::uniform_int_distribution<Duration> step(Milliseconds(50), Seconds(2));
  std::uniform_int_distribution<int> pct(0, 99);
  std::vector<Event> events;
  Timestamp now = Seconds(1);
  for (size_t i = 0; i < num_events; ++i) {
    if (with_heartbeats && pct(rng) < 8) {
      now += step(rng) * 4;
      events.push_back({"", "", now});
      continue;
    }
    events.push_back({streams[pick_stream(rng)],
                      "tag" + std::to_string(pick_tag(rng)), now});
    now += step(rng);
  }
  return events;
}

struct Scenario {
  std::string ddl;
  std::string query;
  std::vector<std::string> streams;
  std::vector<std::string> single_shard_streams;  // empty: partitioned
};

EngineOptions BackendOptions(SeqBackend backend, size_t batch_size) {
  EngineOptions options;
  options.batch_size = batch_size;
  options.honor_batch_env = false;  // the sweep matrix is explicit
  options.seq_backend = backend;
  return options;
}

template <typename EngineT>
void PushEvent(EngineT& engine, const Event& e) {
  if (e.stream.empty()) {
    ASSERT_TRUE(engine.AdvanceTime(e.ts).ok());
    return;
  }
  ASSERT_TRUE(engine
                  .Push(e.stream,
                        {Value::String("r"), Value::String(e.tag),
                         Value::Time(e.ts)},
                        e.ts)
                  .ok());
}

// Unsorted: single-engine equivalence is exact, including emission order.
std::vector<std::string> RunSingle(const Scenario& scenario,
                                   const std::vector<Event>& events,
                                   SeqBackend backend, size_t batch_size) {
  ScopedEnv env(kSeqBackendEnvVar, SeqBackendToString(backend));
  Engine engine(BackendOptions(backend, batch_size));
  EXPECT_EQ(engine.seq_backend(), backend);
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status() << "\n" << scenario.query;
  std::vector<std::string> rows;
  EXPECT_TRUE(
      engine
          .Subscribe(q->output_stream,
                     [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  for (const Event& e : events) PushEvent(engine, e);
  EXPECT_TRUE(engine.AdvanceTime(events.back().ts + Minutes(10)).ok());
  return rows;
}

std::vector<std::string> RunSharded(const Scenario& scenario,
                                    const std::vector<Event>& events,
                                    SeqBackend backend, size_t num_shards,
                                    size_t batch_size) {
  ScopedEnv env(kSeqBackendEnvVar, SeqBackendToString(backend));
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  options.engine = BackendOptions(backend, batch_size);
  ShardedEngine engine(options);
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status() << "\n" << scenario.query;
  for (const std::string& s : scenario.single_shard_streams) {
    EXPECT_TRUE(engine.SetSingleShard(s).ok());
  }
  std::vector<std::string> rows;
  EXPECT_TRUE(
      engine
          .Subscribe(q->output_stream,
                     [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  for (const Event& e : events) {
    if (e.stream.empty()) {
      EXPECT_TRUE(engine.AdvanceTime(e.ts).ok());
      continue;
    }
    EXPECT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
  }
  EXPECT_TRUE(engine.AdvanceTime(events.back().ts + Minutes(10)).ok());
  EXPECT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  std::sort(rows.begin(), rows.end());
  return rows;
}

// The full matrix for one scenario: the NFA backend against the history
// reference at batch sizes 1/7/64 (exact order) and on 1/2/4 shards
// (sorted — shard interleaving is nondeterministic).
void ExpectBackendEquivalence(const Scenario& scenario, uint32_t seed,
                              size_t num_events, int num_tags,
                              bool with_heartbeats = false) {
  const auto events = MakeTrace(seed, num_events, scenario.streams, num_tags,
                                with_heartbeats);
  const auto reference =
      RunSingle(scenario, events, SeqBackend::kHistory, 1);
  for (size_t batch_size : kBatchSizes) {
    EXPECT_EQ(RunSingle(scenario, events, SeqBackend::kNfa, batch_size),
              reference)
        << "seed " << seed << " batch_size " << batch_size << "\n"
        << scenario.query;
  }
  auto sorted_reference = reference;
  std::sort(sorted_reference.begin(), sorted_reference.end());
  std::mt19937 rng(seed * 2246822519u + 3);
  for (size_t shards : {1u, 2u, 4u}) {
    const size_t batch_size =
        kBatchSizes[std::uniform_int_distribution<size_t>(0, 2)(rng)];
    EXPECT_EQ(
        RunSharded(scenario, events, SeqBackend::kNfa, shards, batch_size),
        sorted_reference)
        << "seed " << seed << " shards " << shards << " batch_size "
        << batch_size << "\n"
        << scenario.query;
  }
}

constexpr char kSeqDdl[] = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
)sql";

Scenario SeqScenario(const std::string& mode_clause,
                     const std::string& window_clause,
                     bool with_pairwise = true) {
  Scenario s;
  s.ddl = kSeqDdl;
  s.query = "SELECT C3.tagid, C1.tagtime, C3.tagtime FROM C1, C2, C3 "
            "WHERE SEQ(C1, C2, C3)" +
            window_clause + mode_clause;
  if (with_pairwise) {
    s.query += " AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";
  }
  s.streams = {"C1", "C2", "C3"};
  // Without a full pairwise chain there is no shard routing key, and
  // CONSECUTIVE is order-dependent across streams: either way, sharded
  // runs must keep these streams together to match a single engine.
  if (!with_pairwise ||
      mode_clause.find("CONSECUTIVE") != std::string::npos) {
    s.single_shard_streams = s.streams;
  }
  return s;
}

Scenario TrailingStarScenario(const std::string& mode_clause) {
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql";
  s.query = "SELECT R1.tagid, FIRST(R2*).tagtime, COUNT(R2*) "
            "FROM R1, R2 WHERE SEQ(R1, R2*)" +
            mode_clause +
            " AND R2.tagtime - R2.previous.tagtime <= 1 SECONDS";
  s.streams = {"R1", "R2"};
  s.single_shard_streams = s.streams;
  return s;
}

Scenario LeadingStarScenario(const std::string& mode_clause) {
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql";
  s.query = "SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime "
            "FROM R1, R2 WHERE SEQ(R1*, R2)" +
            mode_clause +
            " AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS"
            " AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS";
  s.streams = {"R1", "R2"};
  s.single_shard_streams = s.streams;
  return s;
}

Scenario NegationScenario(const std::string& mode_clause) {
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM A(readerid, tagid, tagtime);
    CREATE STREAM B(readerid, tagid, tagtime);
    CREATE STREAM C(readerid, tagid, tagtime);
  )sql";
  s.query = "SELECT A.tagid, A.tagtime, C.tagtime FROM A, B, C "
            "WHERE SEQ(A, !B, C)" +
            mode_clause + " AND A.tagid=C.tagid";
  s.streams = {"A", "B", "C"};
  // Negation evidence lives on the joint history: order across streams
  // matters, so the sharded runs keep these streams on one shard.
  s.single_shard_streams = s.streams;
  return s;
}

Scenario ExceptionScenario(const std::string& window_clause) {
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM A1(staffid, tagid, tagtime);
    CREATE STREAM A2(staffid, tagid, tagtime);
    CREATE STREAM A3(staffid, tagid, tagtime);
  )sql";
  s.query = "SELECT A1.tagid, A2.tagid, A3.tagid FROM A1, A2, A3 "
            "WHERE EXCEPTION_SEQ(A1, A2, A3)" +
            window_clause;
  s.streams = {"A1", "A2", "A3"};
  // One partial sequence across all input streams: order-dependent.
  s.single_shard_streams = s.streams;
  return s;
}

class SeqBackendDifferentialTest
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SeqBackendDifferentialTest, AllPairingModes) {
  const uint32_t seed = GetParam();
  int i = 0;
  for (const char* mode :
       {"", " MODE RECENT", " MODE CHRONICLE", " MODE CONSECUTIVE"}) {
    ExpectBackendEquivalence(SeqScenario(mode, ""),
                             seed * 31u + static_cast<uint32_t>(i++), 240, 5);
  }
}

TEST_P(SeqBackendDifferentialTest, PairingModesWithoutConstraints) {
  // No pairwise constraints: the run tree holds every order-compatible
  // combination, and RECENT's exact purge is active — the worst case for
  // matching the history enumeration order.
  const uint32_t seed = GetParam();
  int i = 0;
  for (const char* mode : {"", " MODE RECENT", " MODE CHRONICLE"}) {
    ExpectBackendEquivalence(
        SeqScenario(mode, "", /*with_pairwise=*/false),
        seed * 97u + static_cast<uint32_t>(i++), 120, 4);
  }
}

TEST_P(SeqBackendDifferentialTest, WindowedSeq) {
  const uint32_t seed = GetParam();
  int i = 0;
  for (const char* window :
       {" OVER [30 SECONDS PRECEDING C3]", " OVER [20 SECONDS FOLLOWING C1]",
        " OVER [15 SECONDS PRECEDING AND FOLLOWING C2]"}) {
    for (const char* mode : {"", " MODE RECENT", " MODE CHRONICLE"}) {
      ExpectBackendEquivalence(
          SeqScenario(mode, window),
          seed * 131u + static_cast<uint32_t>(i++), 200, 5);
    }
  }
}

TEST_P(SeqBackendDifferentialTest, TrailingStarGroups) {
  const uint32_t seed = GetParam();
  int i = 0;
  for (const char* mode : {"", " MODE RECENT", " MODE CHRONICLE"}) {
    ExpectBackendEquivalence(TrailingStarScenario(mode),
                             seed * 173u + static_cast<uint32_t>(i++), 160, 4);
    ExpectBackendEquivalence(LeadingStarScenario(mode),
                             seed * 181u + static_cast<uint32_t>(i++), 160, 4);
  }
}

TEST_P(SeqBackendDifferentialTest, NegatedPositions) {
  const uint32_t seed = GetParam();
  int i = 0;
  for (const char* mode : {"", " MODE RECENT", " MODE CHRONICLE"}) {
    ExpectBackendEquivalence(NegationScenario(mode),
                             seed * 193u + static_cast<uint32_t>(i++), 200, 4);
  }
}

TEST_P(SeqBackendDifferentialTest, ExceptionSeqDeadlines) {
  const uint32_t seed = GetParam();
  int i = 0;
  for (const char* window :
       {"", " OVER [10 SECONDS FOLLOWING A1]",
        " OVER [4 SECONDS FOLLOWING A2]"}) {
    // Heartbeats interleaved: active expiration must fire identically.
    ExpectBackendEquivalence(ExceptionScenario(window),
                             seed * 211u + static_cast<uint32_t>(i++), 220, 4,
                             /*with_heartbeats=*/true);
  }
}

// ---- randomized query generator ----------------------------------------

// Random SEQ query from parametric templates: the rng picks position
// count, star placement, negation, mode, window shape/length/anchor, and
// pairwise constraints. Everything composes from grammar the planner
// accepts, so a planning failure is itself a test failure.
Scenario RandomScenario(std::mt19937& rng) {
  std::uniform_int_distribution<int> pct(0, 99);
  const int npos = 2 + (pct(rng) < 60 ? 1 : 0);
  std::vector<std::string> streams;
  std::string ddl;
  for (int i = 0; i < npos; ++i) {
    streams.push_back("S" + std::to_string(i + 1));
    ddl += "CREATE STREAM " + streams.back() +
           "(readerid, tagid, tagtime);\n";
  }
  // At most one feature position keeps the space of valid templates
  // simple: a star (any position) or a negation (middle only).
  int star_at = -1;
  int neg_at = -1;
  const int feature = pct(rng);
  if (feature < 35) {
    star_at = std::uniform_int_distribution<int>(0, npos - 1)(rng);
  } else if (feature < 50 && npos == 3) {
    neg_at = 1;
  }
  const char* modes[] = {"", " MODE RECENT", " MODE CHRONICLE",
                         " MODE CONSECUTIVE"};
  // CONSECUTIVE + negation never completes (any negated arrival purges
  // the run in both backends); keep the generated queries satisfiable.
  std::string mode = modes[std::uniform_int_distribution<int>(
      0, neg_at >= 0 ? 2 : 3)(rng)];

  std::string args;
  for (int i = 0; i < npos; ++i) {
    if (!args.empty()) args += ", ";
    if (i == neg_at) args += "!";
    args += streams[i];
    if (i == star_at) args += "*";
  }
  std::string query_where = "SEQ(" + args + ")";
  if (pct(rng) < 50) {
    const int len = 5 + pct(rng) / 4;
    // Anchor on any non-negated position (negated positions carry no
    // match entry, which would make the window vacuous).
    int anchor = std::uniform_int_distribution<int>(0, npos - 1)(rng);
    if (anchor == neg_at) anchor = 0;
    const char* dir = anchor == 0             ? "FOLLOWING"
                      : anchor == npos - 1    ? "PRECEDING"
                      : (pct(rng) < 50 ? "PRECEDING" : "FOLLOWING");
    query_where += " OVER [" + std::to_string(len) + " SECONDS " + dir +
                   " " + streams[anchor] + "]";
  }
  query_where += mode;
  if (star_at >= 0 && pct(rng) < 70) {
    query_where += " AND " + streams[star_at] + ".tagtime - " +
                   streams[star_at] + ".previous.tagtime <= 1 SECONDS";
  }
  // Pairwise tagid joins. A full chain over the non-negated positions
  // doubles as the shard routing key; anything less leaves the scenario
  // order-dependent across shards.
  std::vector<int> plain;
  for (int i = 0; i < npos; ++i) {
    if (i != neg_at) plain.push_back(i);
  }
  bool full_chain = false;
  if (plain.size() >= 2 && pct(rng) < 60) {
    full_chain = true;
    for (size_t i = 1; i < plain.size(); ++i) {
      query_where += " AND " + streams[plain[0]] + ".tagid=" +
                     streams[plain[i]] + ".tagid";
    }
  }

  std::string projection;
  for (int i = 0; i < npos; ++i) {
    if (i == neg_at) continue;
    if (!projection.empty()) projection += ", ";
    if (i == star_at) {
      projection += "FIRST(" + streams[i] + "*).tagtime, COUNT(" +
                    streams[i] + "*)";
    } else {
      projection += streams[i] + ".tagid, " + streams[i] + ".tagtime";
    }
  }

  Scenario s;
  s.ddl = ddl;
  std::string from;
  for (const auto& st : streams) {
    if (!from.empty()) from += ", ";
    from += st;
  }
  s.query =
      "SELECT " + projection + " FROM " + from + " WHERE " + query_where;
  s.streams = streams;
  // Stars, negation, CONSECUTIVE, and queries without a routing key are
  // order-dependent across streams: keep them on a single shard.
  if (star_at >= 0 || neg_at >= 0 || !full_chain ||
      mode.find("CONSECUTIVE") != std::string::npos) {
    s.single_shard_streams = streams;
  }
  return s;
}

TEST_P(SeqBackendDifferentialTest, RandomizedQueries) {
  const uint32_t seed = GetParam();
  std::mt19937 rng(seed * 747796405u + 2891336453u);
  for (int round = 0; round < 8; ++round) {
    const Scenario s = RandomScenario(rng);
    ExpectBackendEquivalence(s, seed * 1013u + static_cast<uint32_t>(round),
                             150, 4);
  }
}

// ---- kill-recover on the NFA backend ------------------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "seq_backend_diff_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Checkpoint + crash + RecoverFrom on the NFA backend: the run tree is
// rebuilt from the tagged checkpoint and the concatenated output must
// equal the uninterrupted history-backend run, byte for byte.
std::vector<std::string> RunKilledNfa(const Scenario& scenario,
                                      const std::vector<Event>& events,
                                      size_t ckpt_at, size_t kill_at,
                                      const std::string& dir) {
  ScopedEnv env(kSeqBackendEnvVar, "nfa");
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;
  std::vector<std::string> rows;
  std::string output_stream;
  {
    Engine a(BackendOptions(SeqBackend::kNfa, 1));
    EXPECT_TRUE(a.ExecuteScript(scenario.ddl).ok());
    auto qa = a.RegisterQuery(scenario.query);
    EXPECT_TRUE(qa.ok()) << qa.status();
    output_stream = qa->output_stream;
    EXPECT_TRUE(
        a.Subscribe(qa->output_stream,
                    [&](const Tuple& t) { rows.push_back(t.ToString()); })
            .ok());
    EXPECT_TRUE(a.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    for (size_t i = 0; i < ckpt_at; ++i) PushEvent(a, events[i]);
    EXPECT_TRUE(a.Checkpoint(dir).ok());
    for (size_t i = ckpt_at; i < kill_at; ++i) PushEvent(a, events[i]);
  }  // crash

  ReplayOptions replay;
  replay.deliver_after[output_stream] = rows.size();
  Engine b(BackendOptions(SeqBackend::kNfa, 1));
  EXPECT_TRUE(b.ExecuteScript(scenario.ddl).ok());
  auto qb = b.RegisterQuery(scenario.query);
  EXPECT_TRUE(qb.ok()) << qb.status();
  EXPECT_TRUE(
      b.Subscribe(qb->output_stream,
                  [&](const Tuple& t) { rows.push_back(t.ToString()); })
          .ok());
  Status recovered = b.RecoverFrom(dir, replay);
  EXPECT_TRUE(recovered.ok()) << recovered;
  for (size_t i = kill_at; i < events.size(); ++i) PushEvent(b, events[i]);
  EXPECT_TRUE(b.AdvanceTime(events.back().ts + Minutes(10)).ok());
  return rows;
}

TEST_P(SeqBackendDifferentialTest, KillRecoverMatchesHistoryReference) {
  const uint32_t seed = GetParam();
  std::mt19937 rng(seed * 40503u + 19);
  const Scenario scenarios[] = {
      SeqScenario(" MODE CHRONICLE", ""),
      LeadingStarScenario(" MODE CHRONICLE"),
      SeqScenario(" MODE RECENT", " OVER [30 SECONDS PRECEDING C3]"),
  };
  int i = 0;
  for (const Scenario& scenario : scenarios) {
    const auto events = MakeTrace(seed + 59 + static_cast<uint32_t>(i), 180,
                                  scenario.streams, 4,
                                  /*with_heartbeats=*/false);
    const auto reference =
        RunSingle(scenario, events, SeqBackend::kHistory, 1);
    const size_t ckpt_at =
        std::uniform_int_distribution<size_t>(0, events.size() - 1)(rng);
    const size_t kill_at =
        std::uniform_int_distribution<size_t>(ckpt_at, events.size())(rng);
    const std::string dir = FreshDir("kill_s" + std::to_string(seed) + "_" +
                                     std::to_string(i));
    EXPECT_EQ(RunKilledNfa(scenario, events, ckpt_at, kill_at, dir),
              reference)
        << "seed " << seed << " scenario " << i << " ckpt_at " << ckpt_at
        << " kill_at " << kill_at;
    std::filesystem::remove_all(dir);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqBackendDifferentialTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace eslev
