// Property-based sweeps over random traces: the pairing modes must
// relate to each other as the §3.1.1 semantics dictate, and the
// operator must agree with a brute-force oracle.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "baseline/naive_join.h"
#include "tests/cep/seq_test_util.h"

namespace eslev {
namespace {

using cep_test::Reading;
using cep_test::SeqBuilder;

struct TraceEvent {
  size_t stream;
  Tuple tuple;
};

// Random interleaved trace over `num_streams` streams.
std::vector<TraceEvent> MakeTrace(uint32_t seed, size_t num_streams,
                                  size_t length) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> stream_dist(0, num_streams - 1);
  auto schema = cep_test::ReadingSchema();
  std::vector<TraceEvent> trace;
  for (size_t i = 0; i < length; ++i) {
    trace.push_back(
        {stream_dist(rng), Reading(schema, "r", "x", Seconds(i + 1))});
  }
  return trace;
}

// Brute-force oracle: all strictly-increasing position assignments.
size_t OracleUnrestrictedCount(const std::vector<TraceEvent>& trace,
                               size_t n) {
  // Count sequences ending at each trigger (last-position arrival).
  size_t total = 0;
  std::function<size_t(size_t, size_t)> combos =
      [&](size_t pos, size_t before_index) -> size_t {
    // Number of ways to fill positions [0, pos] with tuples strictly
    // before trace index `before_index`.
    if (pos == SIZE_MAX) return 1;
    size_t ways = 0;
    for (size_t i = 0; i < before_index; ++i) {
      if (trace[i].stream == pos) {
        ways += combos(pos - 1, i);
      }
    }
    return ways;
  };
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].stream == n - 1) {
      total += combos(n - 2, i);
    }
  }
  return total;
}

// Collect each event's projected (t1, ..., tn) signature.
std::multiset<std::vector<Timestamp>> RunMode(
    const std::vector<TraceEvent>& trace, size_t n, PairingMode mode) {
  std::vector<std::string> aliases;
  for (size_t i = 0; i < n; ++i) aliases.push_back("S" + std::to_string(i));
  SeqBuilder b(aliases);
  auto op = b.Mode(mode).Build();
  CollectOperator out;
  op->AddSink(&out);
  for (const auto& e : trace) {
    EXPECT_TRUE(op->OnTuple(e.stream, e.tuple).ok());
  }
  std::multiset<std::vector<Timestamp>> events;
  for (const Tuple& t : out.tuples()) {
    std::vector<Timestamp> sig;
    for (size_t i = 0; i < n; ++i) sig.push_back(t.value(i).time_value());
    events.insert(sig);
  }
  return events;
}

struct SweepParam {
  uint32_t seed;
  size_t num_streams;
  size_t length;
};

class SeqModePropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SeqModePropertyTest, UnrestrictedMatchesBruteForceOracle) {
  const auto& p = GetParam();
  auto trace = MakeTrace(p.seed, p.num_streams, p.length);
  auto events = RunMode(trace, p.num_streams, PairingMode::kUnrestricted);
  EXPECT_EQ(events.size(), OracleUnrestrictedCount(trace, p.num_streams));
}

TEST_P(SeqModePropertyTest, RestrictedModesAreSubsetsOfUnrestricted) {
  const auto& p = GetParam();
  auto trace = MakeTrace(p.seed, p.num_streams, p.length);
  auto unrestricted =
      RunMode(trace, p.num_streams, PairingMode::kUnrestricted);
  for (PairingMode mode : {PairingMode::kRecent, PairingMode::kChronicle,
                           PairingMode::kConsecutive}) {
    auto events = RunMode(trace, p.num_streams, mode);
    for (const auto& sig : events) {
      EXPECT_TRUE(unrestricted.count(sig) > 0)
          << PairingModeToString(mode) << " produced an event not in "
          << "UNRESTRICTED";
    }
  }
}

TEST_P(SeqModePropertyTest, RecentEmitsAtMostOnePerTrigger) {
  const auto& p = GetParam();
  auto trace = MakeTrace(p.seed, p.num_streams, p.length);
  size_t triggers = 0;
  for (const auto& e : trace) {
    if (e.stream == p.num_streams - 1) ++triggers;
  }
  auto events = RunMode(trace, p.num_streams, PairingMode::kRecent);
  EXPECT_LE(events.size(), triggers);
}

TEST_P(SeqModePropertyTest, ChronicleUsesEachTupleAtMostOnce) {
  const auto& p = GetParam();
  auto trace = MakeTrace(p.seed, p.num_streams, p.length);
  auto events = RunMode(trace, p.num_streams, PairingMode::kChronicle);
  // Timestamps are unique in the trace, so per-position multiset of
  // timestamps must have no duplicates.
  for (size_t pos = 0; pos < p.num_streams; ++pos) {
    std::set<Timestamp> seen;
    for (const auto& sig : events) {
      EXPECT_TRUE(seen.insert(sig[pos]).second)
          << "CHRONICLE reused the tuple at position " << pos;
    }
  }
}

TEST_P(SeqModePropertyTest, ConsecutiveEventsAreAdjacentRuns) {
  const auto& p = GetParam();
  auto trace = MakeTrace(p.seed, p.num_streams, p.length);
  auto events = RunMode(trace, p.num_streams, PairingMode::kConsecutive);
  // For each event, the chosen tuples must be consecutive in the trace.
  for (const auto& sig : events) {
    // Find the trace index of the first element; subsequent ones must
    // follow immediately.
    size_t idx = 0;
    while (idx < trace.size() && trace[idx].tuple.ts() != sig[0]) ++idx;
    ASSERT_LT(idx, trace.size());
    for (size_t pos = 1; pos < p.num_streams; ++pos) {
      ASSERT_LT(idx + pos, trace.size());
      EXPECT_EQ(trace[idx + pos].tuple.ts(), sig[pos])
          << "CONSECUTIVE event is not an adjacent run";
    }
  }
}

TEST_P(SeqModePropertyTest, NaiveJoinAgreesWithUnrestricted) {
  const auto& p = GetParam();
  auto trace = MakeTrace(p.seed, p.num_streams, p.length);
  baseline::NaiveJoinOptions options;
  options.num_streams = p.num_streams;
  baseline::NaiveJoinSequenceDetector det(options);
  for (const auto& e : trace) {
    ASSERT_TRUE(det.OnTuple(e.stream, e.tuple).ok());
  }
  auto events = RunMode(trace, p.num_streams, PairingMode::kUnrestricted);
  EXPECT_EQ(det.matches(), events.size());
}

TEST_P(SeqModePropertyTest, WindowedOutputIsSpanFilteredUnwindowed) {
  const auto& p = GetParam();
  auto trace = MakeTrace(p.seed, p.num_streams, p.length);
  const Duration window = Seconds(7);

  std::vector<std::string> aliases;
  for (size_t i = 0; i < p.num_streams; ++i) {
    aliases.push_back("S" + std::to_string(i));
  }
  SeqBuilder b(aliases);
  b.Window(window, WindowDirection::kPreceding, p.num_streams - 1);
  auto op = b.Mode(PairingMode::kUnrestricted).Build();
  CollectOperator out;
  op->AddSink(&out);
  for (const auto& e : trace) {
    ASSERT_TRUE(op->OnTuple(e.stream, e.tuple).ok());
  }
  std::multiset<std::vector<Timestamp>> windowed;
  for (const Tuple& t : out.tuples()) {
    std::vector<Timestamp> sig;
    for (size_t i = 0; i < p.num_streams; ++i) {
      sig.push_back(t.value(i).time_value());
    }
    windowed.insert(sig);
  }

  auto unwindowed =
      RunMode(trace, p.num_streams, PairingMode::kUnrestricted);
  std::multiset<std::vector<Timestamp>> filtered;
  for (const auto& sig : unwindowed) {
    if (sig.back() - sig.front() <= window) filtered.insert(sig);
  }
  EXPECT_EQ(windowed, filtered);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTraces, SeqModePropertyTest,
    ::testing::Values(SweepParam{1, 2, 24}, SweepParam{2, 2, 40},
                      SweepParam{3, 3, 24}, SweepParam{4, 3, 36},
                      SweepParam{5, 4, 28}, SweepParam{6, 4, 36},
                      SweepParam{7, 3, 30}, SweepParam{8, 2, 32},
                      SweepParam{9, 4, 24}, SweepParam{10, 3, 40}),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.num_streams) + "_len" +
             std::to_string(param_info.param.length);
    });

}  // namespace
}  // namespace eslev
