// Multi-tenant serving differential proof (DESIGN.md §17): on seeded
// random traces, every (tenant, query) registered through QueryServer
// must receive output byte-identical to a dedicated single-tenant
// Engine running the same query alone — across shared-plan-cache
// on/off, Engine and ShardedEngine hosts, queries registered mid-stream
// and, for the single-engine host, across a crash with checkpoint +
// WAL recovery of the session registry.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "recovery/checkpoint.h"
#include "serve/server.h"

namespace eslev {
namespace {

constexpr char kDdl[] = R"sql(
  CREATE STREAM R1(readerid, tagid, tagtime);
  CREATE STREAM R2(readerid, tagid, tagtime);
)sql";

struct Event {
  std::string stream;
  std::string tag;
  Timestamp ts;
};

std::vector<Event> MakeTrace(uint32_t seed, size_t num_events) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick_stream(0, 1);
  std::uniform_int_distribution<int> pick_tag(0, 4);
  std::uniform_int_distribution<Duration> step(Milliseconds(50), Seconds(2));
  std::vector<Event> events;
  Timestamp now = Seconds(1);
  for (size_t i = 0; i < num_events; ++i) {
    events.push_back({pick_stream(rng) == 0 ? "R1" : "R2",
                      "tag" + std::to_string(pick_tag(rng)), now});
    now += step(rng);
  }
  return events;
}

Status PushEvent(QueryServer& server, const Event& e) {
  return server.Push(
      e.stream, {Value::String("r"), Value::String(e.tag), Value::Time(e.ts)},
      e.ts);
}

/// One tenant registration in the serve run. `register_at` is the trace
/// index before which the query is registered (0 = before any event;
/// only stateless queries register mid-stream, so the dedicated
/// reference over the trace suffix is exact).
struct Registration {
  std::string tenant;
  std::string name;
  std::string sql;
  size_t register_at = 0;
};

// Overlapping workload: tenants acme and globex share two canonical
// queries (whitespace variants), initech runs its own; one stateless
// filter joins mid-stream.
std::vector<Registration> Workload() {
  return {
      {"acme", "filter_x", "SELECT * FROM R1 WHERE R1.tagid = 'tag1'", 0},
      {"globex", "same_filter",
       "select * from R1 where R1.tagid = 'tag1'", 0},
      {"acme", "pairs",
       "SELECT R1.tagid, R2.tagtime FROM R1, R2 WHERE SEQ(R1, R2) OVER "
       "[10 SECONDS PRECEDING R2] AND R1.tagid = R2.tagid",
       0},
      {"globex", "pairs_too",
       "SELECT R1.tagid, R2.tagtime FROM R1, R2 WHERE SEQ(R1, R2) OVER "
       "[ 10 SECONDS PRECEDING R2 ] AND R1.tagid = R2.tagid",
       0},
      {"initech", "r2_only", "SELECT * FROM R2 WHERE R2.tagid = 'tag2'", 0},
      {"initech", "late_filter",
       "SELECT * FROM R1 WHERE R1.tagid = 'tag0'", 100},
  };
}

/// Dedicated single-tenant reference: one Engine, one query, the trace
/// suffix from `from_index` on.
std::vector<std::string> RunDedicated(const std::string& sql,
                                      const std::vector<Event>& events,
                                      size_t from_index) {
  Engine engine;
  EXPECT_TRUE(engine.ExecuteScript(kDdl).ok());
  auto q = engine.RegisterQuery(sql);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> rows;
  EXPECT_TRUE(engine
                  .Subscribe(q->output_stream,
                             [&](const Tuple& t) {
                               rows.push_back(t.ToString());
                             })
                  .ok());
  for (size_t i = from_index; i < events.size(); ++i) {
    const Event& e = events[i];
    EXPECT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

using ServedOutputs = std::map<std::pair<std::string, std::string>,
                              std::vector<std::string>>;

void DrainInto(QueryServer& server, const std::vector<Registration>& regs,
               ServedOutputs* out) {
  std::vector<std::string> tenants;
  for (const Registration& r : regs) tenants.push_back(r.tenant);
  std::sort(tenants.begin(), tenants.end());
  tenants.erase(std::unique(tenants.begin(), tenants.end()), tenants.end());
  for (const std::string& tenant : tenants) {
    auto session = server.AttachSession(tenant);
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE(session
                    ->Drain([&](const ServedEmission& e) {
                      (*out)[{tenant, e.query}].push_back(e.tuple.ToString());
                    })
                    .ok());
  }
}

/// Serve run over `host`; registers the workload (respecting
/// register_at), pushes the trace, drains per tenant.
void RunServed(ServeHost* host, bool share, const std::vector<Event>& events,
               const std::vector<Registration>& regs, ServedOutputs* out) {
  QueryServerOptions options;
  options.share_plans = share;
  QueryServer server(host, options);
  ASSERT_TRUE(server.ExecuteScript(kDdl).ok());
  std::map<std::string, Session> sessions;
  for (const Registration& r : regs) {
    if (!sessions.count(r.tenant)) {
      auto session = server.OpenSession(r.tenant);
      ASSERT_TRUE(session.ok()) << session.status();
      sessions.emplace(r.tenant, *session);
    }
  }
  for (const Registration& r : regs) {
    if (r.register_at != 0) continue;
    auto info = sessions.at(r.tenant).Register(r.name, r.sql);
    ASSERT_TRUE(info.ok()) << info.status();
  }
  for (size_t i = 0; i < events.size(); ++i) {
    for (const Registration& r : regs) {
      if (r.register_at == i && i != 0) {
        auto poll = server.Poll();  // quiesce before the topology change
        ASSERT_TRUE(poll.ok()) << poll.status();
        auto info = sessions.at(r.tenant).Register(r.name, r.sql);
        ASSERT_TRUE(info.ok()) << info.status();
      }
    }
    ASSERT_TRUE(PushEvent(server, events[i]).ok());
  }
  auto poll = server.Poll();
  ASSERT_TRUE(poll.ok()) << poll.status();
  DrainInto(server, regs, out);
}

void ExpectMatchesDedicated(const ServedOutputs& served,
                            const std::vector<Event>& events,
                            const std::vector<Registration>& regs,
                            const std::string& label) {
  for (const Registration& r : regs) {
    const auto reference = RunDedicated(r.sql, events, r.register_at);
    auto it = served.find({r.tenant, r.name});
    std::vector<std::string> got =
        it == served.end() ? std::vector<std::string>{} : it->second;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, reference)
        << label << ": tenant " << r.tenant << " query " << r.name;
  }
}

class ServeDifferentialTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ServeDifferentialTest, EngineHostMatchesDedicatedEngines) {
  const auto events = MakeTrace(GetParam(), 250);
  const auto regs = Workload();
  for (bool share : {true, false}) {
    Engine engine;
    EngineHost host(&engine);
    ServedOutputs served;
    RunServed(&host, share, events, regs, &served);
    ExpectMatchesDedicated(served, events, regs,
                           share ? "engine/shared" : "engine/unshared");
  }
}

TEST_P(ServeDifferentialTest, ShardedHostMatchesDedicatedEngines) {
  const auto events = MakeTrace(GetParam() ^ 0x5bd1e995u, 250);
  const auto regs = Workload();
  for (bool share : {true, false}) {
    for (size_t shards : {2u, 4u}) {
      ShardedEngineOptions options;
      options.num_shards = shards;
      ShardedEngine engine(options);
      ShardedHost host(&engine);
      ServedOutputs served;
      RunServed(&host, share, events, regs, &served);
      ExpectMatchesDedicated(served, events, regs,
                             (share ? "sharded/shared/" : "sharded/unshared/") +
                                 std::to_string(shards));
    }
  }
}

TEST_P(ServeDifferentialTest, RecoveredServerMatchesDedicatedEngines) {
  const std::string dir = ::testing::TempDir() + "serve_diff_" +
                          std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto events = MakeTrace(GetParam() + 7, 200);
  // All registrations up front: recovery must reproduce the full
  // registry, and stateful queries must resume from restored state.
  std::vector<Registration> regs = Workload();
  for (Registration& r : regs) r.register_at = 0;
  const size_t ckpt_at = 80, crash_at = 140;

  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;

  ServedOutputs served;
  {
    Engine engine;
    EngineHost host(&engine);
    QueryServer server(&host);
    ASSERT_TRUE(
        server.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    ASSERT_TRUE(server.ExecuteScript(kDdl).ok());
    for (const Registration& r : regs) {
      if (!server.AttachSession(r.tenant).ok()) {
        ASSERT_TRUE(server.OpenSession(r.tenant).ok());
      }
      auto session = server.AttachSession(r.tenant);
      ASSERT_TRUE(session.ok());
      auto info = session->Register(r.name, r.sql);
      ASSERT_TRUE(info.ok()) << info.status();
    }
    for (size_t i = 0; i < ckpt_at; ++i) {
      ASSERT_TRUE(PushEvent(server, events[i]).ok());
    }
    DrainInto(server, regs, &served);
    ASSERT_TRUE(server.Checkpoint(dir).ok());
    for (size_t i = ckpt_at; i < crash_at; ++i) {
      ASSERT_TRUE(PushEvent(server, events[i]).ok());
    }
    DrainInto(server, regs, &served);
  }  // crash: emissions after the last drain are re-derived from WAL

  {
    Engine engine;
    EngineHost host(&engine);
    QueryServer server(&host);
    const Status recovered = server.RecoverFrom(dir);
    ASSERT_TRUE(recovered.ok()) << recovered;
    for (size_t i = crash_at; i < events.size(); ++i) {
      ASSERT_TRUE(PushEvent(server, events[i]).ok());
    }
    auto poll = server.Poll();
    ASSERT_TRUE(poll.ok()) << poll.status();
    DrainInto(server, regs, &served);
  }

  ExpectMatchesDedicated(served, events, regs, "recovered");
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeDifferentialTest,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace eslev
