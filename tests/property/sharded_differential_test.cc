// Differential property sweep: on seeded random traces, a ShardedEngine
// at 1, 2 and 4 shards must emit byte-identical output (after a
// timestamp-stable sort) to a single Engine, across pairing modes and
// windows. Tag-partitionable SEQ queries run fully sharded; CONSECUTIVE
// and star-group queries depend on cross-tag adjacency in the joint
// history, so their source streams use the single-shard fallback.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"

namespace eslev {
namespace {

struct Event {
  std::string stream;
  std::string tag;
  Timestamp ts;
};

// Random trace over `streams`: strictly increasing timestamps, tags
// drawn from a small pool so sequences complete often.
std::vector<Event> MakeTrace(uint32_t seed, size_t num_events,
                             const std::vector<std::string>& streams,
                             int num_tags) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<size_t> pick_stream(0, streams.size() - 1);
  std::uniform_int_distribution<int> pick_tag(0, num_tags - 1);
  std::uniform_int_distribution<Duration> step(Milliseconds(50), Seconds(2));
  std::vector<Event> events;
  Timestamp now = Seconds(1);
  for (size_t i = 0; i < num_events; ++i) {
    events.push_back({streams[pick_stream(rng)],
                      "tag" + std::to_string(pick_tag(rng)), now});
    now += step(rng);
  }
  return events;
}

struct Scenario {
  std::string ddl;
  std::string query;
  std::vector<std::string> streams;
  std::vector<std::string> single_shard_streams;  // empty: partitioned
};

std::vector<std::string> RunSingle(const Scenario& scenario,
                                   const std::vector<Event>& events) {
  Engine engine;
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> rows;
  EXPECT_TRUE(engine
                  .Subscribe(q->output_stream,
                             [&](const Tuple& t) { rows.push_back(t.ToString()); })
                  .ok());
  Timestamp last = kMinTimestamp;
  for (const Event& e : events) {
    EXPECT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
    last = e.ts;
  }
  EXPECT_TRUE(engine.AdvanceTime(last + Minutes(10)).ok());
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> RunSharded(const Scenario& scenario,
                                    const std::vector<Event>& events,
                                    size_t num_shards) {
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  ShardedEngine engine(options);
  EXPECT_TRUE(engine.ExecuteScript(scenario.ddl).ok());
  auto q = engine.RegisterQuery(scenario.query);
  EXPECT_TRUE(q.ok()) << q.status();
  for (const std::string& s : scenario.single_shard_streams) {
    EXPECT_TRUE(engine.SetSingleShard(s).ok());
  }
  std::vector<std::string> rows;
  EXPECT_TRUE(engine
                  .Subscribe(q->output_stream,
                             [&](const Tuple& t) { rows.push_back(t.ToString()); })
                  .ok());
  Timestamp last = kMinTimestamp;
  for (const Event& e : events) {
    EXPECT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
    last = e.ts;
  }
  EXPECT_TRUE(engine.AdvanceTime(last + Minutes(10)).ok());
  EXPECT_TRUE(engine.Flush().ok());
  engine.DrainOutputs();
  std::sort(rows.begin(), rows.end());
  return rows;
}

void ExpectDifferentialEquivalence(const Scenario& scenario, uint32_t seed,
                                   size_t num_events, int num_tags) {
  const auto events = MakeTrace(seed, num_events, scenario.streams, num_tags);
  const auto reference = RunSingle(scenario, events);
  for (size_t shards : {1u, 2u, 4u}) {
    const auto sharded = RunSharded(scenario, events, shards);
    ASSERT_EQ(sharded.size(), reference.size())
        << "seed " << seed << " at " << shards << " shards";
    EXPECT_EQ(sharded, reference)
        << "seed " << seed << " at " << shards << " shards";
  }
}

constexpr char kSeqDdl[] = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
)sql";

// Tag-partitionable SEQ(C1, C2, C3): pairwise tagid equality keeps every
// match inside one partition.
Scenario PartitionedSeq(const std::string& mode_clause,
                        const std::string& window_clause) {
  Scenario s;
  s.ddl = kSeqDdl;
  s.query = "SELECT C3.tagid, C1.tagtime, C3.tagtime FROM C1, C2, C3 "
            "WHERE SEQ(C1, C2, C3)" +
            window_clause + mode_clause +
            " AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";
  s.streams = {"C1", "C2", "C3"};
  return s;
}

class ShardedDifferentialTest
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShardedDifferentialTest, PartitionedSeqAcrossModesAndWindows) {
  const uint32_t seed = GetParam();
  for (const char* mode : {"", " MODE RECENT", " MODE CHRONICLE"}) {
    for (const char* window : {"", " OVER [60 SECONDS PRECEDING C3]"}) {
      ExpectDifferentialEquivalence(PartitionedSeq(mode, window),
                                    seed ^ 0x9e3779b9u, 300, 6);
    }
  }
}

TEST_P(ShardedDifferentialTest, ConsecutiveRequiresSingleShardRouting) {
  // CONSECUTIVE adjacency is a property of the joint history across all
  // tags — only single-shard routing preserves it.
  Scenario s = PartitionedSeq(" MODE CONSECUTIVE", "");
  s.single_shard_streams = s.streams;
  ExpectDifferentialEquivalence(s, GetParam(), 300, 3);
}

TEST_P(ShardedDifferentialTest, ConsecutiveWindowedSingleShard) {
  Scenario s =
      PartitionedSeq(" MODE CONSECUTIVE", " OVER [30 SECONDS PRECEDING C3]");
  s.single_shard_streams = s.streams;
  ExpectDifferentialEquivalence(s, GetParam() + 17, 300, 3);
}

TEST_P(ShardedDifferentialTest, TrailingStarSingleShard) {
  // Star-group extension also depends on cross-tag interleaving in the
  // joint history: single-shard fallback, equivalence still required.
  Scenario s;
  s.ddl = R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql";
  s.query = R"sql(
    SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
      AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
      AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
  )sql";
  s.streams = {"R1", "R2"};
  s.single_shard_streams = s.streams;
  ExpectDifferentialEquivalence(s, GetParam() + 101, 250, 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferentialTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace eslev
