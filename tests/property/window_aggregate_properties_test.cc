// Property sweeps for windowed aggregation: the operator's incremental
// (retract) and recompute paths must both equal a brute-force oracle
// over the window contents, for random value streams.

#include <gtest/gtest.h>

#include <random>

#include "exec/aggregate.h"
#include "exec/basic_ops.h"
#include "expr/binder.h"
#include "sql/parser.h"

namespace eslev {
namespace {

struct AggParam {
  uint32_t seed;
  int window_s;
  bool row_window;
};

class WindowAggPropertyTest : public ::testing::TestWithParam<AggParam> {
 protected:
  void SetUp() override {
    schema_ = Schema::Make(
        {{"v", TypeId::kInt64}, {"t_time", TypeId::kTimestamp}});
    scope_.AddEntry({"s", schema_, 0, false});
  }

  BoundExprPtr Bind(const std::string& text) {
    auto parsed = ParseExpression(text);
    EXPECT_TRUE(parsed.ok());
    Binder binder(&scope_, &registry_);
    auto bound = binder.Bind(**parsed);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return std::move(bound).ValueUnsafe();
  }

  SchemaPtr schema_;
  BindScope scope_;
  FunctionRegistry registry_;
};

TEST_P(WindowAggPropertyTest, IncrementalEqualsBruteForce) {
  const auto& p = GetParam();
  std::mt19937 rng(p.seed);
  std::uniform_int_distribution<int64_t> value_dist(-50, 200);
  std::uniform_int_distribution<Duration> gap_dist(Milliseconds(100),
                                                   Seconds(3));

  // Operator under test: count, sum (retractable), min, max (recompute).
  std::vector<AggSpec> aggs;
  for (const char* name : {"count", "sum", "min", "max"}) {
    AggSpec spec;
    spec.fn = *registry_.FindAggregate(name);
    spec.arg = Bind("v");
    aggs.push_back(std::move(spec));
  }
  std::vector<BoundExprPtr> proj;
  for (size_t i = 0; i < 4; ++i) {
    proj.push_back(std::make_unique<BoundAggRef>(i));
  }
  auto out_schema = Schema::Make({{"cnt", TypeId::kInt64},
                                  {"sum", TypeId::kDouble},
                                  {"min", TypeId::kInt64},
                                  {"max", TypeId::kInt64}});
  WindowSpec w;
  w.row_based = p.row_window;
  w.length = p.row_window ? p.window_s : Seconds(p.window_s);
  AggregateOperator op(std::move(aggs), {}, std::move(proj), nullptr,
                       out_schema, w);
  CollectOperator out;
  op.AddSink(&out);

  // Feed a random stream, checking against the oracle at each step.
  std::vector<Tuple> history;
  Timestamp ts = 0;
  for (int i = 0; i < 120; ++i) {
    ts += gap_dist(rng);
    Tuple t = *MakeTuple(schema_, {Value::Int(value_dist(rng)),
                                   Value::Time(ts)},
                         ts);
    history.push_back(t);
    ASSERT_TRUE(op.OnTuple(0, t).ok());

    // Oracle: recompute over the window contents.
    std::vector<const Tuple*> in_window;
    if (p.row_window) {
      const size_t start = history.size() > static_cast<size_t>(p.window_s)
                               ? history.size() - p.window_s
                               : 0;
      for (size_t j = start; j < history.size(); ++j) {
        in_window.push_back(&history[j]);
      }
    } else {
      for (const Tuple& h : history) {
        if (h.ts() >= ts - Seconds(p.window_s)) in_window.push_back(&h);
      }
    }
    int64_t cnt = static_cast<int64_t>(in_window.size());
    int64_t sum = 0, mn = INT64_MAX, mx = INT64_MIN;
    for (const Tuple* h : in_window) {
      const int64_t v = h->value(0).int_value();
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }

    ASSERT_EQ(out.tuples().size(), static_cast<size_t>(i + 1));
    const Tuple& got = out.tuples().back();
    EXPECT_EQ(got.value(0).int_value(), cnt) << "count at step " << i;
    EXPECT_DOUBLE_EQ(got.value(1).double_value(),
                     static_cast<double>(sum))
        << "sum at step " << i;
    EXPECT_EQ(got.value(2).int_value(), mn) << "min at step " << i;
    EXPECT_EQ(got.value(3).int_value(), mx) << "max at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowAggPropertyTest,
    ::testing::Values(AggParam{21, 5, false}, AggParam{22, 10, false},
                      AggParam{23, 30, false}, AggParam{24, 3, true},
                      AggParam{25, 10, true}, AggParam{26, 1, true}),
    [](const ::testing::TestParamInfo<AggParam>& param_info) {
      return std::string(param_info.param.row_window ? "rows" : "range") +
             std::to_string(param_info.param.window_s) + "_seed" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace eslev
