// Engine checkpoint/restore and crash-recovery tests (DESIGN.md §10):
// state round-trips for the dedup pipeline, SEQ pairing modes, table
// targets, and anchored EXCEPTION_SEQ deadlines; the fault-injection
// matrix (missing file, version mismatch, truncated file, mid-file
// corruption, topology mismatch) must fail with a clean Status and no
// partial restore; WAL replay must suppress already-delivered emissions.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "recovery/checkpoint.h"
#include "recovery/codec.h"

namespace eslev {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Example 1 dedup feeding a running count — two chained queries, a
// windowed NOT EXISTS buffer, and an aggregate accumulator to restore.
constexpr char kDedupDdl[] = R"sql(
  CREATE STREAM readings(reader_id, tag_id, read_time);
  CREATE STREAM cleaned(reader_id, tag_id, read_time);
  INSERT INTO cleaned
  SELECT * FROM readings AS r1
  WHERE NOT EXISTS
    (SELECT * FROM TABLE( readings OVER
        (RANGE 1 seconds PRECEDING CURRENT)) AS r2
     WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
)sql";

struct DedupHarness {
  Engine engine;
  std::vector<std::string> cleaned;
  std::vector<std::string> counts;

  DedupHarness() {
    EXPECT_TRUE(engine.ExecuteScript(kDedupDdl).ok());
    auto q = engine.RegisterQuery("SELECT count(tag_id) FROM cleaned");
    EXPECT_TRUE(q.ok()) << q.status();
    EXPECT_TRUE(engine
                    .Subscribe("cleaned",
                               [this](const Tuple& t) {
                                 cleaned.push_back(t.ToString());
                               })
                    .ok());
    EXPECT_TRUE(engine
                    .Subscribe(q->output_stream,
                               [this](const Tuple& t) {
                                 counts.push_back(t.ToString());
                               })
                    .ok());
  }

  void Push(const std::string& tag, Timestamp ts) {
    EXPECT_TRUE(engine
                    .Push("readings",
                          {Value::String("r"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  }
};

// Events with duplicates inside the 1s dedup window and across it.
std::vector<std::pair<std::string, Timestamp>> DedupTrace() {
  return {{"A", Milliseconds(100)}, {"A", Milliseconds(400)},
          {"B", Milliseconds(700)}, {"A", Milliseconds(1500)},
          {"B", Milliseconds(1600)}, {"C", Milliseconds(1700)},
          {"A", Milliseconds(2900)}, {"C", Milliseconds(3100)}};
}

TEST(CheckpointRestoreTest, DedupPipelineContinuesIdentically) {
  const std::string dir = FreshDir("dedup");
  const auto trace = DedupTrace();
  const size_t cut = 4;

  DedupHarness a;
  for (size_t i = 0; i < cut; ++i) a.Push(trace[i].first, trace[i].second);
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
  const size_t cleaned_at_cut = a.cleaned.size();
  const size_t counts_at_cut = a.counts.size();

  DedupHarness b;
  ASSERT_TRUE(b.engine.Restore(dir).ok());
  EXPECT_EQ(b.engine.current_time(), a.engine.current_time());

  for (size_t i = cut; i < trace.size(); ++i) {
    a.Push(trace[i].first, trace[i].second);
    b.Push(trace[i].first, trace[i].second);
  }
  // B emits exactly A's post-cut suffix: the restored window buffer must
  // still filter duplicates against pre-cut arrivals, and the restored
  // count accumulator continues from the pre-cut total.
  ASSERT_GT(a.cleaned.size(), cleaned_at_cut);
  EXPECT_EQ(b.cleaned,
            std::vector<std::string>(a.cleaned.begin() + cleaned_at_cut,
                                     a.cleaned.end()));
  EXPECT_EQ(b.counts,
            std::vector<std::string>(a.counts.begin() + counts_at_cut,
                                     a.counts.end()));
  std::filesystem::remove_all(dir);
}

constexpr char kSeqDdl[] = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
)sql";

struct SeqHarness {
  Engine engine;
  std::vector<std::string> rows;

  explicit SeqHarness(const std::string& query) {
    EXPECT_TRUE(engine.ExecuteScript(kSeqDdl).ok());
    auto q = engine.RegisterQuery(query);
    EXPECT_TRUE(q.ok()) << q.status();
    EXPECT_TRUE(
        engine
            .Subscribe(q->output_stream,
                       [this](const Tuple& t) { rows.push_back(t.ToString()); })
            .ok());
  }

  void Push(const std::string& stream, const std::string& tag, Timestamp ts) {
    EXPECT_TRUE(engine
                    .Push(stream,
                          {Value::String("r"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  }
};

TEST(CheckpointRestoreTest, SeqJointHistorySurvivesAcrossAllPairingModes) {
  // Interleaved C1/C2/C3 arrivals for two tags; the cut lands with open
  // partial sequences in every mode.
  const std::vector<std::pair<std::string, std::string>> trace = {
      {"C1", "x"}, {"C1", "y"}, {"C2", "x"}, {"C1", "x"},
      {"C2", "y"}, {"C3", "x"}, {"C2", "x"}, {"C3", "y"},
      {"C1", "y"}, {"C3", "x"}, {"C2", "y"}, {"C3", "y"},
  };
  for (const char* mode :
       {"", " MODE RECENT", " MODE CHRONICLE", " MODE CONSECUTIVE"}) {
    for (const char* window : {"", " OVER [5 SECONDS PRECEDING C3]"}) {
      const std::string query =
          "SELECT C3.tagid, C1.tagtime, C3.tagtime FROM C1, C2, C3 "
          "WHERE SEQ(C1, C2, C3)" +
          std::string(window) + mode +
          " AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";
      const std::string dir = FreshDir("seq");
      const size_t cut = 5;

      SeqHarness a(query);
      Timestamp ts = Seconds(1);
      for (size_t i = 0; i < cut; ++i, ts += Seconds(1)) {
        a.Push(trace[i].first, trace[i].second, ts);
      }
      ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
      const size_t rows_at_cut = a.rows.size();

      SeqHarness b(query);
      ASSERT_TRUE(b.engine.Restore(dir).ok());
      for (size_t i = cut; i < trace.size(); ++i, ts += Seconds(1)) {
        a.Push(trace[i].first, trace[i].second, ts);
        b.Push(trace[i].first, trace[i].second, ts);
      }
      EXPECT_EQ(b.rows,
                std::vector<std::string>(a.rows.begin() + rows_at_cut,
                                         a.rows.end()))
          << "mode '" << mode << "' window '" << window << "'";
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(CheckpointRestoreTest, TableContentsRestored) {
  const std::string dir = FreshDir("table");
  const char* ddl = R"sql(
    CREATE STREAM moves(tagid, loc, move_time);
    CREATE TABLE movement_log(tagid, loc, move_time);
    INSERT INTO movement_log SELECT * FROM moves;
  )sql";
  Engine a;
  ASSERT_TRUE(a.ExecuteScript(ddl).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(a.Push("moves",
                       {Value::String("t" + std::to_string(i)),
                        Value::String("dock"), Value::Time(Seconds(i + 1))},
                       Seconds(i + 1))
                    .ok());
  }
  ASSERT_TRUE(a.Checkpoint(dir).ok());

  Engine b;
  ASSERT_TRUE(b.ExecuteScript(ddl).ok());
  ASSERT_TRUE(b.Restore(dir).ok());
  ASSERT_EQ(b.FindTable("movement_log")->num_rows(), 5u);
  // The restored table keeps answering snapshot queries.
  auto rows = b.ExecuteSnapshot("SELECT count(tagid) FROM movement_log");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ((*rows)[0].value(0).int_value(), 5);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRestoreTest, ExceptionSeqDeadlineFiresAfterRestore) {
  // A partial lab-workflow sequence is anchored before the cut; its
  // 1-hour deadline must survive the restore and fire on a heartbeat
  // alone (active expiration with a checkpointed deadline).
  const std::string dir = FreshDir("exception");
  const char* ddl = R"sql(
    CREATE STREAM A1(readerid, tagid, tagtime);
    CREATE STREAM A2(readerid, tagid, tagtime);
    CREATE STREAM A3(readerid, tagid, tagtime);
  )sql";
  const char* query =
      "SELECT A1.tagid, A2.tagid, A3.tagid FROM A1, A2, A3 "
      "WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]";

  Engine a;
  ASSERT_TRUE(a.ExecuteScript(ddl).ok());
  auto qa = a.RegisterQuery(query);
  ASSERT_TRUE(qa.ok()) << qa.status();
  ASSERT_TRUE(a.Push("A1",
                     {Value::String("r"), Value::String("sample"),
                      Value::Time(Seconds(10))},
                     Seconds(10))
                  .ok());
  ASSERT_TRUE(a.Checkpoint(dir).ok());

  Engine b;
  ASSERT_TRUE(b.ExecuteScript(ddl).ok());
  auto qb = b.RegisterQuery(query);
  ASSERT_TRUE(qb.ok()) << qb.status();
  size_t alerts = 0;
  ASSERT_TRUE(
      b.Subscribe(qb->output_stream, [&](const Tuple&) { ++alerts; }).ok());
  ASSERT_TRUE(b.Restore(dir).ok());
  // Before the deadline: silent. Past it: exactly one violation.
  ASSERT_TRUE(b.AdvanceTime(Seconds(10) + Minutes(30)).ok());
  EXPECT_EQ(alerts, 0u);
  ASSERT_TRUE(b.AdvanceTime(Seconds(10) + Hours(2)).ok());
  EXPECT_EQ(alerts, 1u);
  std::filesystem::remove_all(dir);
}

// ---- fault injection ------------------------------------------------------

TEST(CheckpointFaultTest, MissingCheckpointFileFails) {
  DedupHarness b;
  Status st = b.engine.Restore(FreshDir("missing"));
  EXPECT_TRUE(st.IsIoError()) << st;
  // No partial restore: the engine still processes normally.
  b.Push("A", Milliseconds(100));
  EXPECT_EQ(b.cleaned.size(), 1u);
}

TEST(CheckpointFaultTest, VersionMismatchFailsAndLeavesEngineUntouched) {
  const std::string dir = FreshDir("version");
  DedupHarness a;
  a.Push("A", Milliseconds(100));
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());

  // Rewrite the header frame with a bumped version, keeping the rest.
  const std::string path = dir + "/" + kCheckpointFileName;
  auto bytes = ReadFileAll(path);
  ASSERT_TRUE(bytes.ok());
  auto frames = ScanFrames(bytes->data(), bytes->size());
  ASSERT_TRUE(frames.ok());
  BinaryEncoder header;
  header.PutU32(kCheckpointMagic);
  header.PutU32(kCheckpointVersion + 1);
  BinaryDecoder old_header(frames->payloads[0]);
  (void)*old_header.GetU32();
  (void)*old_header.GetU32();
  header.PutString("");  // payload shape no longer matters past version
  std::string rewritten;
  AppendFrame(header.buffer(), &rewritten);
  for (size_t i = 1; i < frames->payloads.size(); ++i) {
    AppendFrame(frames->payloads[i], &rewritten);
  }
  ASSERT_TRUE(WriteFileAtomic(path, rewritten).ok());

  DedupHarness b;
  b.Push("B", Milliseconds(50));
  Status st = b.engine.Restore(dir);
  ASSERT_TRUE(st.IsIoError()) << st;
  EXPECT_NE(st.ToString().find("version"), std::string::npos) << st;
  // Untouched: pre-existing emissions intact, processing continues.
  EXPECT_EQ(b.cleaned.size(), 1u);
  b.Push("C", Milliseconds(200));
  EXPECT_EQ(b.cleaned.size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFaultTest, TruncatedCheckpointFails) {
  const std::string dir = FreshDir("truncated");
  DedupHarness a;
  a.Push("A", Milliseconds(100));
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
  const std::string path = dir + "/" + kCheckpointFileName;
  auto bytes = ReadFileAll(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(WriteFileAtomic(path, bytes->substr(0, bytes->size() - 5)).ok());

  DedupHarness b;
  Status st = b.engine.Restore(dir);
  EXPECT_TRUE(st.IsIoError()) << st;
  b.Push("A", Milliseconds(100));
  EXPECT_EQ(b.cleaned.size(), 1u);  // no partial restore
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFaultTest, MidFileCorruptionFails) {
  const std::string dir = FreshDir("corrupt");
  DedupHarness a;
  a.Push("A", Milliseconds(100));
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
  const std::string path = dir + "/" + kCheckpointFileName;
  auto bytes = ReadFileAll(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[12] ^= 0x01;  // header frame payload, with frames after it
  ASSERT_TRUE(WriteFileAtomic(path, corrupted).ok());

  DedupHarness b;
  EXPECT_TRUE(b.engine.Restore(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFaultTest, TopologyMismatchFails) {
  const std::string dir = FreshDir("topology");
  DedupHarness a;
  a.Push("A", Milliseconds(100));
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());

  // An engine missing the count query must refuse the checkpoint.
  Engine b;
  ASSERT_TRUE(b.ExecuteScript(kDedupDdl).ok());
  Status st = b.Restore(dir);
  EXPECT_TRUE(st.IsIoError()) << st;
  std::filesystem::remove_all(dir);
}

// ---- WAL + crash recovery -------------------------------------------------

TEST(CrashRecoveryTest, CheckpointPlusWalSuffixReproducesRun) {
  const std::string dir = FreshDir("recover");
  std::filesystem::create_directories(dir);
  const auto trace = DedupTrace();
  const size_t ckpt_at = 3, crash_at = 6;

  // Reference: one uninterrupted run.
  DedupHarness ref;
  for (const auto& [tag, ts] : trace) ref.Push(tag, ts);

  // Run A: WAL from the start, checkpoint mid-way, crash later.
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;  // every append durable
  std::vector<std::string> delivered;
  {
    DedupHarness a;
    ASSERT_TRUE(
        a.engine.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    for (size_t i = 0; i < ckpt_at; ++i) a.Push(trace[i].first, trace[i].second);
    ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
    for (size_t i = ckpt_at; i < crash_at; ++i) {
      a.Push(trace[i].first, trace[i].second);
    }
    delivered = a.cleaned;
  }  // crash

  // Run B: recover, then feed the tail.
  DedupHarness b;
  ASSERT_TRUE(b.engine.RecoverFrom(dir).ok());
  EXPECT_TRUE(b.cleaned.empty());  // replay emissions suppressed
  for (size_t i = crash_at; i < trace.size(); ++i) {
    b.Push(trace[i].first, trace[i].second);
  }
  std::vector<std::string> combined = delivered;
  combined.insert(combined.end(), b.cleaned.begin(), b.cleaned.end());
  EXPECT_EQ(combined, ref.cleaned);

  const MetricsSnapshot snap = b.engine.Metrics();
  EXPECT_GT(snap.counters.at("recovery.wal_records_replayed"), 0u);
  EXPECT_GT(snap.counters.at("recovery.duplicates_suppressed"), 0u);
  std::filesystem::remove_all(dir);
}

TEST(CrashRecoveryTest, TornWalTailRecoversAndCountsMetric) {
  const std::string dir = FreshDir("torn");
  std::filesystem::create_directories(dir);
  const std::string wal_path = dir + "/" + kWalFileName;
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;
  {
    DedupHarness a;
    ASSERT_TRUE(a.engine.EnableWal(wal_path, wal_options).ok());
    ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
    a.Push("A", Milliseconds(100));
    a.Push("B", Milliseconds(200));
  }
  // Crash tore the final frame.
  auto bytes = ReadFileAll(wal_path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteFileAtomic(wal_path, bytes->substr(0, bytes->size() - 6)).ok());

  DedupHarness b;
  ASSERT_TRUE(b.engine.RecoverFrom(dir).ok());
  const MetricsSnapshot snap = b.engine.Metrics();
  EXPECT_EQ(snap.counters.at("recovery_truncated_frames"), 1u);
  // Only the first record survived the tear; the second is lost.
  EXPECT_EQ(snap.counters.at("recovery.wal_records_replayed"), 1u);
  // The re-enabled WAL appends cleanly past the truncation point.
  b.Push("C", Milliseconds(300));
  auto read = ReadWal(wal_path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_FALSE(read->torn_tail);
  std::filesystem::remove_all(dir);
}

TEST(CrashRecoveryTest, WalOnlyReplayWithoutCheckpoint) {
  const std::string dir = FreshDir("walonly");
  std::filesystem::create_directories(dir);
  const std::string wal_path = dir + "/" + kWalFileName;
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;
  const auto trace = DedupTrace();
  std::vector<std::string> ref;
  {
    DedupHarness a;
    ASSERT_TRUE(a.engine.EnableWal(wal_path, wal_options).ok());
    for (const auto& [tag, ts] : trace) a.Push(tag, ts);
    ref = a.cleaned;
  }
  DedupHarness b;
  auto stats = b.engine.ReplayWal(wal_path);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->records_replayed, trace.size());
  EXPECT_EQ(stats->records_skipped, 0u);
  EXPECT_TRUE(b.cleaned.empty());  // default: muted
  // Same state: the next push dedups against replayed history.
  DedupHarness c;
  for (const auto& [tag, ts] : trace) c.Push(tag, ts);
  b.Push("A", Milliseconds(4200));
  c.Push("A", Milliseconds(4200));
  ASSERT_EQ(b.cleaned.size(), 1u);  // outside the window: re-emitted
  EXPECT_EQ(b.cleaned, std::vector<std::string>(c.cleaned.end() - b.cleaned.size(),
                                                c.cleaned.end()));
  std::filesystem::remove_all(dir);
}

TEST(CrashRecoveryTest, DeliverAfterReplaysExactlyTheLostTail) {
  const std::string dir = FreshDir("deliverafter");
  std::filesystem::create_directories(dir);
  const std::string wal_path = dir + "/" + kWalFileName;
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;
  const auto trace = DedupTrace();
  std::vector<std::string> all;
  {
    DedupHarness a;
    ASSERT_TRUE(a.engine.EnableWal(wal_path, wal_options).ok());
    for (const auto& [tag, ts] : trace) a.Push(tag, ts);
    all = a.cleaned;
  }
  ASSERT_GE(all.size(), 3u);
  // The consumer durably acknowledged the first 2 cleaned emissions;
  // replay must re-deliver exactly the rest.
  DedupHarness b;
  ReplayOptions options;
  options.deliver_after["cleaned"] = 2;
  auto stats = b.engine.ReplayWal(wal_path, options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(b.cleaned, std::vector<std::string>(all.begin() + 2, all.end()));
  std::filesystem::remove_all(dir);
}

TEST(CrashRecoveryTest, RecoverFromRefusesWhenWalAlreadyEnabled) {
  const std::string dir = FreshDir("refuse");
  std::filesystem::create_directories(dir);
  DedupHarness a;
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
  ASSERT_TRUE(a.engine.EnableWal(dir + "/" + kWalFileName).ok());
  EXPECT_TRUE(a.engine.RecoverFrom(dir).IsInvalid());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eslev
