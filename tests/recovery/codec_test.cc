// Binary codec and frame-scanner unit tests (recovery/codec.h): value /
// schema / tuple round-trips, schema deduplication, and the torn-tail
// vs mid-file-corruption classification the WAL and checkpoint formats
// rely on.

#include "recovery/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace eslev {
namespace {

TEST(BinaryCodecTest, ScalarRoundTrip) {
  BinaryEncoder enc;
  enc.PutU8(0xAB);
  enc.PutBool(true);
  enc.PutBool(false);
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  enc.PutDouble(3.5);
  enc.PutString("hello");
  enc.PutString("");

  BinaryDecoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU8(), 0xAB);
  EXPECT_EQ(*dec.GetBool(), true);
  EXPECT_EQ(*dec.GetBool(), false);
  EXPECT_EQ(*dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*dec.GetI64(), -42);
  EXPECT_EQ(*dec.GetDouble(), 3.5);
  EXPECT_EQ(*dec.GetString(), "hello");
  EXPECT_EQ(*dec.GetString(), "");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(BinaryCodecTest, ValueRoundTripAllTypes) {
  const std::vector<Value> values = {
      Value::Null(),         Value::Bool(true),      Value::Bool(false),
      Value::Int(INT64_MIN), Value::Int(INT64_MAX),  Value::Double(-0.0),
      Value::Double(1e300),  Value::String("tag42"), Value::Time(123456789),
  };
  BinaryEncoder enc;
  for (const Value& v : values) enc.PutValue(v);
  BinaryDecoder dec(enc.buffer());
  for (const Value& v : values) {
    auto got = dec.GetValue();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->type(), v.type());
    EXPECT_TRUE(*got == v) << got->ToString() << " vs " << v.ToString();
  }
  EXPECT_TRUE(dec.AtEnd());
}

TEST(BinaryCodecTest, NanDoubleSurvivesBitExactly) {
  BinaryEncoder enc;
  enc.PutDouble(std::nan(""));
  BinaryDecoder dec(enc.buffer());
  EXPECT_TRUE(std::isnan(*dec.GetDouble()));
}

TEST(BinaryCodecTest, TupleRoundTripAndSchemaDedup) {
  SchemaPtr schema = Schema::Make({{"reader_id", TypeId::kString},
                                   {"tag_id", TypeId::kString},
                                   {"read_time", TypeId::kTimestamp}});
  Tuple a(schema, {Value::String("r1"), Value::String("t1"), Value::Time(10)},
          10);
  Tuple b(schema, {Value::String("r2"), Value::String("t2"), Value::Time(20)},
          20);

  BinaryEncoder enc;
  enc.PutTuple(a);
  const size_t first_size = enc.size();
  enc.PutTuple(b);
  // The second tuple reuses the schema by back-reference, so it must be
  // strictly smaller on the wire than the first.
  EXPECT_LT(enc.size() - first_size, first_size);

  BinaryDecoder dec(enc.buffer());
  auto ra = dec.GetTuple();
  auto rb = dec.GetTuple();
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_EQ(ra->ToString(), a.ToString());
  EXPECT_EQ(rb->ToString(), b.ToString());
  EXPECT_EQ(ra->ts(), 10);
  EXPECT_EQ(rb->ts(), 20);
  // Decoded tuples share one schema object, like the originals.
  EXPECT_EQ(ra->schema().get(), rb->schema().get());
  EXPECT_TRUE(ra->schema()->Equals(*schema));
}

TEST(BinaryCodecTest, NullSchemaMarker) {
  BinaryEncoder enc;
  enc.PutSchema(nullptr);
  BinaryDecoder dec(enc.buffer());
  auto schema = dec.GetSchema();
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(*schema, nullptr);
}

TEST(BinaryCodecTest, DecodePastEndFailsCleanly) {
  BinaryEncoder enc;
  enc.PutU32(7);
  BinaryDecoder dec(enc.buffer());
  EXPECT_TRUE(dec.GetU64().status().IsIoError());
}

TEST(BinaryCodecTest, TruncatedStringFailsCleanly) {
  BinaryEncoder enc;
  enc.PutU32(1000);  // declared length far past the end
  BinaryDecoder dec(enc.buffer());
  EXPECT_TRUE(dec.GetString().status().IsIoError());
}

TEST(FrameScanTest, CleanFileYieldsAllPayloads) {
  std::string file;
  AppendFrame("alpha", &file);
  AppendFrame("", &file);
  AppendFrame("gamma", &file);
  auto scan = ScanFrames(file.data(), file.size());
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, file.size());
  ASSERT_EQ(scan->payloads.size(), 3u);
  EXPECT_EQ(scan->payloads[0], "alpha");
  EXPECT_EQ(scan->payloads[1], "");
  EXPECT_EQ(scan->payloads[2], "gamma");
}

TEST(FrameScanTest, PartialHeaderIsTornTail) {
  std::string file;
  AppendFrame("alpha", &file);
  const size_t clean = file.size();
  file.append("\x03\x00", 2);  // 2 bytes of a next header
  auto scan = ScanFrames(file.data(), file.size());
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, clean);
  ASSERT_EQ(scan->payloads.size(), 1u);
}

TEST(FrameScanTest, ShortPayloadIsTornTail) {
  std::string file;
  AppendFrame("alpha", &file);
  const size_t clean = file.size();
  std::string torn;
  AppendFrame("this frame will be cut", &torn);
  file.append(torn.substr(0, torn.size() - 5));
  auto scan = ScanFrames(file.data(), file.size());
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, clean);
}

TEST(FrameScanTest, CorruptFinalFrameIsTornTail) {
  std::string file;
  AppendFrame("alpha", &file);
  const size_t clean = file.size();
  AppendFrame("omega", &file);
  file.back() ^= 0x40;  // flip a payload bit of the last frame
  auto scan = ScanFrames(file.data(), file.size());
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, clean);
  ASSERT_EQ(scan->payloads.size(), 1u);
}

TEST(FrameScanTest, CorruptMidFileFrameIsAnError) {
  std::string file;
  AppendFrame("alpha", &file);
  const size_t mid = file.size();
  AppendFrame("beta", &file);
  AppendFrame("gamma", &file);
  file[mid + 8] ^= 0x40;  // corrupt "beta"'s payload; "gamma" follows
  auto scan = ScanFrames(file.data(), file.size());
  EXPECT_TRUE(scan.status().IsIoError());
}

TEST(FrameScanTest, AbsurdLengthFieldIsTornTailNotAllocation) {
  std::string file;
  BinaryEncoder header;
  header.PutU32(0xFFFFFFFFu);  // 4 GiB declared payload
  header.PutU32(0);
  file.append(header.buffer());
  file.append("short");
  auto scan = ScanFrames(file.data(), file.size());
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, 0u);
}

TEST(FileIoTest, AtomicWriteThenReadBack) {
  const std::string path = ::testing::TempDir() + "codec_test_atomic.bin";
  std::string contents("binary\0payload", 14);
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
  auto back = ReadFileAll(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, contents);
  // Overwrite atomically: the new contents fully replace the old.
  ASSERT_TRUE(WriteFileAtomic(path, "v2").ok());
  EXPECT_EQ(*ReadFileAll(path), "v2");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadFileAll(::testing::TempDir() + "does_not_exist_12345")
                  .status()
                  .IsIoError());
}

}  // namespace
}  // namespace eslev
