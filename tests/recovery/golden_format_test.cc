// Golden-file tests freezing the on-disk recovery formats (DESIGN.md
// §10). These byte sequences are a compatibility contract: if one of
// these tests fails, either bump kCheckpointVersion (incompatible
// change) or fix the regression — never update the expected bytes
// silently.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "recovery/checkpoint.h"
#include "recovery/codec.h"
#include "recovery/wal.h"
#include "types/value.h"

namespace eslev {
namespace {

std::string Hex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xF]);
  }
  return out;
}

TEST(GoldenFormatTest, Crc32CheckValue) {
  // The standard CRC-32/ISO-HDLC check value: pins polynomial,
  // reflection, and init/final XOR all at once.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

TEST(GoldenFormatTest, FrameLayout) {
  // [u32 payload_len][u32 crc32(payload)][payload], all little-endian.
  std::string file;
  AppendFrame("123456789", &file);
  EXPECT_EQ(Hex(file),
            "09000000"            // payload length 9
            "2639f4cb"            // crc 0xCBF43926, little-endian
            "313233343536373839"  // "123456789"
  );
}

TEST(GoldenFormatTest, ScalarEncodings) {
  BinaryEncoder enc;
  enc.PutU32(0x01020304u);
  enc.PutU64(0x0102030405060708ull);
  enc.PutI64(-1);
  enc.PutString("ab");
  EXPECT_EQ(Hex(enc.buffer()),
            "04030201"
            "0807060504030201"
            "ffffffffffffffff"
            "020000006162");
}

TEST(GoldenFormatTest, ValueEncodings) {
  BinaryEncoder enc;
  enc.PutValue(Value::Null());
  enc.PutValue(Value::Bool(true));
  enc.PutValue(Value::Int(7));
  enc.PutValue(Value::Double(1.0));
  enc.PutValue(Value::String("ab"));
  enc.PutValue(Value::Time(42));
  EXPECT_EQ(Hex(enc.buffer()),
            "00"                    // null: tag only
            "0101"                  // bool true
            "020700000000000000"    // int64 7
            "03000000000000f03f"    // double 1.0 (IEEE-754 bits)
            "04020000006162"        // string "ab"
            "052a00000000000000");  // timestamp 42
}

TEST(GoldenFormatTest, SchemaInlineThenBackReference) {
  SchemaPtr schema = Schema::Make({{"t", TypeId::kInt64}});
  BinaryEncoder enc;
  enc.PutSchema(schema);
  enc.PutSchema(schema);   // same pointer: back-reference
  enc.PutSchema(nullptr);  // null marker
  EXPECT_EQ(Hex(enc.buffer()),
            "00"          // inline marker, assigned id 0
            "01000000"    // 1 field
            "0100000074"  // name "t"
            "02"          // TypeId::kInt64
            "01"          // ref marker
            "00000000"    // back-reference to id 0
            "02");        // null-schema marker
}

TEST(GoldenFormatTest, TupleLayout) {
  SchemaPtr schema = Schema::Make({{"t", TypeId::kInt64}});
  BinaryEncoder enc;
  enc.PutTuple(Tuple(schema, {Value::Int(5)}, 9));
  EXPECT_EQ(Hex(enc.buffer()),
            "0001000000010000007402"  // inline schema as above
            "0900000000000000"        // ts 9
            "01000000"                // arity 1
            "020500000000000000");    // int64 5
}

TEST(GoldenFormatTest, CheckpointHeaderMagicAndVersion) {
  // "VLSE" + version 1; ValidateCheckpointHeader accepts exactly this.
  const std::string header = EncodeCheckpointHeader();
  EXPECT_EQ(Hex(header), "564c534501000000");
  EXPECT_TRUE(ValidateCheckpointHeader(header, "golden").ok());

  BinaryEncoder wrong_version;
  wrong_version.PutU32(kCheckpointMagic);
  wrong_version.PutU32(kCheckpointVersion + 1);
  Status st = ValidateCheckpointHeader(wrong_version.buffer(), "golden");
  EXPECT_TRUE(st.IsIoError());
}

TEST(GoldenFormatTest, WalHeartbeatRecordBytes) {
  const std::string path = ::testing::TempDir() + "golden_wal.log";
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path, 1);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->AppendHeartbeat("", 42).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  auto bytes = ReadFileAll(path);
  ASSERT_TRUE(bytes.ok());
  std::remove(path.c_str());
  // Payload: [u8 kind=2][u64 lsn=1][u32 len=0 ""][i64 ts=42] = 21 bytes.
  const std::string payload =
      std::string("\x02", 1) + std::string("\x01", 1) + std::string(7, '\0') +
      std::string(4, '\0') + std::string("\x2a", 1) + std::string(7, '\0');
  std::string expected;
  AppendFrame(payload, &expected);
  EXPECT_EQ(Hex(*bytes), Hex(expected));
  EXPECT_EQ(Hex(*bytes).substr(0, 16),
            Hex(std::string("\x15\x00\x00\x00", 4)) +  // length 21
                Hex(expected.substr(4, 4)));           // crc over payload
}

TEST(GoldenFormatTest, EmptyEngineCheckpointStructure) {
  const std::string dir = ::testing::TempDir() + "golden_ckpt";
  Engine engine;
  ASSERT_TRUE(engine.Checkpoint(dir).ok());
  auto bytes = ReadFileAll(dir + "/" + kCheckpointFileName);
  ASSERT_TRUE(bytes.ok());
  auto frames = ScanFrames(bytes->data(), bytes->size());
  ASSERT_TRUE(frames.ok()) << frames.status();
  EXPECT_FALSE(frames->torn_tail);
  // An empty engine checkpoints to exactly header + end marker.
  ASSERT_EQ(frames->payloads.size(), 2u);
  EXPECT_EQ(frames->payloads[1], "ESLEV-CKPT-END");
  // Header prefix: magic + version, then clock (kMinTimestamp), covered
  // WAL LSN 0, and zero stream/table/query counts.
  BinaryEncoder expected;
  expected.PutU32(kCheckpointMagic);
  expected.PutU32(kCheckpointVersion);
  expected.PutI64(kMinTimestamp);
  expected.PutU64(0);
  expected.PutU32(0);
  expected.PutU32(0);
  expected.PutU32(0);
  EXPECT_EQ(Hex(frames->payloads[0]), Hex(expected.buffer()));
  std::remove((dir + "/" + kCheckpointFileName).c_str());
}

TEST(GoldenFormatTest, ManifestRoundTripAndLayout) {
  ShardedManifest manifest;
  manifest.num_shards = 2;
  manifest.low_watermark = 99;
  manifest.wal_last_lsn = 7;
  manifest.shard_dirs = {"shard0", "shard1"};
  const std::string bytes = manifest.Encode();
  auto frames = ScanFrames(bytes.data(), bytes.size());
  ASSERT_TRUE(frames.ok());
  ASSERT_EQ(frames->payloads.size(), 2u);
  EXPECT_EQ(Hex(frames->payloads[0]), "564c534501000000");
  auto decoded = ShardedManifest::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_shards, 2u);
  EXPECT_EQ(decoded->low_watermark, 99);
  EXPECT_EQ(decoded->wal_last_lsn, 7u);
  EXPECT_EQ(decoded->shard_dirs, manifest.shard_dirs);
}

}  // namespace
}  // namespace eslev
