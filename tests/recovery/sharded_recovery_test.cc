// ShardedEngine coordinated checkpoint/restore tests (DESIGN.md §10):
// the quiesce-barrier cut, per-shard checkpoint files under a manifest,
// the front-end WAL with total-order append+enqueue, and the
// missing-shard-file / shard-count-mismatch fault cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/sharded_engine.h"
#include "recovery/checkpoint.h"
#include "recovery/codec.h"

namespace eslev {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sharded_ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

constexpr char kSeqDdl[] = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
)sql";

constexpr char kSeqQuery[] =
    "SELECT C3.tagid, C1.tagtime, C3.tagtime FROM C1, C2, C3 "
    "WHERE SEQ(C1, C2, C3) AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";

struct Harness {
  ShardedEngine engine;
  std::vector<std::string> rows;

  explicit Harness(size_t num_shards)
      : engine([num_shards] {
          ShardedEngineOptions o;
          o.num_shards = num_shards;
          return o;
        }()) {
    EXPECT_TRUE(engine.ExecuteScript(kSeqDdl).ok());
    auto q = engine.RegisterQuery(kSeqQuery);
    EXPECT_TRUE(q.ok()) << q.status();
    EXPECT_TRUE(
        engine
            .Subscribe(q->output_stream,
                       [this](const Tuple& t) { rows.push_back(t.ToString()); })
            .ok());
  }

  void Push(const std::string& stream, const std::string& tag, Timestamp ts) {
    EXPECT_TRUE(engine
                    .Push(stream,
                          {Value::String("r"), Value::String(tag),
                           Value::Time(ts)},
                          ts)
                    .ok());
  }

  std::vector<std::string> Drain() {
    EXPECT_TRUE(engine.Flush().ok());
    engine.DrainOutputs();
    std::sort(rows.begin(), rows.end());
    return rows;
  }
};

// Round-robin the three sequence stages over a few tags.
struct Event {
  const char* stream;
  std::string tag;
};

std::vector<Event> SeqTrace(size_t rounds) {
  std::vector<Event> events;
  for (size_t r = 0; r < rounds; ++r) {
    const std::string tag = "tag" + std::to_string(r % 3);
    events.push_back({"C1", tag});
    events.push_back({"C2", tag});
    events.push_back({"C3", tag});
  }
  return events;
}

TEST(ShardedRecoveryTest, CheckpointWritesManifestAndShardDirs) {
  const std::string dir = FreshDir("layout");
  Harness h(2);
  Timestamp ts = Seconds(1);
  for (const Event& e : SeqTrace(4)) {
    h.Push(e.stream, e.tag, ts);
    ts += Seconds(1);
  }
  ASSERT_TRUE(h.engine.Flush().ok());
  ASSERT_TRUE(h.engine.Checkpoint(dir).ok());

  auto manifest = ReadManifest(dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->num_shards, 2u);
  ASSERT_EQ(manifest->shard_dirs.size(), 2u);
  for (const std::string& sd : manifest->shard_dirs) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + sd + "/" +
                                        kCheckpointFileName));
  }
  auto metrics = h.engine.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->counters.at("sharded.recovery.checkpoints"), 1u);
  EXPECT_GT(metrics->gauges.at("sharded.recovery.last_checkpoint_bytes"), 0);
  std::filesystem::remove_all(dir);
}

TEST(ShardedRecoveryTest, CheckpointRestoreContinuesIdentically) {
  for (size_t shards : {1u, 2u, 4u}) {
    const std::string dir = FreshDir("roundtrip" + std::to_string(shards));
    const auto events = SeqTrace(8);
    const size_t cut = 10;  // mid-round: open partial sequences at the cut

    Harness a(shards);
    Timestamp ts = Seconds(1);
    std::vector<Timestamp> stamps;
    for (size_t i = 0; i < events.size(); ++i) {
      stamps.push_back(ts);
      ts += Seconds(1);
    }
    for (size_t i = 0; i < cut; ++i) {
      a.Push(events[i].stream, events[i].tag, stamps[i]);
    }
    ASSERT_TRUE(a.engine.Checkpoint(dir).ok());

    Harness b(shards);
    ASSERT_TRUE(b.engine.Restore(dir).ok());
    for (size_t i = cut; i < events.size(); ++i) {
      a.Push(events[i].stream, events[i].tag, stamps[i]);
      b.Push(events[i].stream, events[i].tag, stamps[i]);
    }
    auto rows_a = a.Drain();
    auto rows_b = b.Drain();
    // A's post-cut emissions are exactly B's (B emitted nothing pre-cut).
    // A drained everything; drop its pre-cut prefix by multiset diff.
    Harness pre(shards);
    for (size_t i = 0; i < cut; ++i) {
      pre.Push(events[i].stream, events[i].tag, stamps[i]);
    }
    auto rows_pre = pre.Drain();
    std::vector<std::string> expected;
    std::set_difference(rows_a.begin(), rows_a.end(), rows_pre.begin(),
                        rows_pre.end(), std::back_inserter(expected));
    EXPECT_EQ(rows_b, expected) << shards << " shards";
    std::filesystem::remove_all(dir);
  }
}

TEST(ShardedRecoveryTest, WalRecoverFromReproducesUninterruptedRun) {
  for (size_t shards : {1u, 2u, 4u}) {
    const std::string dir = FreshDir("recover" + std::to_string(shards));
    std::filesystem::create_directories(dir);
    const auto events = SeqTrace(8);
    const size_t ckpt_at = 7, crash_at = 16;
    Timestamp ts = Seconds(1);
    std::vector<Timestamp> stamps;
    for (size_t i = 0; i < events.size(); ++i) {
      stamps.push_back(ts);
      ts += Seconds(1);
    }

    Harness ref(shards);
    for (size_t i = 0; i < events.size(); ++i) {
      ref.Push(events[i].stream, events[i].tag, stamps[i]);
    }
    auto rows_ref = ref.Drain();

    WalOptions wal_options;
    wal_options.group_commit_bytes = 0;
    std::vector<std::string> before;
    {
      Harness a(shards);
      ASSERT_TRUE(
          a.engine.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
      for (size_t i = 0; i < ckpt_at; ++i) {
        a.Push(events[i].stream, events[i].tag, stamps[i]);
      }
      ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
      for (size_t i = ckpt_at; i < crash_at; ++i) {
        a.Push(events[i].stream, events[i].tag, stamps[i]);
      }
      before = a.Drain();
    }  // crash

    Harness b(shards);
    ASSERT_TRUE(b.engine.RecoverFrom(dir).ok());
    EXPECT_TRUE(b.rows.empty());  // replayed outputs discarded
    for (size_t i = crash_at; i < events.size(); ++i) {
      b.Push(events[i].stream, events[i].tag, stamps[i]);
    }
    auto after = b.Drain();
    std::vector<std::string> combined = before;
    combined.insert(combined.end(), after.begin(), after.end());
    std::sort(combined.begin(), combined.end());
    EXPECT_EQ(combined, rows_ref) << shards << " shards";

    auto metrics = b.engine.Metrics();
    ASSERT_TRUE(metrics.ok());
    EXPECT_GT(metrics->counters.at("sharded.recovery.wal_records_replayed"),
              0u);
    std::filesystem::remove_all(dir);
  }
}

TEST(ShardedRecoveryTest, TornWalTailRecoversAndCountsMetric) {
  const std::string dir = FreshDir("torn");
  std::filesystem::create_directories(dir);
  const std::string wal_path = dir + "/" + kWalFileName;
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;
  {
    Harness a(2);
    ASSERT_TRUE(a.engine.EnableWal(wal_path, wal_options).ok());
    ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
    a.Push("C1", "tag0", Seconds(1));
    a.Push("C2", "tag0", Seconds(2));
    ASSERT_TRUE(a.engine.Flush().ok());
  }
  auto bytes = ReadFileAll(wal_path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteFileAtomic(wal_path, bytes->substr(0, bytes->size() - 6)).ok());

  Harness b(2);
  ASSERT_TRUE(b.engine.RecoverFrom(dir).ok());
  auto metrics = b.engine.Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->counters.at("sharded.recovery_truncated_frames"), 1u);
  std::filesystem::remove_all(dir);
}

TEST(ShardedRecoveryFaultTest, MissingShardFileFailsWithNoPartialRestore) {
  const std::string dir = FreshDir("missing_shard");
  Harness a(2);
  a.Push("C1", "tag0", Seconds(1));
  ASSERT_TRUE(a.engine.Flush().ok());
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
  // The manifest names shard1's file; delete it out from under it.
  ASSERT_TRUE(std::filesystem::remove(dir + "/shard1/" + kCheckpointFileName));

  Harness b(2);
  Status st = b.engine.Restore(dir);
  ASSERT_TRUE(st.IsIoError()) << st;
  EXPECT_NE(st.ToString().find("missing shard checkpoint"), std::string::npos)
      << st;
  // No shard was touched: the engine still runs the full sequence.
  b.Push("C1", "tagX", Seconds(10));
  b.Push("C2", "tagX", Seconds(11));
  b.Push("C3", "tagX", Seconds(12));
  EXPECT_EQ(b.Drain().size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(ShardedRecoveryFaultTest, ShardCountMismatchFails) {
  const std::string dir = FreshDir("count_mismatch");
  Harness a(2);
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
  Harness b(4);
  Status st = b.engine.Restore(dir);
  ASSERT_TRUE(st.IsIoError()) << st;
  EXPECT_NE(st.ToString().find("2 shards"), std::string::npos) << st;
  std::filesystem::remove_all(dir);
}

TEST(ShardedRecoveryFaultTest, CorruptManifestFails) {
  const std::string dir = FreshDir("bad_manifest");
  Harness a(2);
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
  const std::string path = dir + "/" + kManifestFileName;
  auto bytes = ReadFileAll(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(WriteFileAtomic(path, bytes->substr(0, bytes->size() - 3)).ok());
  Harness b(2);
  EXPECT_TRUE(b.engine.Restore(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

TEST(ShardedRecoveryFaultTest, DeliverAfterIsRejected) {
  const std::string dir = FreshDir("deliver_after");
  Harness a(2);
  ASSERT_TRUE(a.engine.Checkpoint(dir).ok());
  Harness b(2);
  ReplayOptions options;
  options.deliver_after["c3_out"] = 1;
  EXPECT_TRUE(b.engine.RecoverFrom(dir, options).IsInvalid());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eslev
