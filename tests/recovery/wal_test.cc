// Event WAL unit tests (recovery/wal.h): append/read round-trips, LSN
// assignment, group commit, checkpoint-driven truncation, and the
// fault-injection cases — torn final frame, mid-file corruption.

#include "recovery/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "types/schema.h"
#include "types/value.h"

namespace eslev {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "wal_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
    schema_ = Schema::Make({{"reader_id", TypeId::kString},
                            {"tag_id", TypeId::kString},
                            {"read_time", TypeId::kTimestamp}});
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Tuple MakeReading(const std::string& tag, Timestamp ts) const {
    return Tuple(schema_,
                 {Value::String("r1"), Value::String(tag), Value::Time(ts)},
                 ts);
  }

  std::string path_;
  SchemaPtr schema_;
};

TEST_F(WalTest, MissingFileReadsAsEmptyCleanLog) {
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->valid_bytes, 0u);
  EXPECT_FALSE(read->torn_tail);
}

TEST_F(WalTest, AppendFlushReadRoundTrip) {
  auto writer = WalWriter::Open(path_, 1);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t1", 10)), 1u);
  EXPECT_EQ(*(*writer)->AppendHeartbeat("", 20), 2u);
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t2", 30)), 3u);
  ASSERT_TRUE((*writer)->Flush().ok());
  EXPECT_EQ((*writer)->records_appended(), 3u);
  EXPECT_EQ((*writer)->next_lsn(), 4u);

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].kind, WalRecordKind::kTuple);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_EQ(read->records[0].stream, "readings");
  ASSERT_TRUE(read->records[0].tuple.has_value());
  EXPECT_EQ(read->records[0].tuple->ToString(),
            MakeReading("t1", 10).ToString());
  EXPECT_EQ(read->records[1].kind, WalRecordKind::kHeartbeat);
  EXPECT_EQ(read->records[1].stream, "");
  EXPECT_EQ(read->records[1].ts, 20);
  EXPECT_EQ(read->records[2].lsn, 3u);
}

TEST_F(WalTest, GroupCommitBuffersUntilThreshold) {
  WalOptions options;
  options.group_commit_bytes = 1 << 20;  // nothing auto-flushes below 1 MiB
  auto writer = WalWriter::Open(path_, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
  // Not flushed yet: a reader sees an empty (or shorter) file.
  auto before = ReadWal(path_);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->records.empty());
  ASSERT_TRUE((*writer)->Flush().ok());
  EXPECT_EQ((*writer)->group_commits(), 1u);
  auto after = ReadWal(path_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->records.size(), 1u);
  EXPECT_GT((*writer)->bytes_written(), 0u);
}

TEST_F(WalTest, ZeroThresholdFlushesEveryAppend) {
  WalOptions options;
  options.group_commit_bytes = 0;
  auto writer = WalWriter::Open(path_, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
}

TEST_F(WalTest, ReopenContinuesLsnSequence) {
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  auto writer = WalWriter::Open(path_, read->records.back().lsn + 1);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t2", 20)), 2u);
  ASSERT_TRUE((*writer)->Flush().ok());
  auto again = ReadWal(path_);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->records[1].lsn, 2u);
}

TEST_F(WalTest, TruncateBeforeDropsCoveredPrefix) {
  auto writer = WalWriter::Open(path_, 1);
  ASSERT_TRUE(writer.ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        (*writer)->AppendTuple("readings", MakeReading("t", i * 10)).ok());
  }
  ASSERT_TRUE((*writer)->TruncateBefore(4).ok());
  // Records 4 and 5 survive; the writer still appends at LSN 6.
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].lsn, 4u);
  EXPECT_EQ(read->records[1].lsn, 5u);
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t6", 60)), 6u);
  ASSERT_TRUE((*writer)->Flush().ok());
  auto after = ReadWal(path_);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->records.size(), 3u);
  EXPECT_EQ(after->records.back().lsn, 6u);
}

TEST_F(WalTest, TornFinalFrameIsToleratedAndReported) {
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  // Crash mid-append: chop bytes off the end of the file.
  auto bytes = ReadFileAll(path_);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteFileAtomic(path_, bytes->substr(0, bytes->size() - 7)).ok());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_LT(read->valid_bytes, bytes->size());

  // Reopening with truncate_to_bytes drops the tear for good; the next
  // append produces a clean log again.
  WalOptions options;
  options.truncate_to_bytes = read->valid_bytes;
  auto writer = WalWriter::Open(path_, 2, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t3", 30)).ok());
  ASSERT_TRUE((*writer)->Flush().ok());
  auto again = ReadWal(path_);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE(again->torn_tail);
  ASSERT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->records[1].lsn, 2u);
}

TEST_F(WalTest, MidFileCorruptionIsAnError) {
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  auto bytes = ReadFileAll(path_);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[10] ^= 0x01;  // inside the first record, with data after it
  ASSERT_TRUE(WriteFileAtomic(path_, corrupted).ok());
  EXPECT_TRUE(ReadWal(path_).status().IsIoError());
}

TEST_F(WalTest, NonMonotonicLsnsAreRejected) {
  // Two separate writers both starting at LSN 1 produce a log whose
  // second record repeats the LSN — the reader must refuse it.
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  EXPECT_TRUE(ReadWal(path_).status().IsIoError());
}

TEST_F(WalTest, DestructorFlushesPending) {
  {
    WalOptions options;
    options.group_commit_bytes = 1 << 20;
    auto writer = WalWriter::Open(path_, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
  }  // destructor: best-effort flush
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
}

}  // namespace
}  // namespace eslev
