// Event WAL unit tests (recovery/wal.h): append/read round-trips, LSN
// assignment, group commit, segment rotation + chain reads,
// checkpoint-driven whole-segment truncation, and the fault-injection
// cases — torn final frame, mid-file corruption, corrupt sealed segments.

#include "recovery/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "types/schema.h"
#include "types/value.h"

namespace eslev {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "wal_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    RemoveChainFiles();
    schema_ = Schema::Make({{"reader_id", TypeId::kString},
                            {"tag_id", TypeId::kString},
                            {"read_time", TypeId::kTimestamp}});
  }
  void TearDown() override { RemoveChainFiles(); }

  // Remove the live file, the manifest sidecar, and every sealed segment.
  void RemoveChainFiles() {
    std::remove(path_.c_str());
    std::remove(WalManifestPath(path_).c_str());
    const std::filesystem::path live(path_);
    const std::string prefix = live.filename().string() + ".";
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(live.parent_path(), ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) == 0 && name.size() > 4 &&
          name.substr(name.size() - 4) == ".seg") {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }

  Tuple MakeReading(const std::string& tag, Timestamp ts) const {
    return Tuple(schema_,
                 {Value::String("r1"), Value::String(tag), Value::Time(ts)},
                 ts);
  }

  std::string path_;
  SchemaPtr schema_;
};

TEST_F(WalTest, MissingFileReadsAsEmptyCleanLog) {
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->valid_bytes, 0u);
  EXPECT_FALSE(read->torn_tail);
}

TEST_F(WalTest, AppendFlushReadRoundTrip) {
  auto writer = WalWriter::Open(path_, 1);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t1", 10)), 1u);
  EXPECT_EQ(*(*writer)->AppendHeartbeat("", 20), 2u);
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t2", 30)), 3u);
  ASSERT_TRUE((*writer)->Flush().ok());
  EXPECT_EQ((*writer)->records_appended(), 3u);
  EXPECT_EQ((*writer)->next_lsn(), 4u);

  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].kind, WalRecordKind::kTuple);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_EQ(read->records[0].stream, "readings");
  ASSERT_TRUE(read->records[0].tuple.has_value());
  EXPECT_EQ(read->records[0].tuple->ToString(),
            MakeReading("t1", 10).ToString());
  EXPECT_EQ(read->records[1].kind, WalRecordKind::kHeartbeat);
  EXPECT_EQ(read->records[1].stream, "");
  EXPECT_EQ(read->records[1].ts, 20);
  EXPECT_EQ(read->records[2].lsn, 3u);
}

TEST_F(WalTest, GroupCommitBuffersUntilThreshold) {
  WalOptions options;
  options.group_commit_bytes = 1 << 20;  // nothing auto-flushes below 1 MiB
  auto writer = WalWriter::Open(path_, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
  // Not flushed yet: a reader sees an empty (or shorter) file.
  auto before = ReadWal(path_);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->records.empty());
  ASSERT_TRUE((*writer)->Flush().ok());
  EXPECT_EQ((*writer)->group_commits(), 1u);
  auto after = ReadWal(path_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->records.size(), 1u);
  EXPECT_GT((*writer)->bytes_written(), 0u);
}

TEST_F(WalTest, ZeroThresholdFlushesEveryAppend) {
  WalOptions options;
  options.group_commit_bytes = 0;
  auto writer = WalWriter::Open(path_, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
}

TEST_F(WalTest, ReopenContinuesLsnSequence) {
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  auto writer = WalWriter::Open(path_, read->records.back().lsn + 1);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t2", 20)), 2u);
  ASSERT_TRUE((*writer)->Flush().ok());
  auto again = ReadWal(path_);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->records[1].lsn, 2u);
}

TEST_F(WalTest, TruncateBeforeDropsWholeSealedSegments) {
  WalOptions options;
  options.group_commit_bytes = 0;  // every append flushes...
  options.segment_bytes = 1;       // ...and every flush seals
  auto writer = WalWriter::Open(path_, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        (*writer)->AppendTuple("readings", MakeReading("t", i * 10)).ok());
  }
  ASSERT_EQ((*writer)->sealed_segments().size(), 5u);
  ASSERT_TRUE((*writer)->TruncateBefore(4).ok());
  // Segments holding only LSNs 1..3 are deleted as whole files; nothing
  // is rewritten.
  EXPECT_EQ((*writer)->segments_deleted(), 3u);
  ASSERT_EQ((*writer)->sealed_segments().size(), 2u);
  EXPECT_EQ((*writer)->sealed_segments().front().first_lsn, 4u);
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t6", 60)), 6u);
  auto chain = ReadWalChain(path_);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->records.size(), 3u);
  EXPECT_EQ(chain->records.front().lsn, 4u);
  EXPECT_EQ(chain->records.back().lsn, 6u);
}

TEST_F(WalTest, TruncateBeforeNeverRewritesTheLiveFile) {
  // No rotation: truncation has nothing to delete, and records below the
  // cut stay in the live file — replay skips them by LSN instead.
  auto writer = WalWriter::Open(path_, 1);
  ASSERT_TRUE(writer.ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        (*writer)->AppendTuple("readings", MakeReading("t", i * 10)).ok());
  }
  ASSERT_TRUE((*writer)->TruncateBefore(4).ok());
  EXPECT_EQ((*writer)->segments_deleted(), 0u);
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 5u);
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t6", 60)), 6u);
}

TEST_F(WalTest, SegmentRotationSealsAtThresholdAndChainReadSpansAll) {
  WalOptions options;
  options.group_commit_bytes = 0;
  options.segment_bytes = 100;  // a few records per segment
  auto writer = WalWriter::Open(path_, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (int i = 1; i <= 12; ++i) {
    ASSERT_TRUE(
        (*writer)->AppendTuple("readings", MakeReading("t", i * 10)).ok());
  }
  EXPECT_GE((*writer)->segments_sealed(), 2u);
  const auto& sealed = (*writer)->sealed_segments();
  ASSERT_FALSE(sealed.empty());
  // Manifest entries are contiguous in LSN and match the files on disk.
  uint64_t expect_first = 1;
  for (const WalSegmentInfo& seg : sealed) {
    EXPECT_EQ(seg.first_lsn, expect_first);
    EXPECT_GE(seg.last_lsn, seg.first_lsn);
    expect_first = seg.last_lsn + 1;
    std::error_code ec;
    EXPECT_EQ(std::filesystem::file_size(WalSegmentPath(path_, seg), ec),
              seg.bytes);
  }
  auto chain = ReadWalChain(path_);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->records.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(chain->records[i].lsn, static_cast<uint64_t>(i + 1));
  }
  EXPECT_FALSE(chain->live_torn_tail);
}

TEST_F(WalTest, ReopenContinuesAcrossSealedSegments) {
  WalOptions options;
  options.group_commit_bytes = 0;
  options.segment_bytes = 1;
  {
    auto writer = WalWriter::Open(path_, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
  }
  auto chain = ReadWalChain(path_);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->records.size(), 2u);
  auto writer =
      WalWriter::Open(path_, chain->records.back().lsn + 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ((*writer)->sealed_segments().size(), 2u);
  EXPECT_EQ(*(*writer)->AppendTuple("readings", MakeReading("t3", 30)), 3u);
  auto again = ReadWalChain(path_);
  ASSERT_TRUE(again.ok()) << again.status();
  ASSERT_EQ(again->records.size(), 3u);
  EXPECT_EQ(again->records.back().lsn, 3u);
}

TEST_F(WalTest, SealActiveSegmentHandsOffBelowThreshold) {
  WalOptions options;
  options.group_commit_bytes = 0;
  options.segment_bytes = 1 << 20;  // far from the threshold
  auto writer = WalWriter::Open(path_, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
  ASSERT_TRUE((*writer)->SealActiveSegment().ok());
  ASSERT_EQ((*writer)->sealed_segments().size(), 1u);
  EXPECT_EQ((*writer)->live_bytes(), 0u);
  // Sealing an empty live file is a no-op.
  ASSERT_TRUE((*writer)->SealActiveSegment().ok());
  EXPECT_EQ((*writer)->sealed_segments().size(), 1u);
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
  auto chain = ReadWalChain(path_);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->records.size(), 2u);
}

TEST_F(WalTest, OrphanSegmentFromCrashBetweenRenameAndManifestIsAdopted) {
  WalOptions options;
  options.group_commit_bytes = 0;
  options.segment_bytes = 1;
  {
    auto writer = WalWriter::Open(path_, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
  }
  // Simulate the crash window: roll the manifest back to before the
  // second seal, leaving wal.log.000002.seg on disk unrecorded.
  auto manifest = ReadWalManifest(path_);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->segments.size(), 2u);
  WalManifest rolled = *manifest;
  rolled.segments.pop_back();
  rolled.next_segment_id = 2;
  ASSERT_TRUE(WriteWalManifest(path_, rolled).ok());

  auto listed = ListWalSegments(path_);
  ASSERT_TRUE(listed.ok()) << listed.status();
  ASSERT_EQ(listed->segments.size(), 2u);
  EXPECT_EQ(listed->segments.back().first_lsn, 2u);
  EXPECT_EQ(listed->next_segment_id, 3u);

  // Reopening the writer persists the adoption.
  auto writer = WalWriter::Open(path_, 3, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  auto healed = ReadWalManifest(path_);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->segments.size(), 2u);
  EXPECT_EQ(healed->next_segment_id, 3u);
}

TEST_F(WalTest, CorruptSealedSegmentFailsChainRead) {
  WalOptions options;
  options.group_commit_bytes = 0;
  options.segment_bytes = 1;
  auto writer = WalWriter::Open(path_, 1, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
  const std::string seg_path =
      WalSegmentPath(path_, (*writer)->sealed_segments().front());
  auto bytes = ReadFileAll(seg_path);
  ASSERT_TRUE(bytes.ok());

  // A flipped byte anywhere in a sealed segment is corruption.
  std::string flipped = *bytes;
  flipped[flipped.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(seg_path, flipped).ok());
  EXPECT_TRUE(ReadWalChain(path_).status().IsIoError());

  // So is a truncated (torn-looking) sealed segment: it was complete
  // when renamed, so a tear cannot be a crash artifact.
  ASSERT_TRUE(
      WriteFileAtomic(seg_path, bytes->substr(0, bytes->size() - 3)).ok());
  EXPECT_TRUE(ReadWalChain(path_).status().IsIoError());

  // Restored intact, the chain reads clean again.
  ASSERT_TRUE(WriteFileAtomic(seg_path, *bytes).ok());
  auto chain = ReadWalChain(path_);
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_EQ(chain->records.size(), 2u);
}

TEST_F(WalTest, TornLiveTailIsToleratedByChainRead) {
  WalOptions options;
  options.group_commit_bytes = 0;
  options.segment_bytes = 1;
  {
    auto writer = WalWriter::Open(path_, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    // Below the flush threshold nothing seals mid-record; write a second
    // record into the fresh live file, then tear it.
    options.segment_bytes = 1 << 20;
  }
  auto writer = WalWriter::Open(path_, 2, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t3", 30)).ok());
  writer->reset();  // close the file before tearing it
  auto live = ReadFileAll(path_);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(
      WriteFileAtomic(path_, live->substr(0, live->size() - 5)).ok());
  auto chain = ReadWalChain(path_);
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_TRUE(chain->live_torn_tail);
  ASSERT_EQ(chain->records.size(), 2u);  // sealed t1 + intact live t2
  EXPECT_EQ(chain->records.back().lsn, 2u);
}

TEST_F(WalTest, TornFinalFrameIsToleratedAndReported) {
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  // Crash mid-append: chop bytes off the end of the file.
  auto bytes = ReadFileAll(path_);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteFileAtomic(path_, bytes->substr(0, bytes->size() - 7)).ok());
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].lsn, 1u);
  EXPECT_LT(read->valid_bytes, bytes->size());

  // Reopening with truncate_to_bytes drops the tear for good; the next
  // append produces a clean log again.
  WalOptions options;
  options.truncate_to_bytes = read->valid_bytes;
  auto writer = WalWriter::Open(path_, 2, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t3", 30)).ok());
  ASSERT_TRUE((*writer)->Flush().ok());
  auto again = ReadWal(path_);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE(again->torn_tail);
  ASSERT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->records[1].lsn, 2u);
}

TEST_F(WalTest, MidFileCorruptionIsAnError) {
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  auto bytes = ReadFileAll(path_);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[10] ^= 0x01;  // inside the first record, with data after it
  ASSERT_TRUE(WriteFileAtomic(path_, corrupted).ok());
  EXPECT_TRUE(ReadWal(path_).status().IsIoError());
}

TEST_F(WalTest, NonMonotonicLsnsAreRejected) {
  // Two separate writers both starting at LSN 1 produce a log whose
  // second record repeats the LSN — the reader must refuse it.
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  {
    auto writer = WalWriter::Open(path_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t2", 20)).ok());
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  EXPECT_TRUE(ReadWal(path_).status().IsIoError());
}

TEST_F(WalTest, DestructorFlushesPending) {
  {
    WalOptions options;
    options.group_commit_bytes = 1 << 20;
    auto writer = WalWriter::Open(path_, 1, options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendTuple("readings", MakeReading("t1", 10)).ok());
  }  // destructor: best-effort flush
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
}

}  // namespace
}  // namespace eslev
