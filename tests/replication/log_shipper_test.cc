// LogShipper unit tests (replication/log_shipper.h): sealed-segment +
// live-tail shipping rounds, manifest mirroring, incremental restarts,
// shipped-copy pruning, lag measurement, and the corruption-injection
// case — a flipped byte in a primary sealed segment must refuse to ship.

#include "replication/log_shipper.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "types/schema.h"
#include "types/value.h"

namespace eslev {
namespace {

class LogShipperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string base =
        ::testing::TempDir() + "log_shipper_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(base);
    std::filesystem::create_directories(base + "/primary");
    std::filesystem::create_directories(base + "/standby");
    base_ = base;
    primary_ = base + "/primary/wal.log";
    standby_ = base + "/standby/wal.log";
    schema_ = Schema::Make({{"reader_id", TypeId::kString},
                            {"tag_id", TypeId::kString},
                            {"read_time", TypeId::kTimestamp}});
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  Tuple MakeReading(const std::string& tag, Timestamp ts) const {
    return Tuple(schema_,
                 {Value::String("r1"), Value::String(tag), Value::Time(ts)},
                 ts);
  }

  std::unique_ptr<WalWriter> OpenWriter(size_t segment_bytes,
                                        uint64_t next_lsn = 1) {
    WalOptions options;
    options.group_commit_bytes = 0;
    options.segment_bytes = segment_bytes;
    auto writer = WalWriter::Open(primary_, next_lsn, options);
    EXPECT_TRUE(writer.ok()) << writer.status();
    return std::move(*writer);
  }

  std::vector<uint64_t> ShippedLsns() {
    auto chain = ReadWalChain(standby_);
    EXPECT_TRUE(chain.ok()) << chain.status();
    std::vector<uint64_t> lsns;
    for (const WalRecord& r : chain->records) lsns.push_back(r.lsn);
    return lsns;
  }

  std::string base_, primary_, standby_;
  SchemaPtr schema_;
};

TEST_F(LogShipperTest, ShipsSealedSegmentsAndLiveTail) {
  auto writer = OpenWriter(/*segment_bytes=*/1);  // one record per segment
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(writer->AppendTuple("readings", MakeReading("t", i * 10)).ok());
  }
  ASSERT_TRUE(writer->Flush().ok());
  ASSERT_EQ(writer->sealed_segments().size(), 3u);

  LogShipper shipper(primary_, standby_);
  ASSERT_TRUE(shipper.Ship().ok());
  EXPECT_EQ(shipper.segments_shipped(), 3u);
  EXPECT_EQ(ShippedLsns(), (std::vector<uint64_t>{1, 2, 3}));

  auto lag = shipper.MeasureLagBytes();
  ASSERT_TRUE(lag.ok());
  EXPECT_EQ(*lag, 0u);
}

TEST_F(LogShipperTest, ShipsLiveBytesBeforeAnySeal) {
  auto writer = OpenWriter(/*segment_bytes=*/1 << 20);  // never rotates
  ASSERT_TRUE(writer->AppendHeartbeat("", 100).ok());
  ASSERT_TRUE(writer->AppendHeartbeat("", 200).ok());
  ASSERT_TRUE(writer->Flush().ok());

  LogShipper shipper(primary_, standby_);
  ASSERT_TRUE(shipper.Ship().ok());
  EXPECT_EQ(shipper.segments_shipped(), 0u);
  EXPECT_EQ(ShippedLsns(), (std::vector<uint64_t>{1, 2}));

  // The next round ships only the delta.
  const uint64_t shipped_before = shipper.bytes_shipped();
  ASSERT_TRUE(writer->AppendHeartbeat("", 300).ok());
  ASSERT_TRUE(writer->Flush().ok());
  ASSERT_TRUE(shipper.Ship().ok());
  EXPECT_GT(shipper.bytes_shipped(), shipped_before);
  EXPECT_EQ(ShippedLsns(), (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(LogShipperTest, SealMidStreamRestartsTheLiveCopy) {
  auto writer = OpenWriter(/*segment_bytes=*/1 << 20);
  ASSERT_TRUE(writer->AppendHeartbeat("", 100).ok());
  ASSERT_TRUE(writer->Flush().ok());

  LogShipper shipper(primary_, standby_);
  ASSERT_TRUE(shipper.Ship().ok());  // lsn 1 via the live copy

  // Seal, then append into the fresh live file: the shipped chain must
  // carry lsn 1 in a sealed copy and lsn 2 in the restarted live copy.
  ASSERT_TRUE(writer->SealActiveSegment().ok());
  ASSERT_TRUE(writer->AppendHeartbeat("", 200).ok());
  ASSERT_TRUE(writer->Flush().ok());
  ASSERT_TRUE(shipper.Ship().ok());
  EXPECT_EQ(shipper.segments_shipped(), 1u);
  EXPECT_EQ(ShippedLsns(), (std::vector<uint64_t>{1, 2}));
}

TEST_F(LogShipperTest, RestartedShipperResumesFromShippedManifest) {
  auto writer = OpenWriter(/*segment_bytes=*/1);
  ASSERT_TRUE(writer->AppendHeartbeat("", 100).ok());
  ASSERT_TRUE(writer->Flush().ok());
  {
    LogShipper shipper(primary_, standby_);
    ASSERT_TRUE(shipper.Ship().ok());
    EXPECT_EQ(shipper.segments_shipped(), 1u);
  }
  ASSERT_TRUE(writer->AppendHeartbeat("", 200).ok());
  ASSERT_TRUE(writer->Flush().ok());
  // A fresh shipper (process restart) must not re-ship segment 1.
  LogShipper shipper(primary_, standby_);
  ASSERT_TRUE(shipper.Ship().ok());
  EXPECT_EQ(shipper.segments_shipped(), 1u);
  EXPECT_EQ(ShippedLsns(), (std::vector<uint64_t>{1, 2}));
}

TEST_F(LogShipperTest, PruneShippedBeforeDropsWholeSegments) {
  auto writer = OpenWriter(/*segment_bytes=*/1);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(writer->AppendHeartbeat("", i * 100).ok());
  }
  ASSERT_TRUE(writer->Flush().ok());
  LogShipper shipper(primary_, standby_);
  ASSERT_TRUE(shipper.Ship().ok());
  ASSERT_EQ(ShippedLsns(), (std::vector<uint64_t>{1, 2, 3, 4}));

  ASSERT_TRUE(shipper.PruneShippedBefore(3).ok());
  EXPECT_EQ(ShippedLsns(), (std::vector<uint64_t>{3, 4}));
  // Idempotent, and pruning never touches what is still needed.
  ASSERT_TRUE(shipper.PruneShippedBefore(3).ok());
  EXPECT_EQ(ShippedLsns(), (std::vector<uint64_t>{3, 4}));
}

TEST_F(LogShipperTest, CorruptPrimarySegmentRefusesToShip) {
  auto writer = OpenWriter(/*segment_bytes=*/1);
  ASSERT_TRUE(writer->AppendTuple("readings", MakeReading("t", 10)).ok());
  ASSERT_TRUE(writer->Flush().ok());
  ASSERT_EQ(writer->sealed_segments().size(), 1u);
  const std::string seg_path =
      WalSegmentPath(primary_, writer->sealed_segments()[0]);

  // Flip one byte in the middle of the sealed segment.
  std::FILE* f = std::fopen(seg_path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);
  std::fputc('X', f);
  std::fclose(f);

  LogShipper shipper(primary_, standby_);
  Status st = shipper.Ship();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(shipper.segments_shipped(), 0u);
  // Nothing corrupt reached the standby copy.
  EXPECT_TRUE(ShippedLsns().empty());
}

TEST_F(LogShipperTest, MeasureLagCountsUnshippedSegmentsAndLiveBytes) {
  auto writer = OpenWriter(/*segment_bytes=*/1);
  ASSERT_TRUE(writer->AppendHeartbeat("", 100).ok());
  ASSERT_TRUE(writer->AppendHeartbeat("", 200).ok());
  ASSERT_TRUE(writer->Flush().ok());

  LogShipper shipper(primary_, standby_);
  auto before = shipper.MeasureLagBytes();
  ASSERT_TRUE(before.ok());
  EXPECT_GT(*before, 0u);
  ASSERT_TRUE(shipper.Ship().ok());
  auto after = shipper.MeasureLagBytes();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, 0u);
}

}  // namespace
}  // namespace eslev
