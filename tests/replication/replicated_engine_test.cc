// ReplicatedShardedEngine tests (replication/replicated_engine.h):
// kill-then-promote must reproduce the failure-free output byte for
// byte (including EXCEPTION_SEQ active-expiration violations, fired
// exactly once), promotion must refuse a corrupt shipped chain, and the
// replication.* metrics must be visible through Metrics() and
// EXPLAIN ANALYZE.

#include "replication/replicated_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "recovery/codec.h"

namespace eslev {
namespace {

constexpr char kDdl[] = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
  CREATE STREAM C3(readerid, tagid, tagtime);
)sql";
constexpr char kSeqQuery[] =
    "SELECT C3.tagid, C1.tagtime, C3.tagtime FROM C1, C2, C3 "
    "WHERE SEQ(C1, C2, C3) MODE CHRONICLE "
    "AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";
constexpr char kExceptionQuery[] =
    "SELECT C1.tagid, C1.tagtime FROM C1, C2, C3 "
    "WHERE EXCEPTION_SEQ(C1, C2, C3) OVER [10 SECONDS FOLLOWING C1] "
    "AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid";

struct Event {
  std::string stream;
  std::string tag;
  Timestamp ts;
};

// Staggered SEQ traffic: each tag emits C1, C2, C3 two seconds apart.
std::vector<Event> SeqTrace(int num_tags) {
  std::vector<Event> events;
  for (int i = 0; i < num_tags; ++i) {
    const std::string tag = "tag" + std::to_string(i);
    const Timestamp base = Seconds(1 + i);
    events.push_back({"C1", tag, base});
    events.push_back({"C2", tag, base + Seconds(2)});
    events.push_back({"C3", tag, base + Seconds(4)});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.ts < b.ts; });
  return events;
}

std::vector<std::string> OracleRun(const std::string& query,
                                   const std::vector<Event>& events,
                                   Timestamp tail) {
  Engine engine;
  EXPECT_TRUE(engine.ExecuteScript(kDdl).ok());
  auto q = engine.RegisterQuery(query);
  EXPECT_TRUE(q.ok()) << q.status();
  std::vector<std::string> rows;
  EXPECT_TRUE(engine
                  .Subscribe(q->output_stream,
                             [&](const Tuple& t) {
                               rows.push_back(t.ToString());
                             })
                  .ok());
  for (const Event& e : events) {
    EXPECT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
  }
  EXPECT_TRUE(engine.AdvanceTime(tail).ok());
  std::sort(rows.begin(), rows.end());
  return rows;
}

class ReplicatedEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "replicated_engine_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<ReplicatedShardedEngine> OpenEngine(size_t num_shards,
                                                      const std::string& query,
                                                      size_t segment_bytes) {
    ReplicatedShardedEngineOptions options;
    options.num_shards = num_shards;
    options.dir = dir_;
    options.wal.group_commit_bytes = 0;
    options.wal.segment_bytes = segment_bytes;
    auto engine = ReplicatedShardedEngine::Open(options);
    EXPECT_TRUE(engine.ok()) << engine.status();
    EXPECT_TRUE((*engine)->ExecuteScript(kDdl).ok());
    auto q = (*engine)->RegisterQuery(query);
    EXPECT_TRUE(q.ok()) << q.status();
    EXPECT_TRUE((*engine)
                    ->Subscribe(q->output_stream,
                                [this](const Tuple& t) {
                                  rows_.push_back(t.ToString());
                                })
                    .ok());
    return std::move(*engine);
  }

  void Push(ReplicatedShardedEngine& engine, const Event& e) {
    ASSERT_TRUE(engine
                    .Push(e.stream,
                          {Value::String("r"), Value::String(e.tag),
                           Value::Time(e.ts)},
                          e.ts)
                    .ok());
  }

  std::string dir_;
  std::vector<std::string> rows_;
};

TEST_F(ReplicatedEngineTest, KillThenPromoteMatchesFailureFreeRun) {
  const auto events = SeqTrace(8);
  const Timestamp tail = Seconds(60);
  const auto reference = OracleRun(kSeqQuery, events, tail);
  ASSERT_FALSE(reference.empty());

  auto engine = OpenEngine(2, kSeqQuery, /*segment_bytes=*/256);
  const size_t third = events.size() / 3;
  for (size_t i = 0; i < third; ++i) Push(*engine, events[i]);
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Checkpoint().ok());  // provisions both standbys
  ASSERT_NE(engine->standby(0), nullptr);
  ASSERT_NE(engine->standby(1), nullptr);

  for (size_t i = third; i < 2 * third; ++i) Push(*engine, events[i]);
  ASSERT_TRUE(engine->Flush().ok());
  engine->DrainOutputs();  // everything emitted so far is delivered

  ASSERT_TRUE(engine->KillShard(0).ok());
  EXPECT_FALSE(engine->shard_alive(0));
  // Input keeps flowing while the shard is dead: its share reaches only
  // the WAL, which is exactly what the standby replays.
  for (size_t i = 2 * third; i < events.size(); ++i) Push(*engine, events[i]);

  auto healed = engine->HealFailures();
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(*healed, 1u);
  EXPECT_TRUE(engine->shard_alive(0));
  EXPECT_EQ(engine->promotions(), 1u);

  ASSERT_TRUE(engine->AdvanceTime(tail).ok());
  ASSERT_TRUE(engine->Flush().ok());
  engine->DrainOutputs();
  std::sort(rows_.begin(), rows_.end());
  EXPECT_EQ(rows_, reference);
}

TEST_F(ReplicatedEngineTest, KillingEveryShardAndHealingStillMatches) {
  const auto events = SeqTrace(6);
  const Timestamp tail = Seconds(60);
  const auto reference = OracleRun(kSeqQuery, events, tail);

  auto engine = OpenEngine(2, kSeqQuery, /*segment_bytes=*/128);
  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) Push(*engine, events[i]);
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_TRUE(engine->KillShard(0).ok());
  ASSERT_TRUE(engine->KillShard(1).ok());
  for (size_t i = half; i < events.size(); ++i) Push(*engine, events[i]);
  auto healed = engine->HealFailures();
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(*healed, 2u);
  ASSERT_TRUE(engine->AdvanceTime(tail).ok());
  ASSERT_TRUE(engine->Flush().ok());
  engine->DrainOutputs();
  std::sort(rows_.begin(), rows_.end());
  EXPECT_EQ(rows_, reference);
}

TEST_F(ReplicatedEngineTest, ExceptionSeqViolationsFireExactlyOnce) {
  // tag_pre violates before the checkpoint (delivered), tag_mid between
  // checkpoint and kill (delivered, and re-generated by the standby —
  // the suppression case), tag_post after the kill (only the promoted
  // engine can fire it). tag_ok completes and never violates.
  std::vector<Event> events;
  events.push_back({"C1", "tag_pre", Seconds(1)});
  events.push_back({"C1", "tag_ok", Seconds(2)});
  events.push_back({"C2", "tag_ok", Seconds(3)});
  events.push_back({"C3", "tag_ok", Seconds(4)});
  const std::vector<Event> mid = {{"C1", "tag_mid", Seconds(31)}};
  const std::vector<Event> post = {{"C1", "tag_post", Seconds(61)}};
  const Timestamp mid_hb = Seconds(30);   // fires tag_pre (deadline 11s)
  const Timestamp late_hb = Seconds(60);  // fires tag_mid (deadline 41s)
  const Timestamp tail = Seconds(120);    // fires tag_post (deadline 71s)

  // The failure-free baseline must run at the same shard count:
  // EXCEPTION_SEQ keeps one partial sequence per engine, so shard
  // assignment is part of the observable semantics.
  std::vector<std::string> reference;
  {
    ShardedEngineOptions options;
    options.num_shards = 2;
    ShardedEngine oracle(options);
    EXPECT_TRUE(oracle.ExecuteScript(kDdl).ok());
    auto q = oracle.RegisterQuery(kExceptionQuery);
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_TRUE(oracle
                    .Subscribe(q->output_stream,
                               [&](const Tuple& t) {
                                 reference.push_back(t.ToString());
                               })
                    .ok());
    auto push = [&](const Event& e) {
      ASSERT_TRUE(oracle
                      .Push(e.stream,
                            {Value::String("r"), Value::String(e.tag),
                             Value::Time(e.ts)},
                            e.ts)
                      .ok());
    };
    for (const Event& e : events) push(e);
    ASSERT_TRUE(oracle.AdvanceTime(mid_hb).ok());
    for (const Event& e : mid) push(e);
    ASSERT_TRUE(oracle.AdvanceTime(late_hb).ok());
    for (const Event& e : post) push(e);
    ASSERT_TRUE(oracle.AdvanceTime(tail).ok());
    ASSERT_TRUE(oracle.Flush().ok());
    oracle.DrainOutputs();
    std::sort(reference.begin(), reference.end());
  }
  ASSERT_EQ(reference.size(), 3u);  // one violation per failed deadline

  auto engine = OpenEngine(2, kExceptionQuery, /*segment_bytes=*/128);
  for (const Event& e : events) Push(*engine, e);
  ASSERT_TRUE(engine->AdvanceTime(mid_hb).ok());  // tag_pre fires
  ASSERT_TRUE(engine->Flush().ok());
  engine->DrainOutputs();
  ASSERT_TRUE(engine->Checkpoint().ok());

  for (const Event& e : mid) Push(*engine, e);
  ASSERT_TRUE(engine->AdvanceTime(late_hb).ok());  // tag_mid fires
  ASSERT_TRUE(engine->Flush().ok());
  engine->DrainOutputs();  // ... and is delivered before the crash

  ASSERT_TRUE(engine->KillShard(0).ok());
  ASSERT_TRUE(engine->KillShard(1).ok());
  for (const Event& e : post) Push(*engine, e);
  auto healed = engine->HealFailures();
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(*healed, 2u);

  ASSERT_TRUE(engine->AdvanceTime(tail).ok());  // tag_post fires, once
  ASSERT_TRUE(engine->Flush().ok());
  engine->DrainOutputs();
  std::sort(rows_.begin(), rows_.end());
  EXPECT_EQ(rows_, reference);
}

TEST_F(ReplicatedEngineTest, PromotionRefusesACorruptShippedChain) {
  const auto events = SeqTrace(4);
  auto engine = OpenEngine(1, kSeqQuery, /*segment_bytes=*/1 << 20);
  ASSERT_TRUE(engine->Checkpoint().ok());
  for (size_t i = 0; i < events.size() / 2; ++i) Push(*engine, events[i]);
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Replicate().ok());
  ASSERT_TRUE(engine->standby(0)->health().ok());

  // The shipped live copy rots on the standby's disk: a frame-shaped
  // blob with a wrong CRC lands where the next shipped range will be
  // appended, so once real frames follow it the standby sees mid-file
  // corruption (not a tolerable torn tail).
  {
    const std::string payload = "ROT!";
    BinaryEncoder rot;
    rot.PutU32(static_cast<uint32_t>(payload.size()));
    rot.PutU32(Crc32(payload) ^ 0xDEADBEEFu);
    std::FILE* f =
        std::fopen((dir_ + "/standby/wal.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(rot.buffer().data(), 1, rot.buffer().size(), f),
              rot.buffer().size());
    ASSERT_EQ(std::fwrite(payload.data(), 1, payload.size(), f),
              payload.size());
    std::fclose(f);
  }
  for (size_t i = events.size() / 2; i < events.size(); ++i) {
    Push(*engine, events[i]);
  }
  ASSERT_TRUE(engine->KillShard(0).ok());
  Status promoted = engine->HealFailures().status();
  EXPECT_FALSE(promoted.ok());
  EXPECT_FALSE(engine->shard_alive(0));  // refused: the shard stays dead
  EXPECT_EQ(engine->promotions(), 0u);
  EXPECT_FALSE(engine->standby(0)->health().ok());  // sticky

  // Data-plane calls that need the dead shard fail fast instead of
  // hanging on its closed mailbox.
  EXPECT_FALSE(engine->ExecuteSnapshot("SELECT * FROM C1").ok());
}

TEST_F(ReplicatedEngineTest, CorruptPrimarySegmentRefusesShipAndPromotion) {
  const auto events = SeqTrace(4);
  auto engine = OpenEngine(1, kSeqQuery, /*segment_bytes=*/1);
  ASSERT_TRUE(engine->Checkpoint().ok());
  for (const Event& e : events) Push(*engine, e);
  ASSERT_TRUE(engine->Flush().ok());

  // Flip a byte inside a not-yet-shipped sealed segment on the primary:
  // the shipper's verify-before-copy gate must fail the ship, so the
  // corruption never reaches the standby and promotion is refused.
  auto chain = ReadWalChain(dir_ + "/wal.log");
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_FALSE(chain->manifest.segments.empty());
  const std::string seg_path = WalSegmentPath(
      dir_ + "/wal.log", chain->manifest.segments.back());
  {
    std::FILE* f = std::fopen(seg_path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 14, SEEK_SET), 0);
    std::fputc('X', f);
    std::fclose(f);
  }
  ASSERT_TRUE(engine->KillShard(0).ok());
  EXPECT_FALSE(engine->HealFailures().ok());
  EXPECT_FALSE(engine->shard_alive(0));
  EXPECT_EQ(engine->promotions(), 0u);
}

TEST_F(ReplicatedEngineTest, MetricsAndExplainAnalyzeExposeReplication) {
  const auto events = SeqTrace(4);
  auto engine = OpenEngine(2, kSeqQuery, /*segment_bytes=*/128);
  for (const Event& e : events) Push(*engine, e);
  ASSERT_TRUE(engine->Flush().ok());
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_TRUE(engine->KillShard(1).ok());
  auto healed = engine->HealFailures();
  ASSERT_TRUE(healed.ok()) << healed.status();

  auto metrics = engine->Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->counters.at("replication.promotions"), 1u);
  EXPECT_GT(metrics->counters.at("replication.bytes_shipped"), 0u);
  EXPECT_EQ(metrics->gauges.at("replication.standbys"), 1);  // 0 survives
  EXPECT_EQ(metrics->gauges.at("replication.dead_shards"), 0);
  EXPECT_EQ(metrics->gauges.at("replication.standby0.healthy"), 1);
  EXPECT_TRUE(metrics->gauges.count("replication.standby0.applied_lsn"));
  EXPECT_TRUE(metrics->gauges.count("replication.ship_lag_bytes"));
  EXPECT_GE(metrics->gauges.at("replication.last_promotion_us"), 0);
  // The primary's WAL rotation counters ride along.
  EXPECT_TRUE(metrics->counters.count("sharded.wal.segments_sealed"));

  auto explain =
      engine->Explain(std::string("EXPLAIN ANALYZE ") + kSeqQuery);
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_NE(explain->find("-- replication --"), std::string::npos);
  EXPECT_NE(explain->find("replication.promotions"), std::string::npos);
}

TEST_F(ReplicatedEngineTest, CheckpointRequiresEveryShardAlive) {
  auto engine = OpenEngine(2, kSeqQuery, /*segment_bytes=*/128);
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_TRUE(engine->KillShard(0).ok());
  EXPECT_FALSE(engine->Checkpoint().ok());
  auto healed = engine->HealFailures();
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_TRUE(engine->Checkpoint().ok());
  // The promoted shard is fully live again: a second failure on the same
  // shard is survivable with the freshly provisioned standby.
  ASSERT_TRUE(engine->KillShard(0).ok());
  auto again = engine->HealFailures();
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(engine->promotions(), 2u);
}

}  // namespace
}  // namespace eslev
