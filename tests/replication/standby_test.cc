// StandbyShard unit tests (replication/standby.h): bootstrap from a
// coordinated checkpoint, incremental WAL apply with shard-filtered
// routing, and the fault-injection matrix the promotion protocol leans
// on — a torn live tail is tolerated (the rest of the frame arrives
// next round), while mid-file corruption, a corrupt sealed segment, or
// an LSN gap permanently fail the standby (sticky health).

#include "replication/standby.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/sharded_engine.h"
#include "recovery/checkpoint.h"
#include "recovery/codec.h"

namespace eslev {
namespace {

constexpr char kDdl[] = R"sql(
  CREATE STREAM C1(readerid, tagid, tagtime);
  CREATE STREAM C2(readerid, tagid, tagtime);
)sql";
constexpr char kQuery[] =
    "SELECT C2.tagid, C1.tagtime, C2.tagtime FROM C1, C2 "
    "WHERE SEQ(C1, C2) AND C1.tagid=C2.tagid";

class StandbyShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "standby_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WalPath() const { return dir_ + "/" + kWalFileName; }

  /// Write a heartbeat-only WAL at `path`: LSNs `first..first+count-1`,
  /// timestamps 100, 200, ... Returns the file's bytes.
  std::string WriteHeartbeatWal(const std::string& path, uint64_t first,
                                int count) {
    WalOptions options;
    options.group_commit_bytes = 0;
    auto writer = WalWriter::Open(path, first, options);
    EXPECT_TRUE(writer.ok()) << writer.status();
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE((*writer)
                      ->AppendHeartbeat(
                          "", static_cast<Timestamp>(first + i) * 100)
                      .ok());
    }
    EXPECT_TRUE((*writer)->Flush().ok());
    auto bytes = ReadFileAll(path);
    EXPECT_TRUE(bytes.ok());
    return *bytes;
  }

  std::string dir_;
};

TEST_F(StandbyShardTest, BootstrapsFromCheckpointAndAppliesWalSuffix) {
  std::vector<std::string> primary_rows;
  std::string output_stream;
  {
    ShardedEngineOptions options;
    options.num_shards = 2;
    ShardedEngine primary(options);
    ASSERT_TRUE(primary.ExecuteScript(kDdl).ok());
    auto q = primary.RegisterQuery(kQuery);
    ASSERT_TRUE(q.ok()) << q.status();
    output_stream = q->output_stream;
    ASSERT_TRUE(primary
                    .Subscribe(output_stream,
                               [&](const Tuple& t) {
                                 primary_rows.push_back(t.ToString());
                               })
                    .ok());
    WalOptions wal_options;
    wal_options.group_commit_bytes = 0;
    ASSERT_TRUE(primary.EnableWal(WalPath(), wal_options).ok());
    auto push = [&](const std::string& stream, const std::string& tag,
                    Timestamp ts) {
      ASSERT_TRUE(primary
                      .Push(stream,
                            {Value::String("r"), Value::String(tag),
                             Value::Time(ts)},
                            ts)
                      .ok());
    };
    for (int i = 0; i < 6; ++i) {
      push("C1", "tag" + std::to_string(i), Seconds(i + 1));
    }
    ASSERT_TRUE(primary.Checkpoint(dir_).ok());
    for (int i = 0; i < 6; ++i) {
      push("C2", "tag" + std::to_string(i), Seconds(i + 10));
    }
    ASSERT_TRUE(primary.AdvanceTime(Seconds(60)).ok());
    ASSERT_TRUE(primary.Flush().ok());
    primary.DrainOutputs();
  }

  StandbyShard standby({/*shard_id=*/0, /*num_shards=*/2, EngineOptions{}});
  ASSERT_TRUE(standby.ExecuteScript(kDdl).ok());
  ASSERT_TRUE(standby.RegisterQuery(kQuery).ok());
  ASSERT_TRUE(standby.Subscribe(output_stream).ok());
  ASSERT_TRUE(standby.SetRoute("C1", 1, false).ok());  // tagid partitions
  ASSERT_TRUE(standby.SetRoute("C2", 1, false).ok());
  ASSERT_TRUE(standby.Bootstrap(dir_).ok());

  auto chain = ReadWalChain(WalPath());
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_FALSE(chain->records.empty());
  ASSERT_TRUE(standby.Apply(WalPath()).ok()) << standby.health();
  EXPECT_TRUE(standby.health().ok());
  // The standby consumed the whole chain and produced shard-0's share of
  // the post-checkpoint emissions (every SEQ match completes after the
  // C2 arrivals, which are all post-checkpoint).
  EXPECT_EQ(standby.applied_lsn(), chain->records.back().lsn);
  EXPECT_GT(standby.records_applied(), 0u);
  EXPECT_GT(standby.buffered_emissions(), 0u);
  EXPECT_LT(standby.buffered_emissions(), primary_rows.size() + 1);
  EXPECT_EQ(standby.applied_watermark(), Seconds(60));

  // Applying again is a no-op, not a re-emission.
  const size_t buffered = standby.buffered_emissions();
  ASSERT_TRUE(standby.Apply(WalPath()).ok());
  EXPECT_EQ(standby.buffered_emissions(), buffered);
}

TEST_F(StandbyShardTest, TornLiveTailIsToleratedAndCompletesLater) {
  const std::string full = WriteHeartbeatWal(dir_ + "/src.log", 1, 3);
  const std::string shipped = dir_ + "/shipped.log";
  ASSERT_TRUE(WriteFileAtomic(shipped, full.substr(0, full.size() - 3)).ok());

  StandbyShard standby({0, 1, EngineOptions{}});
  ASSERT_TRUE(standby.Apply(shipped).ok()) << standby.health();
  EXPECT_TRUE(standby.health().ok());
  EXPECT_EQ(standby.applied_lsn(), 2u);  // the third frame is torn

  // The rest of the frame arrives; the standby finishes the record.
  ASSERT_TRUE(WriteFileAtomic(shipped, full).ok());
  ASSERT_TRUE(standby.Apply(shipped).ok());
  EXPECT_EQ(standby.applied_lsn(), 3u);
  EXPECT_EQ(standby.applied_watermark(), 300);
}

TEST_F(StandbyShardTest, MidFileCorruptionIsStickyAndRefusesFurtherApplies) {
  std::string bytes = WriteHeartbeatWal(dir_ + "/src.log", 1, 3);
  bytes[bytes.size() / 2] ^= 0x40;  // flip a bit mid-file
  const std::string shipped = dir_ + "/shipped.log";
  ASSERT_TRUE(WriteFileAtomic(shipped, bytes).ok());

  StandbyShard standby({0, 1, EngineOptions{}});
  Status st = standby.Apply(shipped);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(standby.health().ok());
  // Sticky: even a now-clean chain is refused — the standby may have
  // diverged and must be rebuilt, not resumed.
  ASSERT_TRUE(
      WriteFileAtomic(shipped, WriteHeartbeatWal(dir_ + "/clean.log", 1, 3))
          .ok());
  EXPECT_FALSE(standby.Apply(shipped).ok());
}

TEST_F(StandbyShardTest, LsnGapFailsTheStandbyForGood) {
  const std::string a = WriteHeartbeatWal(dir_ + "/a.log", 1, 2);
  const std::string b = WriteHeartbeatWal(dir_ + "/b.log", 8, 1);
  const std::string shipped = dir_ + "/shipped.log";
  ASSERT_TRUE(WriteFileAtomic(shipped, a + b).ok());

  StandbyShard standby({0, 1, EngineOptions{}});
  Status st = standby.Apply(shipped);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("gap"), std::string::npos) << st;
  EXPECT_FALSE(standby.health().ok());
  EXPECT_EQ(standby.applied_lsn(), 2u);
}

TEST_F(StandbyShardTest, CorruptShippedSealedSegmentFailsHealth) {
  WalOptions options;
  options.group_commit_bytes = 0;
  options.segment_bytes = 1;  // every record seals its own segment
  const std::string wal = dir_ + "/seg.log";
  auto writer = WalWriter::Open(wal, 1, options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*writer)->AppendHeartbeat("", (i + 1) * 100).ok());
  }
  ASSERT_TRUE((*writer)->Flush().ok());
  ASSERT_EQ((*writer)->sealed_segments().size(), 3u);
  const std::string seg_path =
      WalSegmentPath(wal, (*writer)->sealed_segments()[1]);
  std::FILE* f = std::fopen(seg_path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 10, SEEK_SET), 0);
  std::fputc('X', f);
  std::fclose(f);

  StandbyShard standby({0, 1, EngineOptions{}});
  EXPECT_FALSE(standby.Apply(wal).ok());
  EXPECT_FALSE(standby.health().ok());
  // Only the segment before the corruption was applied.
  EXPECT_EQ(standby.applied_lsn(), 1u);
}

}  // namespace
}  // namespace eslev
