#include "rfid/epc.h"

#include <gtest/gtest.h>

namespace eslev {
namespace rfid {
namespace {

TEST(EpcTest, ParseAndFormat) {
  auto epc = ParseEpc("20.17.7042");
  ASSERT_TRUE(epc.ok());
  EXPECT_EQ(epc->company, "20");
  EXPECT_EQ(epc->product, "17");
  EXPECT_EQ(epc->serial, 7042);
  EXPECT_EQ(epc->ToString(), "20.17.7042");
}

TEST(EpcTest, ParseErrors) {
  EXPECT_TRUE(ParseEpc("20.17").status().IsInvalid());
  EXPECT_TRUE(ParseEpc("20.17.70.42").status().IsInvalid());
  EXPECT_TRUE(ParseEpc("20..7042").status().IsInvalid());
  EXPECT_TRUE(ParseEpc("20.17.abc").status().IsInvalid());
  EXPECT_TRUE(ParseEpc("").status().IsInvalid());
}

TEST(AlePatternTest, PaperPattern) {
  // The ALE-standard example from the paper: 20.*.[5000-9999].
  auto p = AlePattern::Parse("20.*.[5000-9999]");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->ToString(), "20.*.[5000-9999]");
  EXPECT_TRUE(p->Matches("20.17.7042"));
  EXPECT_TRUE(p->Matches("20.99.5000"));
  EXPECT_TRUE(p->Matches("20.99.9999"));
  EXPECT_FALSE(p->Matches("20.99.4999"));
  EXPECT_FALSE(p->Matches("20.99.10000"));
  EXPECT_FALSE(p->Matches("21.17.7042"));
  EXPECT_FALSE(p->Matches("garbage"));
}

TEST(AlePatternTest, ExactAndAnyFields) {
  auto p = AlePattern::Parse("*.17.*");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Matches("99.17.1"));
  EXPECT_FALSE(p->Matches("99.18.1"));

  auto exact = AlePattern::Parse("20.17.7042");
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->Matches("20.17.7042"));
  EXPECT_FALSE(exact->Matches("20.17.7043"));
}

TEST(AlePatternTest, RangeOnAnyField) {
  auto p = AlePattern::Parse("[10-30].*.*");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Matches("20.1.1"));
  EXPECT_FALSE(p->Matches("31.1.1"));
  // Non-numeric value against a range never matches.
  EXPECT_FALSE(p->Matches("abc.1.1"));
}

TEST(AlePatternTest, ParseErrors) {
  EXPECT_TRUE(AlePattern::Parse("20.*").status().IsInvalid());
  EXPECT_TRUE(AlePattern::Parse("20.*.[5000]").status().IsInvalid());
  EXPECT_TRUE(AlePattern::Parse("20.*.[9-5]").status().IsInvalid());
  EXPECT_TRUE(AlePattern::Parse("20.*.[a-b]").status().IsInvalid());
  EXPECT_TRUE(AlePattern::Parse("..").status().IsInvalid());
}

}  // namespace
}  // namespace rfid
}  // namespace eslev
