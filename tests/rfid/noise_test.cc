// Noise-injection tests (DESIGN.md §15): InjectNoise must be
// deterministic per seed, report the true arrival disorder of the trace
// it produced, and never touch event time — and a noisy trace must
// survive both trace formats byte-exactly, arrival order included, so
// recorded disordered runs replay as recorded.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "rfid/trace_io.h"
#include "rfid/workloads.h"

namespace eslev {
namespace rfid {
namespace {

Workload SmallCleanTrace() {
  DuplicateWorkloadOptions options;
  options.num_distinct = 200;
  options.duplicates_per_read = 0;  // noise adds its own duplicates
  // Inter-arrival well under max_shift, so displacement actually swaps
  // neighbours (slots are timestamp + U[0, max_shift]).
  options.inter_arrival = Milliseconds(20);
  options.seed = 11;
  Workload w = MakeDuplicateWorkload(options);
  NormalizeUniqueTimestamps(&w);
  return w;
}

NoiseOptions FullNoise() {
  NoiseOptions noise;
  noise.max_shift = Milliseconds(300);
  noise.duplicate_rate = 0.5;
  noise.duplicate_copies = 2;
  noise.drop_rate = 0.1;
  noise.spurious_rate = 0.2;
  noise.seed = 99;
  return noise;
}

// The minimum lateness bound that loses nothing, recomputed from the
// final arrival order the injector actually produced.
Duration ObservedDisorder(const Workload& w) {
  Duration worst = 0;
  Timestamp max_seen = kMinTimestamp;
  for (const auto& ev : w.events) {
    if (max_seen != kMinTimestamp && ev.tuple.ts() < max_seen) {
      worst = std::max(worst, max_seen - ev.tuple.ts());
    }
    max_seen = std::max(max_seen, ev.tuple.ts());
  }
  return worst;
}

TEST(InjectNoiseTest, SameSeedProducesIdenticalTraceAndStats) {
  Workload a = SmallCleanTrace();
  Workload b = SmallCleanTrace();
  NoiseStats sa = InjectNoise(&a, FullNoise());
  NoiseStats sb = InjectNoise(&b, FullNoise());

  EXPECT_EQ(sa.duplicates_added, sb.duplicates_added);
  EXPECT_EQ(sa.dropped, sb.dropped);
  EXPECT_EQ(sa.spurious_added, sb.spurious_added);
  EXPECT_EQ(sa.max_disorder, sb.max_disorder);

  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].stream, b.events[i].stream);
    EXPECT_TRUE(a.events[i].tuple.Equals(b.events[i].tuple)) << "event " << i;
  }
}

TEST(InjectNoiseTest, DifferentSeedsPerturbDifferently) {
  Workload a = SmallCleanTrace();
  Workload b = SmallCleanTrace();
  NoiseOptions noise = FullNoise();
  InjectNoise(&a, noise);
  noise.seed = noise.seed + 1;
  InjectNoise(&b, noise);

  bool differ = a.events.size() != b.events.size();
  for (size_t i = 0; !differ && i < a.events.size(); ++i) {
    differ = a.events[i].stream != b.events[i].stream ||
             !a.events[i].tuple.Equals(b.events[i].tuple);
  }
  EXPECT_TRUE(differ);
}

TEST(InjectNoiseTest, ReportedDisorderMatchesTraceAndRespectsBound) {
  Workload w = SmallCleanTrace();
  NoiseStats stats = InjectNoise(&w, FullNoise());

  EXPECT_GT(stats.duplicates_added, 0u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.spurious_added, 0u);
  EXPECT_EQ(stats.max_disorder, ObservedDisorder(w));
  EXPECT_LE(stats.max_disorder, FullNoise().max_shift);
}

TEST(InjectNoiseTest, DisorderOnlyPermutesArrivalNotEventTime) {
  Workload clean = SmallCleanTrace();
  Workload noisy = clean;
  NoiseOptions noise;
  noise.max_shift = Milliseconds(300);  // disorder alone, no add/drop
  noise.seed = 5;
  NoiseStats stats = InjectNoise(&noisy, noise);

  EXPECT_EQ(stats.duplicates_added, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.spurious_added, 0u);
  ASSERT_EQ(noisy.events.size(), clean.events.size());
  EXPECT_GT(stats.max_disorder, 0);  // 200 events: a shuffle is certain

  // Re-sorting the noisy trace by timestamp must recover the clean
  // trace exactly — proof that only arrival order was perturbed.
  std::stable_sort(noisy.events.begin(), noisy.events.end(),
                   [](const TimedReading& x, const TimedReading& y) {
                     return x.tuple.ts() < y.tuple.ts();
                   });
  for (size_t i = 0; i < clean.events.size(); ++i) {
    EXPECT_EQ(noisy.events[i].stream, clean.events[i].stream);
    EXPECT_TRUE(noisy.events[i].tuple.Equals(clean.events[i].tuple))
        << "event " << i;
  }
}

class NoisyTraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(csv_path_.c_str());
    std::remove(bin_path_.c_str());
  }

  std::string csv_path_ = ::testing::TempDir() + "/eslev_noise_trace.csv";
  std::string bin_path_ = ::testing::TempDir() + "/eslev_noise_trace.bin";
};

// Both trace formats must preserve the event VECTOR order, not just the
// event set: a disordered trace re-sorted on load would silently erase
// the very property the ingest tests replay it for.
TEST_F(NoisyTraceIoTest, RoundTripPreservesDisorderedArrivalOrder) {
  Workload noisy = SmallCleanTrace();
  NoiseStats stats = InjectNoise(&noisy, FullNoise());
  ASSERT_GT(stats.max_disorder, 0);

  const std::map<std::string, SchemaPtr> schemas = {
      {"readings", ReaderSchema()}};

  ASSERT_TRUE(SaveTraceCsv(noisy, csv_path_).ok());
  auto from_csv = LoadTraceCsv(csv_path_, schemas);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status();

  ASSERT_TRUE(SaveTraceBinary(noisy, bin_path_).ok());
  auto from_bin = LoadTraceBinary(bin_path_, schemas);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status();

  for (const Workload* loaded : {&*from_csv, &*from_bin}) {
    ASSERT_EQ(loaded->events.size(), noisy.events.size());
    for (size_t i = 0; i < noisy.events.size(); ++i) {
      EXPECT_EQ(loaded->events[i].stream, noisy.events[i].stream);
      EXPECT_TRUE(loaded->events[i].tuple.Equals(noisy.events[i].tuple))
          << "event " << i;
    }
    EXPECT_EQ(ObservedDisorder(*loaded), stats.max_disorder);
  }
}

TEST(NormalizeUniqueTimestampsTest, TiesBecomeStrictlyIncreasing) {
  auto schema = ReaderSchema();
  Workload w;
  for (Timestamp ts : {Seconds(1), Seconds(1), Seconds(1), Seconds(2)}) {
    auto t = MakeTuple(schema,
                       {Value::String("r"), Value::String("tag"),
                        Value::Time(ts)},
                       ts);
    ASSERT_TRUE(t.ok());
    w.events.push_back({"readings", std::move(*t)});
  }
  NormalizeUniqueTimestamps(&w);

  Timestamp prev = kMinTimestamp;
  for (const auto& ev : w.events) {
    EXPECT_GT(ev.tuple.ts(), prev);
    // Event-time columns shift in lockstep with the tuple timestamp.
    EXPECT_EQ(ev.tuple.value(2).time_value(), ev.tuple.ts());
    prev = ev.tuple.ts();
  }
}

}  // namespace
}  // namespace rfid
}  // namespace eslev
