#include "rfid/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace eslev {
namespace rfid {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/eslev_trace_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(TraceIoTest, RoundTripPackingWorkload) {
  PackingWorkloadOptions options;
  options.num_cases = 20;
  auto original = MakePackingWorkload(options);

  ASSERT_TRUE(SaveTraceCsv(original, path_).ok());

  std::map<std::string, SchemaPtr> schemas = {{"R1", ReaderSchema()},
                                              {"R2", ReaderSchema()}};
  auto loaded = LoadTraceCsv(path_, schemas);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->events.size(), original.events.size());
  for (size_t i = 0; i < original.events.size(); ++i) {
    EXPECT_EQ(loaded->events[i].stream, original.events[i].stream);
    EXPECT_TRUE(loaded->events[i].tuple.Equals(original.events[i].tuple))
        << "event " << i;
  }
}

TEST_F(TraceIoTest, QuotingAndNulls) {
  auto schema = Schema::Make({{"name", TypeId::kString},
                              {"v", TypeId::kInt64},
                              {"d", TypeId::kDouble},
                              {"flag", TypeId::kBool}});
  Workload w;
  w.events.push_back(
      {"s", Tuple(schema,
                  {Value::String("has,comma and \"quote\""), Value::Int(-5),
                   Value::Double(2.5), Value::Bool(true)},
                  7)});
  w.events.push_back(
      {"s", Tuple(schema,
                  {Value::Null(), Value::Null(), Value::Null(),
                   Value::Bool(false)},
                  9)});
  ASSERT_TRUE(SaveTraceCsv(w, path_).ok());

  auto loaded = LoadTraceCsv(path_, {{"s", schema}});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->events.size(), 2u);
  EXPECT_EQ(loaded->events[0].tuple.value(0).string_value(),
            "has,comma and \"quote\"");
  EXPECT_EQ(loaded->events[0].tuple.value(1).int_value(), -5);
  EXPECT_DOUBLE_EQ(loaded->events[0].tuple.value(2).double_value(), 2.5);
  EXPECT_TRUE(loaded->events[0].tuple.value(3).bool_value());
  EXPECT_TRUE(loaded->events[1].tuple.value(0).is_null());
  EXPECT_FALSE(loaded->events[1].tuple.value(3).bool_value());
  EXPECT_EQ(loaded->events[1].tuple.ts(), 9);
}

TEST_F(TraceIoTest, Errors) {
  EXPECT_TRUE(LoadTraceCsv("/nonexistent/dir/x.csv", {}).status().IsIoError());

  // Unknown stream.
  {
    std::ofstream out(path_);
    out << "mystery,5,a\n";
  }
  EXPECT_TRUE(LoadTraceCsv(path_, {}).status().IsNotFound());

  // Arity mismatch.
  auto schema = Schema::Make({{"a", TypeId::kString},
                              {"b", TypeId::kString}});
  {
    std::ofstream out(path_);
    out << "s,5,only_one\n";
  }
  EXPECT_TRUE(LoadTraceCsv(path_, {{"s", schema}}).status().IsIoError());

  // Bad numeric field.
  auto int_schema = Schema::Make({{"v", TypeId::kInt64}});
  {
    std::ofstream out(path_);
    out << "s,5,not_a_number\n";
  }
  EXPECT_TRUE(
      LoadTraceCsv(path_, {{"s", int_schema}}).status().IsIoError());

  // Bad timestamp.
  {
    std::ofstream out(path_);
    out << "s,abc,1\n";
  }
  EXPECT_TRUE(
      LoadTraceCsv(path_, {{"s", int_schema}}).status().IsIoError());

  // Unterminated quote.
  {
    std::ofstream out(path_);
    out << "s,5,\"oops\n";
  }
  EXPECT_TRUE(
      LoadTraceCsv(path_, {{"s", int_schema}}).status().IsIoError());
}

TEST_F(TraceIoTest, BinaryRoundTripPackingWorkload) {
  PackingWorkloadOptions options;
  options.num_cases = 20;
  auto original = MakePackingWorkload(options);

  ASSERT_TRUE(SaveTraceBinary(original, path_).ok());

  std::map<std::string, SchemaPtr> schemas = {{"R1", ReaderSchema()},
                                              {"R2", ReaderSchema()}};
  auto loaded = LoadTraceBinary(path_, schemas);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->events.size(), original.events.size());
  for (size_t i = 0; i < original.events.size(); ++i) {
    EXPECT_EQ(loaded->events[i].stream, original.events[i].stream);
    EXPECT_TRUE(loaded->events[i].tuple.Equals(original.events[i].tuple))
        << "event " << i;
    // Re-bound to the catalog schema, not a decoded copy.
    EXPECT_EQ(loaded->events[i].tuple.schema().get(),
              schemas.at(loaded->events[i].stream).get());
  }
}

TEST_F(TraceIoTest, BinaryWritesEachSchemaOnce) {
  DuplicateWorkloadOptions options;
  options.num_distinct = 200;
  auto workload = MakeDuplicateWorkload(options);
  ASSERT_TRUE(SaveTraceBinary(workload, path_).ok());
  // Schema back-referencing: the field name "read_time" appears in the
  // inline definition of the readings schema and nowhere else, no
  // matter how many events share it.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  size_t occurrences = 0;
  for (size_t at = bytes.find("read_time"); at != std::string::npos;
       at = bytes.find("read_time", at + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST_F(TraceIoTest, BinaryErrors) {
  EXPECT_TRUE(
      LoadTraceBinary("/nonexistent/dir/x.bin", {}).status().IsIoError());

  Workload w;
  w.events.push_back({"s",
                      Tuple(Schema::Make({{"v", TypeId::kInt64}}),
                            {Value::Int(1)}, 5)});
  ASSERT_TRUE(SaveTraceBinary(w, path_).ok());

  // Unknown stream.
  EXPECT_TRUE(LoadTraceBinary(path_, {}).status().IsNotFound());

  // Arity mismatch against the catalog schema.
  auto two = Schema::Make({{"a", TypeId::kInt64}, {"b", TypeId::kInt64}});
  EXPECT_TRUE(LoadTraceBinary(path_, {{"s", two}}).status().IsIoError());

  // Truncated file.
  {
    std::ifstream in(path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 4));
  }
  auto one = Schema::Make({{"v", TypeId::kInt64}});
  EXPECT_TRUE(LoadTraceBinary(path_, {{"s", one}}).status().IsIoError());

  // Not a trace file at all.
  {
    std::ofstream out(path_, std::ios::trunc | std::ios::binary);
    out << "definitely not frames";
  }
  EXPECT_TRUE(LoadTraceBinary(path_, {{"s", one}}).status().IsIoError());
}

}  // namespace
}  // namespace rfid
}  // namespace eslev
