// Workload generators: determinism, ordering, and — crucially — that the
// generated ground truth matches what the actual ESL-EV queries detect.

#include "rfid/workloads.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "rfid/epc.h"

namespace eslev {
namespace rfid {
namespace {

template <typename W>
void ExpectSortedAndDeterministic(const W& a, const W& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].stream, b.events[i].stream);
    EXPECT_TRUE(a.events[i].tuple.Equals(b.events[i].tuple));
    if (i > 0) {
      EXPECT_GE(a.events[i].tuple.ts(), a.events[i - 1].tuple.ts());
    }
  }
}

TEST(DuplicateWorkloadTest, DeterministicAndSorted) {
  DuplicateWorkloadOptions options;
  options.num_distinct = 50;
  ExpectSortedAndDeterministic(MakeDuplicateWorkload(options),
                               MakeDuplicateWorkload(options));
}

TEST(DuplicateWorkloadTest, GroundTruthMatchesEngineOutput) {
  DuplicateWorkloadOptions options;
  options.num_distinct = 200;
  options.duplicates_per_read = 4;
  auto w = MakeDuplicateWorkload(options);
  EXPECT_EQ(w.events.size(), 200u * 5u);

  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM readings(reader_id, tag_id, read_time);
    CREATE STREAM cleaned(reader_id, tag_id, read_time);
    INSERT INTO cleaned
    SELECT * FROM readings AS r1
    WHERE NOT EXISTS
      (SELECT * FROM TABLE( readings OVER
          (RANGE 1 seconds PRECEDING CURRENT)) AS r2
       WHERE r2.reader_id = r1.reader_id AND r2.tag_id = r1.tag_id);
  )sql")
                  .ok());
  size_t cleaned = 0;
  ASSERT_TRUE(engine.Subscribe("cleaned", [&](const Tuple&) { ++cleaned; })
                  .ok());
  for (const auto& e : w.events) {
    ASSERT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
  }
  EXPECT_EQ(cleaned, w.distinct_readings);
}

TEST(PackingWorkloadTest, GroundTruthMatchesEngineOutput) {
  PackingWorkloadOptions options;
  options.num_cases = 40;
  auto w = MakePackingWorkload(options);
  ASSERT_EQ(w.case_sizes.size(), 40u);

  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM R1(readerid, tagid, tagtime);
    CREATE STREAM R2(readerid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
    FROM R1, R2
    WHERE SEQ(R1*, R2) MODE CHRONICLE
      AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
      AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<int64_t> counts;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      counts.push_back(t.value(1).int_value());
                    }).ok());
  for (const auto& e : w.events) {
    ASSERT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
  }
  ASSERT_EQ(counts.size(), w.expected_events);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], static_cast<int64_t>(w.case_sizes[i]))
        << "case " << i;
  }
}

TEST(QualityCheckWorkloadTest, CompleteAndDroppedProducts) {
  QualityCheckWorkloadOptions options;
  options.num_products = 100;
  options.drop_rate = 0.3;
  auto w = MakeQualityCheckWorkload(options);
  EXPECT_LT(w.expected_events, 100u);
  EXPECT_GT(w.expected_events, 0u);

  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM C1(readerid, tagid, tagtime);
    CREATE STREAM C2(readerid, tagid, tagtime);
    CREATE STREAM C3(readerid, tagid, tagtime);
    CREATE STREAM C4(readerid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT C4.tagid FROM C1, C2, C3, C4
    WHERE SEQ(C1, C2, C3, C4)
      AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid AND C1.tagid=C4.tagid
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  size_t events = 0;
  ASSERT_TRUE(engine.Subscribe(q->output_stream,
                               [&](const Tuple&) { ++events; })
                  .ok());
  for (const auto& e : w.events) {
    ASSERT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
  }
  EXPECT_EQ(events, w.expected_events);
}

TEST(LabWorkflowWorkloadTest, ViolationsDetectedByExceptionSeq) {
  LabWorkflowWorkloadOptions options;
  options.num_rounds = 100;
  options.wrong_order_rate = 0.1;
  options.wrong_start_rate = 0.1;
  options.timeout_rate = 0.1;
  auto w = MakeLabWorkflowWorkload(options);
  EXPECT_GT(w.expected_exceptions, 0u);

  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM A1(staffid, tagid, tagtime);
    CREATE STREAM A2(staffid, tagid, tagtime);
    CREATE STREAM A3(staffid, tagid, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT A1.tagid, A2.tagid, A3.tagid
    FROM A1, A2, A3
    WHERE EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A1]
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  size_t alerts = 0;
  ASSERT_TRUE(
      engine.Subscribe(q->output_stream, [&](const Tuple&) { ++alerts; })
          .ok());
  for (const auto& e : w.events) {
    ASSERT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
  }
  ASSERT_TRUE(engine.AdvanceTime(engine.current_time() + Hours(2)).ok());
  // Every injected violation raises at least one alert; wrong-order
  // rounds raise two (abandoned partial + stray tuple).
  EXPECT_GE(alerts, w.expected_exceptions);
  // And clean rounds raise none: alerts are bounded by 2 per violation.
  EXPECT_LE(alerts, 2 * w.expected_exceptions);
}

TEST(DoorWorkloadTest, TheftsDetected) {
  DoorWorkloadOptions options;
  options.num_items = 200;
  options.theft_rate = 0.1;
  auto w = MakeDoorWorkload(options);
  EXPECT_GT(w.expected_events, 0u);

  Engine engine;
  ASSERT_TRUE(engine.ExecuteScript(R"sql(
    CREATE STREAM tag_readings(tagid, tagtype, tagtime);
  )sql")
                  .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT * FROM tag_readings AS item
    WHERE item.tagtype = 'item' AND NOT EXISTS
      (SELECT * FROM tag_readings AS person
         OVER [1 MINUTES PRECEDING AND FOLLOWING item]
       WHERE person.tagtype = 'person')
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  size_t alerts = 0;
  ASSERT_TRUE(
      engine.Subscribe(q->output_stream, [&](const Tuple&) { ++alerts; })
          .ok());
  for (const auto& e : w.events) {
    ASSERT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
  }
  ASSERT_TRUE(engine.AdvanceTime(engine.current_time() + Minutes(5)).ok());
  EXPECT_EQ(alerts, w.expected_events);
}

TEST(EpcWorkloadTest, GroundTruthMatchesQuery) {
  EpcWorkloadOptions options;
  options.num_readings = 2000;
  auto w = MakeEpcWorkload(options);
  EXPECT_GT(w.expected_matches, 0u);
  EXPECT_LT(w.expected_matches, 2000u);

  Engine engine;
  ASSERT_TRUE(
      engine.ExecuteScript("CREATE STREAM readings(reader_id, tid, read_time);")
          .ok());
  auto q = engine.RegisterQuery(R"sql(
    SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
      AND extract_serial(tid) >= 5000
      AND extract_serial(tid) <= 9999
  )sql");
  ASSERT_TRUE(q.ok()) << q.status();
  int64_t last_count = 0;
  ASSERT_TRUE(engine.Subscribe(q->output_stream, [&](const Tuple& t) {
                      last_count = t.value(0).int_value();
                    }).ok());
  for (const auto& e : w.events) {
    ASSERT_TRUE(engine.PushTuple(e.stream, e.tuple).ok());
  }
  EXPECT_EQ(last_count, static_cast<int64_t>(w.expected_matches));
}

}  // namespace
}  // namespace rfid
}  // namespace eslev
