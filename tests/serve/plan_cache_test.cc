// SharedPlanCache and SQL canonicalization tests (DESIGN.md §17): the
// canonical printer must be a fixed point under parse→print, map every
// formatting variant of a query to one text/hash, and never conflate
// genuinely different queries; the cache must track refs and expose the
// sharing metrics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/plan_cache.h"
#include "sql/canonical.h"
#include "sql/parser.h"

namespace eslev {
namespace {

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

std::string Canonical(const std::string& sql) {
  auto r = CanonicalizeQuery(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
  return r.ok() ? r->text : "";
}

TEST(CanonicalTest, FormattingVariantsCollapse) {
  const std::string reference =
      Canonical("SELECT * FROM R1 WHERE R1.tagid = 'x'");
  ASSERT_FALSE(reference.empty());
  const std::vector<std::string> variants = {
      "select * from R1 where R1.tagid = 'x'",
      "SELECT  *  FROM R1\n WHERE  R1.tagid  =  'x';",
      "SELECT * FROM R1 WHERE (R1.tagid = 'x')",
  };
  for (const std::string& v : variants) {
    EXPECT_EQ(Canonical(v), reference) << v;
    EXPECT_EQ(CanonicalHash(Canonical(v)), CanonicalHash(reference));
  }
}

TEST(CanonicalTest, WindowAndIntervalVariantsCollapse) {
  const std::string a = Canonical(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [60 SECONDS "
      "PRECEDING R2] AND R1.tagid = R2.tagid");
  const std::string b = Canonical(
      "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [ 1 MINUTES "
      "PRECEDING R2 ] AND R1.tagid = R2.tagid");
  EXPECT_EQ(a, b);
}

TEST(CanonicalTest, DifferentQueriesStayDifferent) {
  const std::vector<std::string> queries = {
      "SELECT * FROM R1 WHERE R1.tagid = 'x'",
      "SELECT * FROM R1 WHERE R1.tagid = 'y'",
      "SELECT * FROM R2 WHERE R2.tagid = 'x'",
      "SELECT R1.tagid FROM R1 WHERE R1.tagid = 'x'",
      "SELECT * FROM R1 WHERE R1.tagid = 'x' AND R1.readerid = 'r'",
  };
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = i + 1; j < queries.size(); ++j) {
      EXPECT_NE(Canonical(queries[i]), Canonical(queries[j]))
          << queries[i] << " vs " << queries[j];
    }
  }
}

TEST(CanonicalTest, CanonicalTextIsAFixedPoint) {
  const std::vector<std::string> queries = {
      "SELECT * FROM R1 WHERE R1.tagid = 'x'",
      "SELECT R1.tagid, R2.tagtime FROM R1, R2 WHERE SEQ(R1, R2) OVER "
      "[10 SECONDS PRECEDING R2] MODE RECENT AND R1.tagid = R2.tagid",
      "SELECT * FROM R1 AS a WHERE NOT EXISTS (SELECT * FROM TABLE( R1 "
      "OVER (RANGE 1 SECONDS PRECEDING CURRENT)) AS b WHERE b.tagid = "
      "a.tagid)",
      "SELECT count(tagid) FROM R1",
      "SELECT * FROM R1 WHERE R1.tagtime - 5 SECONDS > 0 AND "
      "R1.readerid <> 'bad'",
  };
  for (const std::string& sql : queries) {
    const std::string once = Canonical(sql);
    ASSERT_FALSE(once.empty()) << sql;
    EXPECT_EQ(Canonical(once), once) << sql;
    // The canonical text must itself parse.
    auto reparse = ParseStatement(once);
    EXPECT_TRUE(reparse.ok()) << once << ": " << reparse.status();
  }
}

TEST(CanonicalTest, StringEscapesSurvive) {
  const std::string canonical =
      Canonical("SELECT * FROM R1 WHERE R1.tagid = 'it''s'");
  ASSERT_FALSE(canonical.empty());
  EXPECT_NE(canonical.find("'it''s'"), std::string::npos) << canonical;
  EXPECT_EQ(Canonical(canonical), canonical);
}

TEST(CanonicalTest, RejectsMalformedSql) {
  EXPECT_FALSE(CanonicalizeQuery("SELECT FROM WHERE").ok());
}

// ---------------------------------------------------------------------------
// SharedPlanCache
// ---------------------------------------------------------------------------

SharedPlanCache::Entry MakeEntry(const std::string& canonical, int id) {
  SharedPlanCache::Entry entry;
  entry.canonical = canonical;
  entry.hash = CanonicalHash(canonical);
  entry.engine_query_id = id;
  entry.output_stream = "_q" + std::to_string(id);
  entry.state_tuples = 10;
  entry.state_bounded = true;
  return entry;
}

TEST(SharedPlanCacheTest, LookupInsertReleaseLifecycle) {
  SharedPlanCache cache(/*share=*/true);
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  SharedPlanCache::Entry* entry = cache.Insert(MakeEntry("q", 1));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->refs, 1);
  EXPECT_EQ(cache.size(), 1u);

  SharedPlanCache::Entry* hit = cache.Lookup("q");
  ASSERT_EQ(hit, entry);
  EXPECT_EQ(cache.hits(), 1u);
  cache.AddRef(hit);
  EXPECT_EQ(entry->refs, 2);

  EXPECT_FALSE(cache.Release(1));  // one subscriber left
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Release(1));  // last subscriber: destroy pipeline
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  EXPECT_FALSE(cache.Release(1));  // unknown id
}

TEST(SharedPlanCacheTest, SharingDisabledAlwaysMisses) {
  SharedPlanCache cache(/*share=*/false);
  cache.Insert(MakeEntry("q", 1));
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  // Entries are still tracked (dispatcher + registry need them), and
  // Peek sees them regardless of the sharing flag.
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.Peek("q"), nullptr);
  EXPECT_EQ(cache.Peek("q")->engine_query_id, 1);
}

TEST(SharedPlanCacheTest, ParallelPipelinesForOneTextWhenUnshared) {
  SharedPlanCache cache(/*share=*/false);
  cache.Insert(MakeEntry("q", 1));
  cache.Insert(MakeEntry("q", 2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Release(1));
  ASSERT_NE(cache.Peek("q"), nullptr);
  EXPECT_EQ(cache.Peek("q")->engine_query_id, 2);
  EXPECT_TRUE(cache.Release(2));
  EXPECT_EQ(cache.Peek("q"), nullptr);
}

TEST(SharedPlanCacheTest, MetricsReportEntriesAndSubscriptions) {
  SharedPlanCache cache(/*share=*/true);
  SharedPlanCache::Entry* e = cache.Insert(MakeEntry("a", 1));
  cache.AddRef(e);
  cache.Insert(MakeEntry("b", 2));
  cache.Lookup("a");
  cache.Lookup("nope");

  MetricsSnapshot snap;
  cache.AppendMetrics(&snap);
  EXPECT_EQ(snap.gauges.at("serve.plan_cache.entries"), 2);
  EXPECT_EQ(snap.gauges.at("serve.plan_cache.subscriptions"), 3);
  EXPECT_EQ(snap.gauges.at("serve.plan_cache.sharing_enabled"), 1);
  EXPECT_EQ(snap.counters.at("serve.plan_cache.hits"), 1u);
  EXPECT_EQ(snap.counters.at("serve.plan_cache.misses"), 1u);
}

}  // namespace
}  // namespace eslev
