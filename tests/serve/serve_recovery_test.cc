// Checkpoint/restore of the serving-layer session registry
// (DESIGN.md §17): the full topology — operator scripts, tenants,
// quotas, registrations and the query-id counter — must round-trip
// through session.reg, rebuilding every pipeline at its original
// engine query id before host state is restored and the WAL replayed.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "recovery/checkpoint.h"
#include "recovery/codec.h"
#include "serve/server.h"

namespace eslev {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "serve_ckpt_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

constexpr char kDdl[] = R"sql(
  CREATE STREAM R1(readerid, tagid, tagtime);
  CREATE STREAM R2(readerid, tagid, tagtime);
)sql";

constexpr char kFilter[] = "SELECT * FROM R1 WHERE R1.tagid = 'x'";
constexpr char kBoundedSeq[] =
    "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
    "PRECEDING R2] AND R1.tagid = R2.tagid";

struct Harness {
  Engine engine;
  EngineHost host;
  QueryServer server;
  Harness() : host(&engine), server(&host) {}
};

Status PushR1(QueryServer& server, const std::string& tag, Timestamp ts) {
  return server.Push(
      "R1", {Value::String("r"), Value::String(tag), Value::Time(ts)}, ts);
}

std::vector<std::string> DrainAll(Session& session) {
  std::vector<std::string> out;
  EXPECT_TRUE(session
                  .Drain([&](const ServedEmission& e) {
                    out.push_back(e.query + ":" + e.tuple.ToString());
                  })
                  .ok());
  return out;
}

TEST(ServeRecoveryTest, RegistryRoundTripRestoresTopologyAndTail) {
  const std::string dir = FreshDir("roundtrip");
  WalOptions wal_options;
  wal_options.group_commit_bytes = 0;

  const std::vector<std::pair<std::string, Timestamp>> trace = {
      {"x", Seconds(1)}, {"y", Seconds(2)}, {"x", Seconds(3)},
      {"x", Seconds(4)}, {"y", Seconds(5)}, {"x", Seconds(6)},
  };
  const size_t ckpt_at = 2, crash_at = 4;

  // Reference: one uninterrupted server over the full trace.
  std::vector<std::string> ref_acme, ref_globex;
  {
    Harness ref;
    ASSERT_TRUE(ref.server.ExecuteScript(kDdl).ok());
    auto acme = ref.server.OpenSession("acme");
    auto globex = ref.server.OpenSession("globex");
    ASSERT_TRUE(acme.ok() && globex.ok());
    ASSERT_TRUE(acme->Register("mine", kFilter).ok());
    ASSERT_TRUE(globex->Register("same", kFilter).ok());
    ASSERT_TRUE(acme->Register("pairs", kBoundedSeq).ok());
    for (const auto& [tag, ts] : trace) {
      ASSERT_TRUE(PushR1(ref.server, tag, ts).ok());
    }
    ref_acme = DrainAll(*acme);
    ref_globex = DrainAll(*globex);
  }

  // Run A: same topology, WAL on, checkpoint mid-way, crash later.
  std::vector<std::string> delivered_acme, delivered_globex;
  int shared_id = 0;
  {
    Harness a;
    ASSERT_TRUE(
        a.server.EnableWal(dir + "/" + kWalFileName, wal_options).ok());
    ASSERT_TRUE(a.server.ExecuteScript(kDdl).ok());
    auto acme = a.server.OpenSession("acme");
    auto globex = a.server.OpenSession("globex");
    ASSERT_TRUE(acme.ok() && globex.ok());
    auto mine = acme->Register("mine", kFilter);
    auto same = globex->Register("same", kFilter);
    ASSERT_TRUE(mine.ok() && same.ok());
    shared_id = mine->engine_query_id;
    EXPECT_TRUE(same->shared);
    ASSERT_TRUE(acme->Register("pairs", kBoundedSeq).ok());

    for (size_t i = 0; i < ckpt_at; ++i) {
      ASSERT_TRUE(PushR1(a.server, trace[i].first, trace[i].second).ok());
    }
    // Emissions observed before the crash.
    for (const std::string& e : DrainAll(*acme)) delivered_acme.push_back(e);
    for (const std::string& e : DrainAll(*globex)) {
      delivered_globex.push_back(e);
    }
    ASSERT_TRUE(a.server.Checkpoint(dir).ok());
    for (size_t i = ckpt_at; i < crash_at; ++i) {
      ASSERT_TRUE(PushR1(a.server, trace[i].first, trace[i].second).ok());
    }
    for (const std::string& e : DrainAll(*acme)) delivered_acme.push_back(e);
    for (const std::string& e : DrainAll(*globex)) {
      delivered_globex.push_back(e);
    }
  }  // crash

  // Run B: recover and feed the tail.
  Harness b;
  ASSERT_TRUE(std::filesystem::exists(dir + "/" +
                                      kSessionRegistryFileName));
  const Status recovered = b.server.RecoverFrom(dir);
  ASSERT_TRUE(recovered.ok()) << recovered;
  EXPECT_EQ(b.server.tenant_count(), 2u);
  EXPECT_EQ(b.server.plan_cache().size(), 2u);

  auto acme = b.server.AttachSession("acme");
  auto globex = b.server.AttachSession("globex");
  ASSERT_TRUE(acme.ok() && globex.ok());
  auto queries = acme->Queries();
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 2u);
  // Pipelines kept their original engine query ids and sharing.
  for (const ServedQueryInfo& q : *queries) {
    if (q.name == "mine") {
      EXPECT_EQ(q.engine_query_id, shared_id);
    }
  }
  auto gq = globex->Queries();
  ASSERT_TRUE(gq.ok());
  ASSERT_EQ(gq->size(), 1u);
  EXPECT_EQ((*gq)[0].engine_query_id, shared_id);

  // WAL replay must not re-deliver pre-crash emissions.
  EXPECT_EQ(acme->pending(), 0u);
  EXPECT_EQ(globex->pending(), 0u);

  for (size_t i = crash_at; i < trace.size(); ++i) {
    ASSERT_TRUE(PushR1(b.server, trace[i].first, trace[i].second).ok());
  }
  std::vector<std::string> combined_acme = delivered_acme;
  for (const std::string& e : DrainAll(*acme)) combined_acme.push_back(e);
  std::vector<std::string> combined_globex = delivered_globex;
  for (const std::string& e : DrainAll(*globex)) combined_globex.push_back(e);
  EXPECT_EQ(combined_acme, ref_acme);
  EXPECT_EQ(combined_globex, ref_globex);

  // The id counter was restored: a new pipeline gets a fresh id, not a
  // recycled one.
  auto fresh = acme->Register("fresh", "SELECT * FROM R2");
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_GT(fresh->engine_query_id, shared_id);
  std::filesystem::remove_all(dir);
}

TEST(ServeRecoveryTest, IdGapsAndScriptInterleavingReplayExactly) {
  const std::string dir = FreshDir("gaps");
  int id_q2 = 0, id_q3 = 0;
  {
    Harness a;
    ASSERT_TRUE(a.server.ExecuteScript(kDdl).ok());
    auto session = a.server.OpenSession("acme");
    ASSERT_TRUE(session.ok());
    auto q1 = session->Register("q1", kFilter);
    ASSERT_TRUE(q1.ok());
    auto q2 = session->Register("q2", "SELECT * FROM R2");
    ASSERT_TRUE(q2.ok());
    id_q2 = q2->engine_query_id;
    // Unregistering q1 leaves a permanent id gap the registry must
    // reproduce (ids are positional in the host checkpoint).
    ASSERT_TRUE(session->Unregister("q1").ok());
    // A later operator script interleaves with the registrations.
    ASSERT_TRUE(a.server
                    .ExecuteScript(
                        "CREATE STREAM R3(readerid, tagid, tagtime);")
                    .ok());
    auto q3 = session->Register("q3", "SELECT * FROM R3");
    ASSERT_TRUE(q3.ok());
    id_q3 = q3->engine_query_id;
    ASSERT_TRUE(a.server.Checkpoint(dir).ok());
  }
  ASSERT_GT(id_q3, id_q2);

  Harness b;
  const Status recovered = b.server.RecoverFrom(dir);
  ASSERT_TRUE(recovered.ok()) << recovered;
  auto session = b.server.AttachSession("acme");
  ASSERT_TRUE(session.ok());
  auto queries = session->Queries();
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 2u);
  for (const ServedQueryInfo& q : *queries) {
    if (q.name == "q2") {
      EXPECT_EQ(q.engine_query_id, id_q2);
    }
    if (q.name == "q3") {
      EXPECT_EQ(q.engine_query_id, id_q3);
    }
  }
  // R3 exists again (the interleaved script replayed) and serves data.
  ASSERT_TRUE(b.server
                  .Push("R3",
                        {Value::String("r"), Value::String("t"),
                         Value::Time(Seconds(1))},
                        Seconds(1))
                  .ok());
  EXPECT_EQ(session->pending(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(ServeRecoveryTest, QuotasSurviveRecovery) {
  const std::string dir = FreshDir("quotas");
  {
    Harness a;
    ASSERT_TRUE(a.server.ExecuteScript(kDdl).ok());
    TenantQuotas quotas;
    quotas.max_queries = 1;
    auto session = a.server.OpenSession("acme", quotas);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session->Register("q1", kFilter).ok());
    ASSERT_TRUE(a.server.Checkpoint(dir).ok());
  }
  Harness b;
  ASSERT_TRUE(b.server.RecoverFrom(dir).ok());
  auto session = b.server.AttachSession("acme");
  ASSERT_TRUE(session.ok());
  const auto r = session->Register("q2", "SELECT * FROM R2");
  EXPECT_TRUE(r.status().IsOutOfRange()) << r.status();
  std::filesystem::remove_all(dir);
}

TEST(ServeRecoveryTest, RecoverFromRequiresFreshServer) {
  const std::string dir = FreshDir("fresh");
  {
    Harness a;
    ASSERT_TRUE(a.server.ExecuteScript(kDdl).ok());
    ASSERT_TRUE(a.server.Checkpoint(dir).ok());
  }
  Harness b;
  ASSERT_TRUE(b.server.ExecuteScript("CREATE STREAM S1(a, b);").ok());
  EXPECT_TRUE(b.server.RecoverFrom(dir).IsInvalid());
  std::filesystem::remove_all(dir);
}

TEST(ServeRecoveryTest, TruncatedRegistryFailsCleanly) {
  const std::string dir = FreshDir("torn");
  {
    Harness a;
    ASSERT_TRUE(a.server.ExecuteScript(kDdl).ok());
    auto session = a.server.OpenSession("acme");
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session->Register("q", kFilter).ok());
    ASSERT_TRUE(a.server.Checkpoint(dir).ok());
  }
  const std::string path = dir + "/" + kSessionRegistryFileName;
  auto bytes = ReadFileAll(path);
  ASSERT_TRUE(bytes.ok());
  // Drop the end-marker frame: a torn registry must fail, not silently
  // serve a partial topology.
  ASSERT_TRUE(
      WriteFileAtomic(path, bytes->substr(0, bytes->size() - 10)).ok());
  Harness b;
  EXPECT_TRUE(b.server.RecoverFrom(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

TEST(ServeRecoveryTest, MissingRegistryFailsCleanly) {
  const std::string dir = FreshDir("missing");
  {
    Engine engine;
    ASSERT_TRUE(engine.ExecuteScript(kDdl).ok());
    ASSERT_TRUE(engine.Checkpoint(dir).ok());  // host-only checkpoint
  }
  Harness b;
  EXPECT_TRUE(b.server.RecoverFrom(dir).IsIoError());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eslev
