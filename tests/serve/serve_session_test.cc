// Unit tests for the multi-tenant serving layer (DESIGN.md §17):
// session lifecycle, plan sharing, runtime unregistration, admission
// control against the PR 9 static state bounds, backpressure and the
// serving metrics surface.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "serve/server.h"

namespace eslev {
namespace {

constexpr char kDdl[] = R"sql(
  CREATE STREAM R1(readerid, tagid, tagtime);
  CREATE STREAM R2(readerid, tagid, tagtime);
)sql";

// Bounded: rate(R1) * 5s + 1 retained tuples (51 once R1 declares
// 10 tuples/s).
constexpr char kBoundedSeq[] =
    "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
    "PRECEDING R2] AND R1.tagid = R2.tagid";
// Unbounded: SEQ history with no window grants no purge license.
constexpr char kUnboundedSeq[] =
    "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) AND R1.tagid = R2.tagid";
// Stateless pass-through filter.
constexpr char kFilter[] = "SELECT * FROM R1 WHERE R1.tagid = 'x'";

class ServeSessionTest : public ::testing::Test {
 protected:
  ServeSessionTest() : host_(&engine_), server_(&host_) {}

  void SetUp() override {
    const Status status = server_.ExecuteScript(kDdl);
    ASSERT_TRUE(status.ok()) << status;
  }

  Status PushR1(const std::string& tag, Timestamp ts) {
    return server_.Push(
        "R1", {Value::String("r"), Value::String(tag), Value::Time(ts)}, ts);
  }

  Engine engine_;
  EngineHost host_;
  QueryServer server_;
};

TEST_F(ServeSessionTest, OperatorScriptRejectsBareSelectAndExplain) {
  const Status select = server_.ExecuteScript(kFilter);
  EXPECT_FALSE(select.ok());
  EXPECT_NE(select.message().find("Session::Register"), std::string::npos)
      << select;
  EXPECT_FALSE(server_.ExecuteScript("EXPLAIN SELECT * FROM R1").ok());
}

TEST_F(ServeSessionTest, RegisterRejectsNonSelect) {
  auto session = server_.OpenSession("acme");
  ASSERT_TRUE(session.ok()) << session.status();
  const auto r = session->Register(
      "q", "INSERT INTO R2 SELECT * FROM R1 WHERE R1.tagid = 'x'");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("operator plane"), std::string::npos);
}

TEST_F(ServeSessionTest, DuplicateSessionAndDuplicateQueryNameRejected) {
  ASSERT_TRUE(server_.OpenSession("acme").ok());
  EXPECT_TRUE(server_.OpenSession("acme").status().IsAlreadyExists());

  auto session = Session();
  {
    auto again = server_.OpenSession("globex");
    ASSERT_TRUE(again.ok());
    session = *again;
  }
  ASSERT_TRUE(session.Register("q", kFilter).ok());
  const auto dup = session.Register("q", kBoundedSeq);
  EXPECT_TRUE(dup.status().IsAlreadyExists()) << dup.status();
  // The name stays bound to the original query.
  auto queries = session.Queries();
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 1u);
}

TEST_F(ServeSessionTest, IdenticalQueriesShareOnePipeline) {
  auto a = server_.OpenSession("acme");
  auto b = server_.OpenSession("globex");
  ASSERT_TRUE(a.ok() && b.ok());

  auto qa = a->Register("mine", kFilter);
  ASSERT_TRUE(qa.ok()) << qa.status();
  EXPECT_FALSE(qa->shared);

  // Formatting and keyword case differ; canonicalization matches them.
  auto qb = b->Register(
      "same", "select  *  from R1\n where R1.tagid  =  'x'");
  ASSERT_TRUE(qb.ok()) << qb.status();
  EXPECT_TRUE(qb->shared);
  EXPECT_EQ(qa->engine_query_id, qb->engine_query_id);
  EXPECT_EQ(server_.plan_cache().size(), 1u);

  // One emission fans out to both tenants.
  ASSERT_TRUE(PushR1("x", Seconds(1)).ok());
  ASSERT_TRUE(PushR1("y", Seconds(2)).ok());
  ASSERT_TRUE(server_.Poll().ok());
  std::vector<std::string> got_a, got_b;
  ASSERT_TRUE(a->Drain([&](const ServedEmission& e) {
                 got_a.push_back(e.query + ":" + e.tuple.ToString());
               }).ok());
  ASSERT_TRUE(b->Drain([&](const ServedEmission& e) {
                 got_b.push_back(e.query + ":" + e.tuple.ToString());
               }).ok());
  ASSERT_EQ(got_a.size(), 1u);
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_a[0].substr(0, 5), "mine:");
  EXPECT_EQ(got_b[0].substr(0, 5), "same:");
  EXPECT_EQ(got_a[0].substr(5), got_b[0].substr(5));
}

TEST_F(ServeSessionTest, SharingDisabledCompilesSeparatePipelines) {
  Engine engine;
  EngineHost host(&engine);
  QueryServerOptions options;
  options.share_plans = false;
  QueryServer server(&host, options);
  ASSERT_TRUE(server.ExecuteScript(kDdl).ok());
  auto a = server.OpenSession("acme");
  auto b = server.OpenSession("globex");
  ASSERT_TRUE(a.ok() && b.ok());
  auto qa = a->Register("q", kFilter);
  auto qb = b->Register("q", kFilter);
  ASSERT_TRUE(qa.ok() && qb.ok());
  EXPECT_FALSE(qb->shared);
  EXPECT_NE(qa->engine_query_id, qb->engine_query_id);
  EXPECT_EQ(server.plan_cache().size(), 2u);
}

TEST_F(ServeSessionTest, UnregisterMidStreamStopsOnlyThatTenant) {
  auto a = server_.OpenSession("acme");
  auto b = server_.OpenSession("globex");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->Register("q", kFilter).ok());
  ASSERT_TRUE(b->Register("q", kFilter).ok());

  ASSERT_TRUE(PushR1("x", Seconds(1)).ok());
  // Unregister without draining first: the emission produced before the
  // unregistration must survive in acme's outbox.
  ASSERT_TRUE(a->Unregister("q").ok());
  EXPECT_EQ(a->pending(), 1u);

  ASSERT_TRUE(PushR1("x", Seconds(2)).ok());
  ASSERT_TRUE(server_.Poll().ok());
  EXPECT_EQ(a->pending(), 1u);  // no new deliveries after unregister
  EXPECT_EQ(b->pending(), 2u);

  // The shared pipeline survives while globex still subscribes.
  EXPECT_EQ(server_.plan_cache().size(), 1u);
  ASSERT_TRUE(b->Unregister("q").ok());
  EXPECT_EQ(server_.plan_cache().size(), 0u);

  // With the last subscriber gone the pipeline is destroyed: new pushes
  // reach nobody and the query slot is reusable.
  ASSERT_TRUE(PushR1("x", Seconds(3)).ok());
  EXPECT_EQ(b->pending(), 2u);
  ASSERT_TRUE(a->Register("q2", kFilter).ok());
}

TEST_F(ServeSessionTest, UnregisterUnknownNameIsNotFound) {
  auto session = server_.OpenSession("acme");
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->Unregister("nope").IsNotFound());
}

TEST_F(ServeSessionTest, MaxQueriesQuotaRejects) {
  TenantQuotas quotas;
  quotas.max_queries = 1;
  auto session = server_.OpenSession("acme", quotas);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Register("q1", kFilter).ok());
  const auto r = session->Register("q2", kBoundedSeq);
  EXPECT_TRUE(r.status().IsOutOfRange()) << r.status();
  EXPECT_NE(r.status().message().find("query quota"), std::string::npos);
  // Unregistering frees the slot.
  ASSERT_TRUE(session->Unregister("q1").ok());
  EXPECT_TRUE(session->Register("q2", kBoundedSeq).ok());
}

TEST_F(ServeSessionTest, StateBudgetRejectionCarriesSymbolicBound) {
  StreamStats stats;
  stats.rate_per_sec = 10;
  stats.distinct_keys = 4;
  ASSERT_TRUE(server_.DeclareStreamStats("R1", stats).ok());
  ASSERT_TRUE(server_.DeclareStreamStats("R2", stats).ok());

  TenantQuotas quotas;
  quotas.max_state_tuples = 60;  // one 51-tuple query fits, two do not
  auto session = server_.OpenSession("acme", quotas);
  ASSERT_TRUE(session.ok());

  auto first = session->Register("q1", kBoundedSeq);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_DOUBLE_EQ(first->state_tuples, 51);  // 10/s * 5s + 1
  EXPECT_DOUBLE_EQ(session->admitted_state_tuples(), 51);

  // A distinct query with the same shape (different projection) cannot
  // share the pipeline, so its 51-tuple bound exceeds the remaining 9.
  const auto r = session->Register(
      "q2",
      "SELECT R2.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER [5 SECONDS "
      "PRECEDING R2] AND R1.tagid = R2.tagid");
  ASSERT_TRUE(r.status().IsOutOfRange()) << r.status();
  // The error embeds the symbolic bound, not just a number.
  EXPECT_NE(r.status().message().find("r(R1)*5s+1"), std::string::npos)
      << r.status();
  EXPECT_NE(r.status().message().find("51 of 60"), std::string::npos)
      << r.status();

  // Releasing the first query returns its budget.
  ASSERT_TRUE(session->Unregister("q1").ok());
  EXPECT_DOUBLE_EQ(session->admitted_state_tuples(), 0);
  EXPECT_TRUE(session->Register("q2", kBoundedSeq).ok());
}

TEST_F(ServeSessionTest, UnboundedStateRequiresOptIn) {
  auto strict = server_.OpenSession("strict");
  ASSERT_TRUE(strict.ok());
  const auto r = strict->Register("q", kUnboundedSeq);
  ASSERT_TRUE(r.status().IsOutOfRange()) << r.status();
  EXPECT_NE(r.status().message().find("unbounded"), std::string::npos);

  TenantQuotas quotas;
  quotas.allow_unbounded_state = true;
  auto lax = server_.OpenSession("lax", quotas);
  ASSERT_TRUE(lax.ok());
  auto admitted = lax->Register("q", kUnboundedSeq);
  ASSERT_TRUE(admitted.ok()) << admitted.status();
  EXPECT_FALSE(admitted->state_bounded);
}

TEST_F(ServeSessionTest, SharedAttachmentStillChargesTheTenant) {
  StreamStats stats;
  stats.rate_per_sec = 10;
  stats.distinct_keys = 4;
  ASSERT_TRUE(server_.DeclareStreamStats("R1", stats).ok());
  ASSERT_TRUE(server_.DeclareStreamStats("R2", stats).ok());

  auto a = server_.OpenSession("acme");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Register("q", kBoundedSeq).ok());

  TenantQuotas tight;
  tight.max_state_tuples = 50;  // below the 51-tuple charge
  auto b = server_.OpenSession("globex", tight);
  ASSERT_TRUE(b.ok());
  // The pipeline already runs (cache hit), but the tenant is charged
  // for its logical share and rejected — sharing must not become a
  // quota bypass.
  const auto r = b->Register("q", kBoundedSeq);
  EXPECT_TRUE(r.status().IsOutOfRange()) << r.status();
  EXPECT_NE(r.status().message().find("r(R1)*5s+1"), std::string::npos);
}

TEST_F(ServeSessionTest, BackpressureDropsPerPolicyWithSeqGaps) {
  TenantQuotas quotas;
  quotas.max_pending_emissions = 2;
  quotas.backpressure = BackpressurePolicy::kDropOldest;
  auto session = server_.OpenSession("slow", quotas);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Register("q", kFilter).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(PushR1("x", Seconds(i + 1)).ok());
  }
  EXPECT_EQ(session->pending(), 2u);
  std::vector<uint64_t> seqs;
  ASSERT_TRUE(
      session->Drain([&](const ServedEmission& e) { seqs.push_back(e.seq); })
          .ok());
  // Drop-oldest kept the two newest of five (seq 3, 4).
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], 3u);
  EXPECT_EQ(seqs[1], 4u);
}

TEST_F(ServeSessionTest, CloseSessionReleasesEverything) {
  auto a = server_.OpenSession("acme");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Register("q1", kFilter).ok());
  ASSERT_TRUE(a->Register("q2", kBoundedSeq).ok());
  ASSERT_TRUE(server_.CloseSession("acme").ok());
  EXPECT_EQ(server_.tenant_count(), 0u);
  EXPECT_EQ(server_.plan_cache().size(), 0u);
  EXPECT_TRUE(a->Register("q3", kFilter).status().IsNotFound());
  EXPECT_TRUE(server_.CloseSession("acme").IsNotFound());
}

TEST_F(ServeSessionTest, MetricsMergeServingSeries) {
  auto a = server_.OpenSession("acme");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Register("q", kFilter).ok());
  ASSERT_TRUE(PushR1("x", Seconds(1)).ok());
  ASSERT_TRUE(server_.Poll().ok());

  auto metrics = server_.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->gauges.at("serve.tenants"), 1);
  EXPECT_EQ(metrics->gauges.at("serve.plan_cache.entries"), 1);
  EXPECT_EQ(metrics->gauges.at("serve.plan_cache.sharing_enabled"), 1);
  EXPECT_EQ(metrics->gauges.at("tenant.acme.queries"), 1);
  EXPECT_EQ(metrics->gauges.at("tenant.acme.pending"), 1);
  EXPECT_EQ(metrics->counters.at("tenant.acme.emitted"), 1u);
  // Host metrics survive the merge (R1 received one push).
  EXPECT_FALSE(metrics->counters.empty());
}

TEST_F(ServeSessionTest, ExplainAnnotatesServedStatements) {
  auto a = server_.OpenSession("acme");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->Register("q", kFilter).ok());
  auto explained = server_.Explain(std::string("EXPLAIN ") + kFilter);
  ASSERT_TRUE(explained.ok()) << explained.status();
  EXPECT_EQ(explained->rfind("-- serving: pipeline q", 0), 0u) << *explained;
  EXPECT_NE(explained->find("acme/q"), std::string::npos) << *explained;

  // Unserved statements pass through unannotated.
  auto other = server_.Explain("EXPLAIN SELECT * FROM R2");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->find("-- serving:"), std::string::npos);
}

}  // namespace
}  // namespace eslev
