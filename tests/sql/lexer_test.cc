#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace eslev {
namespace {

std::vector<TokenType> Types(const std::vector<Token>& toks) {
  std::vector<TokenType> out;
  for (const auto& t : toks) out.push_back(t.type);
  return out;
}

TEST(LexerTest, EmptyInput) {
  auto toks = Tokenize("");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 1u);
  EXPECT_EQ(toks->back().type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywordsAreIdentifiers) {
  auto toks = Tokenize("SELECT tag_id FROM readings");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 5u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*toks)[i].type, TokenType::kIdentifier);
  }
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].text, "tag_id");
}

TEST(LexerTest, NumbersIntFloatAndUnitSuffix) {
  auto toks = Tokenize("42 1.5 2e3 5 seconds");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kInteger);
  EXPECT_EQ((*toks)[0].int_value, 42);
  EXPECT_EQ((*toks)[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*toks)[1].float_value, 1.5);
  EXPECT_EQ((*toks)[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*toks)[2].float_value, 2000.0);
  EXPECT_EQ((*toks)[3].type, TokenType::kInteger);
  EXPECT_EQ((*toks)[4].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[4].text, "seconds");
}

TEST(LexerTest, IntegerDotIdentifierIsNotFloat) {
  // `R1.previous.tagtime` style paths, and `20.%` patterns live inside
  // strings, but a bare `1.x` must lex INT DOT IDENT.
  auto toks = Tokenize("1.x");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kInteger);
  EXPECT_EQ((*toks)[1].type, TokenType::kDot);
  EXPECT_EQ((*toks)[2].type, TokenType::kIdentifier);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto toks = Tokenize("'20.%.%' 'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kString);
  EXPECT_EQ((*toks)[0].text, "20.%.%");
  EXPECT_EQ((*toks)[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_TRUE(Tokenize("'oops").status().IsParseError());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto toks = Tokenize("( ) [ ] , . ; * + - / % = <> != < <= > >=");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenType> expected = {
      TokenType::kLParen, TokenType::kRParen,  TokenType::kLBracket,
      TokenType::kRBracket, TokenType::kComma, TokenType::kDot,
      TokenType::kSemicolon, TokenType::kStar, TokenType::kPlus,
      TokenType::kMinus,  TokenType::kSlash,   TokenType::kPercent,
      TokenType::kEq,     TokenType::kNe,      TokenType::kNe,
      TokenType::kLt,     TokenType::kLe,      TokenType::kGt,
      TokenType::kGe,     TokenType::kEnd};
  EXPECT_EQ(Types(*toks), expected);
}

TEST(LexerTest, UnicodeComparisonOperators) {
  // The paper's listings use U+2264 / U+2265.
  auto toks = Tokenize("a ≤ b ≥ c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].type, TokenType::kLe);
  EXPECT_EQ((*toks)[3].type, TokenType::kGe);
}

TEST(LexerTest, Comments) {
  auto toks = Tokenize(
      "SELECT -- line comment\n tid /* block\ncomment */ FROM r");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 5u);
  EXPECT_EQ((*toks)[1].text, "tid");
  EXPECT_EQ((*toks)[2].text, "FROM");
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  EXPECT_TRUE(Tokenize("SELECT /* no end").status().IsParseError());
}

TEST(LexerTest, LineAndColumnTracking) {
  auto toks = Tokenize("a\n  b");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[0].column, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[1].column, 3);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  EXPECT_TRUE(Tokenize("a @ b").status().IsParseError());
  EXPECT_TRUE(Tokenize("a # b").status().IsParseError());
}

TEST(LexerTest, TokenLengthCoversLexeme) {
  auto toks = Tokenize("SELECT tagid, 'ab''cd', 12.5 FROM r1");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].length, 6u);  // SELECT
  EXPECT_EQ((*toks)[1].length, 5u);  // tagid
  EXPECT_EQ((*toks)[3].length, 8u);  // 'ab''cd' — raw text incl. quotes
  EXPECT_EQ((*toks)[5].length, 4u);  // 12.5
  // End-of-input sentinel is zero-width.
  EXPECT_EQ(toks->back().type, TokenType::kEnd);
  EXPECT_EQ(toks->back().length, 0u);
}

TEST(LexerTest, TokenSpanMatchesOffsetAndPosition) {
  auto toks = Tokenize("a\n  longer");
  ASSERT_TRUE(toks.ok());
  const SourceSpan span = (*toks)[1].span();
  EXPECT_TRUE(span.valid());
  EXPECT_EQ(span.line, 2);
  EXPECT_EQ(span.column, 3);
  EXPECT_EQ(span.offset, 4u);
  EXPECT_EQ(span.length, 6u);
  EXPECT_EQ(span.Describe(), "line 2, column 3");
}

TEST(LexerTest, BangTokenForNegatedSeqArguments) {
  auto toks = Tokenize("SEQ(A, !B, C)");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[4].type, TokenType::kBang);
  // '!=' still lexes as one inequality token.
  auto ne = Tokenize("a != b");
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ((*ne)[1].type, TokenType::kNe);
}

}  // namespace
}  // namespace eslev
