// Parser robustness sweep: pseudo-random token soup must never crash —
// every input either parses or returns a ParseError/Invalid status.

#include <gtest/gtest.h>

#include <random>

#include "sql/parser.h"

namespace eslev {
namespace {

class ParserRobustnessTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  std::mt19937 rng(GetParam());
  const std::vector<std::string> vocabulary = {
      "SELECT", "FROM",   "WHERE",  "INSERT", "INTO",  "CREATE",
      "STREAM", "TABLE",  "SEQ",    "OVER",   "MODE",  "NOT",
      "EXISTS", "AND",    "OR",     "LIKE",   "GROUP", "BY",
      "(",      ")",      "[",      "]",      ",",     "*",
      "=",      "<",      "<=",     ".",      ";",     "'str'",
      "42",     "1.5",    "tagid",  "r1",     "C1",    "PRECEDING",
      "FOLLOWING", "SECONDS", "RECENT", "CHRONICLE", "FIRST", "LAST",
      "COUNT",  "previous", "BETWEEN", "IN", "LIMIT", "ORDER",
      "AGGREGATE", "INITIALIZE", "ITERATE", "TERMINATE", "RETURNS",
  };
  std::uniform_int_distribution<size_t> word(0, vocabulary.size() - 1);
  std::uniform_int_distribution<size_t> length(1, 40);

  for (int round = 0; round < 200; ++round) {
    std::string sql;
    const size_t n = length(rng);
    for (size_t i = 0; i < n; ++i) {
      sql += vocabulary[word(rng)];
      sql += " ";
    }
    // Must not crash; the status must be OK or a structured error.
    auto result = ParseStatement(sql);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError() ||
                  result.status().IsInvalid())
          << sql << " -> " << result.status();
    }
    auto script = ParseScript(sql);
    if (!script.ok()) {
      EXPECT_TRUE(script.status().IsParseError() ||
                  script.status().IsInvalid());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

TEST(ParserRobustnessTest2, DeepNestingDoesNotOverflow) {
  // Moderately deep parenthesization parses fine.
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  auto r = ParseExpression(expr);
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(ParserRobustnessTest2, HugeIdentifiersAndStrings) {
  const std::string big(10000, 'x');
  auto r1 = ParseExpression(big);  // one huge identifier
  EXPECT_TRUE(r1.ok());
  auto r2 = ParseExpression("'" + big + "'");
  EXPECT_TRUE(r2.ok());
}

TEST(ParserRobustnessTest2, EmbeddedNulAndControlChars) {
  std::string sql = "SELECT x FROM s";
  sql.push_back('\0');
  sql += " WHERE x = 1";
  auto r = ParseStatement(sql);
  EXPECT_FALSE(r.ok());  // NUL is not a valid token
  EXPECT_TRUE(r.status().IsParseError());

  EXPECT_TRUE(ParseStatement("SELECT \x01 FROM s").status().IsParseError());
}

}  // namespace
}  // namespace eslev
