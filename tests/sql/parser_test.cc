// Parser tests: every query listing from the paper is parsed verbatim,
// plus structural checks and error handling.

#include "sql/parser.h"

#include <gtest/gtest.h>

namespace eslev {
namespace {

StatementPtr MustParse(const std::string& sql) {
  auto r = ParseStatement(sql);
  EXPECT_TRUE(r.ok()) << "SQL: " << sql << "\n" << r.status();
  if (!r.ok()) return nullptr;
  return std::move(r).ValueUnsafe();
}

const SelectStmt& SelectOf(const StatementPtr& stmt) {
  if (stmt->kind == StatementKind::kInsert) {
    return *static_cast<const InsertStmt&>(*stmt).select;
  }
  return *static_cast<const SelectStatement&>(*stmt).select;
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

TEST(ParserDdlTest, PaperStreamDeclarationUntyped) {
  auto stmt = MustParse("STREAM readings(reader_id, tag_id, read_time);");
  ASSERT_TRUE(stmt);
  ASSERT_EQ(stmt->kind, StatementKind::kCreateStream);
  const auto& c = static_cast<const CreateStmt&>(*stmt);
  EXPECT_TRUE(c.is_stream);
  EXPECT_EQ(c.name, "readings");
  ASSERT_EQ(c.fields.size(), 3u);
  EXPECT_EQ(c.fields[0].type, TypeId::kString);
  EXPECT_EQ(c.fields[2].name, "read_time");
  EXPECT_EQ(c.fields[2].type, TypeId::kTimestamp);  // "time" heuristic
}

TEST(ParserDdlTest, CreateTableTyped) {
  auto stmt = MustParse(
      "CREATE TABLE object_movement(tagid VARCHAR, location VARCHAR(64), "
      "start_time TIMESTAMP)");
  ASSERT_TRUE(stmt);
  ASSERT_EQ(stmt->kind, StatementKind::kCreateTable);
  const auto& c = static_cast<const CreateStmt&>(*stmt);
  EXPECT_FALSE(c.is_stream);
  ASSERT_EQ(c.fields.size(), 3u);
  EXPECT_EQ(c.fields[1].type, TypeId::kString);
  EXPECT_EQ(c.fields[2].type, TypeId::kTimestamp);
}

TEST(ParserDdlTest, PaperTableDeclaration) {
  auto stmt = MustParse("TABLE object_movement(tagid, location, start_time)");
  ASSERT_TRUE(stmt);
  EXPECT_EQ(stmt->kind, StatementKind::kCreateTable);
}

// ---------------------------------------------------------------------------
// Example 1: duplicate filtering with windowed NOT EXISTS
// ---------------------------------------------------------------------------

constexpr const char* kExample1 = R"sql(
INSERT INTO cleaned_readings
SELECT * FROM readings AS r1
WHERE NOT EXISTS
  (SELECT * FROM TABLE( readings OVER
      (RANGE 1 seconds PRECEDING CURRENT)) AS r2
   WHERE r2.reader_id = r1.reader_id
     AND r2.tag_id = r1.tag_id)
)sql";

TEST(ParserTest, Example1DuplicateFiltering) {
  auto stmt = MustParse(kExample1);
  ASSERT_TRUE(stmt);
  ASSERT_EQ(stmt->kind, StatementKind::kInsert);
  const auto& ins = static_cast<const InsertStmt&>(*stmt);
  EXPECT_EQ(ins.target, "cleaned_readings");
  const auto& sel = *ins.select;
  ASSERT_EQ(sel.items.size(), 1u);
  EXPECT_TRUE(sel.items[0].is_star);
  ASSERT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].name, "readings");
  EXPECT_EQ(sel.from[0].alias, "r1");
  ASSERT_TRUE(sel.where);
  ASSERT_EQ(sel.where->kind, ExprKind::kExists);
  const auto& ex = static_cast<const ExistsExpr&>(*sel.where);
  EXPECT_TRUE(ex.negated);
  const auto& sub = *ex.subquery;
  ASSERT_EQ(sub.from.size(), 1u);
  EXPECT_EQ(sub.from[0].name, "readings");
  EXPECT_EQ(sub.from[0].alias, "r2");
  ASSERT_TRUE(sub.from[0].window.has_value());
  EXPECT_FALSE(sub.from[0].window->row_based);
  EXPECT_EQ(sub.from[0].window->length, Seconds(1));
  EXPECT_EQ(sub.from[0].window->direction, WindowDirection::kPreceding);
  EXPECT_TRUE(sub.from[0].window->anchor.empty());  // CURRENT
}

// ---------------------------------------------------------------------------
// Example 2: location tracking (stream-to-table insert)
// ---------------------------------------------------------------------------

constexpr const char* kExample2 = R"sql(
INSERT INTO object_movement
SELECT tid, loc, tagtime
FROM tag_locations WHERE NOT EXISTS
  (SELECT tagid FROM object_movement
   WHERE tagid = tid AND location = loc)
)sql";

TEST(ParserTest, Example2LocationTracking) {
  auto stmt = MustParse(kExample2);
  ASSERT_TRUE(stmt);
  const auto& ins = static_cast<const InsertStmt&>(*stmt);
  EXPECT_EQ(ins.target, "object_movement");
  ASSERT_EQ(ins.select->items.size(), 3u);
  EXPECT_EQ(ins.select->items[0].expr->ToString(), "tid");
}

// ---------------------------------------------------------------------------
// Example 3: EPC code pattern aggregation
// ---------------------------------------------------------------------------

constexpr const char* kExample3 = R"sql(
SELECT count(tid) FROM readings WHERE tid LIKE '20.%.%'
  AND extract_serial(tid) > 5000
  AND extract_serial(tid) < 9999
)sql";

TEST(ParserTest, Example3EpcAggregation) {
  auto stmt = MustParse(kExample3);
  ASSERT_TRUE(stmt);
  const auto& sel = SelectOf(stmt);
  ASSERT_EQ(sel.items.size(), 1u);
  ASSERT_EQ(sel.items[0].expr->kind, ExprKind::kFuncCall);
  const auto& f = static_cast<const FuncCallExpr&>(*sel.items[0].expr);
  EXPECT_EQ(f.name, "count");
  ASSERT_TRUE(sel.where);
  // ((tid LIKE ..) AND (..)) AND (..)
  EXPECT_EQ(sel.where->kind, ExprKind::kBinary);
}

// ---------------------------------------------------------------------------
// Example 6: SEQ over four streams
// ---------------------------------------------------------------------------

constexpr const char* kExample6 = R"sql(
SELECT C1.tagid, C1.tagtime, C2.tagtime, C3.tagtime, C4.tagtime
FROM C1, C2, C3, C4
WHERE SEQ(C1, C2, C3, C4)
  AND C1.tagid=C2.tagid AND C1.tagid=C3.tagid
  AND C1.tagid=C4.tagid
)sql";

const SeqExpr* FindSeq(const Expr& e) {
  if (e.kind == ExprKind::kSeq) return static_cast<const SeqExpr*>(&e);
  if (e.kind == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (const SeqExpr* s = FindSeq(*b.lhs)) return s;
    return FindSeq(*b.rhs);
  }
  if (e.kind == ExprKind::kUnary) {
    return FindSeq(*static_cast<const UnaryExpr&>(e).operand);
  }
  return nullptr;
}

TEST(ParserTest, Example6SeqOperator) {
  auto stmt = MustParse(kExample6);
  ASSERT_TRUE(stmt);
  const auto& sel = SelectOf(stmt);
  ASSERT_EQ(sel.from.size(), 4u);
  ASSERT_TRUE(sel.where);
  const SeqExpr* seq = FindSeq(*sel.where);
  ASSERT_TRUE(seq);
  EXPECT_EQ(seq->seq_kind, SeqKind::kSeq);
  ASSERT_EQ(seq->args.size(), 4u);
  EXPECT_EQ(seq->args[0].stream, "C1");
  EXPECT_FALSE(seq->args[0].star);
  EXPECT_FALSE(seq->window.has_value());
  EXPECT_EQ(seq->mode, PairingMode::kUnrestricted);
  EXPECT_FALSE(seq->mode_explicit);
}

TEST(ParserTest, SeqWithWindowAnchoredAtC4) {
  auto stmt = MustParse(R"sql(
SELECT C4.tagid FROM C1, C2, C3, C4
WHERE SEQ(C1, C2, C3, C4) OVER [30 MINUTES PRECEDING C4]
  AND C1.tagid=C4.tagid)sql");
  ASSERT_TRUE(stmt);
  const SeqExpr* seq = FindSeq(*SelectOf(stmt).where);
  ASSERT_TRUE(seq);
  ASSERT_TRUE(seq->window.has_value());
  EXPECT_EQ(seq->window->length, Minutes(30));
  EXPECT_EQ(seq->window->direction, WindowDirection::kPreceding);
  EXPECT_EQ(seq->window->anchor, "C4");
}

TEST(ParserTest, SeqWithModeClause) {
  auto stmt = MustParse(
      "SELECT x FROM A, B WHERE SEQ(A, B) MODE CONSECUTIVE");
  const SeqExpr* seq = FindSeq(*SelectOf(stmt).where);
  ASSERT_TRUE(seq);
  EXPECT_TRUE(seq->mode_explicit);
  EXPECT_EQ(seq->mode, PairingMode::kConsecutive);
}

TEST(ParserTest, SeqWithWindowAndMode) {
  auto stmt = MustParse(
      "SELECT x FROM A, B WHERE "
      "SEQ(A, B) OVER [10 SECONDS PRECEDING B] MODE RECENT");
  const SeqExpr* seq = FindSeq(*SelectOf(stmt).where);
  ASSERT_TRUE(seq);
  EXPECT_EQ(seq->mode, PairingMode::kRecent);
  EXPECT_TRUE(seq->window.has_value());
}

// ---------------------------------------------------------------------------
// Example 7: star sequence with aggregates and `previous`
// ---------------------------------------------------------------------------

constexpr const char* kExample7 = R"sql(
SELECT FIRST(R1*).tagtime, COUNT(R1*), R2.tagid, R2.tagtime
FROM R1, R2
WHERE SEQ(R1*, R2) MODE CHRONICLE
  AND R2.tagtime - LAST(R1*).tagtime <= 5 SECONDS
  AND R1.tagtime - R1.previous.tagtime <= 1 SECONDS
)sql";

TEST(ParserTest, Example7StarSequence) {
  auto stmt = MustParse(kExample7);
  ASSERT_TRUE(stmt);
  const auto& sel = SelectOf(stmt);
  ASSERT_EQ(sel.items.size(), 4u);
  ASSERT_EQ(sel.items[0].expr->kind, ExprKind::kStarAgg);
  const auto& first = static_cast<const StarAggExpr&>(*sel.items[0].expr);
  EXPECT_EQ(first.fn, StarAggFn::kFirst);
  EXPECT_EQ(first.stream, "R1");
  EXPECT_EQ(first.column, "tagtime");
  ASSERT_EQ(sel.items[1].expr->kind, ExprKind::kStarAgg);
  const auto& count = static_cast<const StarAggExpr&>(*sel.items[1].expr);
  EXPECT_EQ(count.fn, StarAggFn::kCount);
  EXPECT_TRUE(count.column.empty());

  const SeqExpr* seq = FindSeq(*sel.where);
  ASSERT_TRUE(seq);
  ASSERT_EQ(seq->args.size(), 2u);
  EXPECT_TRUE(seq->args[0].star);
  EXPECT_FALSE(seq->args[1].star);
  EXPECT_EQ(seq->mode, PairingMode::kChronicle);
}

TEST(ParserTest, PreviousReference) {
  auto e = ParseExpression("R1.tagtime - R1.previous.tagtime <= 1 SECONDS");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->ToString(),
            "((R1.tagtime - R1.previous.tagtime) <= 1000000)");
}

TEST(ParserTest, PaperUnicodeLeInExample7) {
  // The paper's listing literally uses U+2264.
  auto e = ParseExpression("R2.tagtime - LAST(R1*).tagtime ≤ 5 SECONDS");
  ASSERT_TRUE(e.ok()) << e.status();
}

// ---------------------------------------------------------------------------
// §3.1.3: EXCEPTION_SEQ / CLEVEL_SEQ with FOLLOWING windows
// ---------------------------------------------------------------------------

constexpr const char* kExceptionSeq = R"sql(
SELECT A1.tagid, A2.tagid, A3.tagid
FROM A1, A2, A3
WHERE EXCEPTION_SEQ(A1, A2, A3)
OVER [1 HOURS FOLLOWING A1]
)sql";

TEST(ParserTest, ExceptionSeqWithFollowingWindow) {
  auto stmt = MustParse(kExceptionSeq);
  ASSERT_TRUE(stmt);
  const SeqExpr* seq = FindSeq(*SelectOf(stmt).where);
  ASSERT_TRUE(seq);
  EXPECT_EQ(seq->seq_kind, SeqKind::kExceptionSeq);
  ASSERT_TRUE(seq->window.has_value());
  EXPECT_EQ(seq->window->length, Hours(1));
  EXPECT_EQ(seq->window->direction, WindowDirection::kFollowing);
  EXPECT_EQ(seq->window->anchor, "A1");
}

constexpr const char* kClevelSeq = R"sql(
SELECT A1.tagid, A2.tagid, A3.tagid
FROM A1, A2, A3
WHERE (CLEVEL_SEQ(A1, A2, A3)
OVER [1 HOURS FOLLOWING A1]) < 3
)sql";

TEST(ParserTest, ClevelSeqComparison) {
  auto stmt = MustParse(kClevelSeq);
  ASSERT_TRUE(stmt);
  const auto& sel = SelectOf(stmt);
  ASSERT_EQ(sel.where->kind, ExprKind::kBinary);
  const auto& cmp = static_cast<const BinaryExpr&>(*sel.where);
  EXPECT_EQ(cmp.op, BinaryOp::kLt);
  ASSERT_EQ(cmp.lhs->kind, ExprKind::kSeq);
  const auto& seq = static_cast<const SeqExpr&>(*cmp.lhs);
  EXPECT_EQ(seq.seq_kind, SeqKind::kClevelSeq);
}

TEST(ParserTest, FollowingWindowAnchoredMidSequence) {
  auto stmt = MustParse(
      "SELECT x FROM A1, A2, A3 WHERE "
      "EXCEPTION_SEQ(A1, A2, A3) OVER [1 HOURS FOLLOWING A2]");
  const SeqExpr* seq = FindSeq(*SelectOf(stmt).where);
  ASSERT_TRUE(seq);
  EXPECT_EQ(seq->window->anchor, "A2");
}

// ---------------------------------------------------------------------------
// Example 8: PRECEDING AND FOLLOWING window across subquery boundary
// ---------------------------------------------------------------------------

constexpr const char* kExample8 = R"sql(
SELECT person.tagid
FROM tag_readings AS person
WHERE person.tagtype = 'person' AND NOT EXISTS
  (SELECT * FROM tag_readings AS item
     OVER [1 MINUTES PRECEDING AND FOLLOWING person]
   WHERE item.tagtype = 'item')
)sql";

TEST(ParserTest, Example8PrecedingAndFollowing) {
  auto stmt = MustParse(kExample8);
  ASSERT_TRUE(stmt);
  const auto& sel = SelectOf(stmt);
  ASSERT_TRUE(sel.where);
  const auto& conj = static_cast<const BinaryExpr&>(*sel.where);
  ASSERT_EQ(conj.rhs->kind, ExprKind::kExists);
  const auto& ex = static_cast<const ExistsExpr&>(*conj.rhs);
  EXPECT_TRUE(ex.negated);
  const auto& sub = *ex.subquery;
  ASSERT_EQ(sub.from.size(), 1u);
  ASSERT_TRUE(sub.from[0].window.has_value());
  EXPECT_EQ(sub.from[0].window->direction,
            WindowDirection::kPrecedingAndFollowing);
  EXPECT_EQ(sub.from[0].window->length, Minutes(1));
  EXPECT_EQ(sub.from[0].window->anchor, "person");
}

// ---------------------------------------------------------------------------
// Expressions, misc
// ---------------------------------------------------------------------------

TEST(ParserExprTest, Precedence) {
  auto e = ParseExpression("1 + 2 * 3 = 7 AND NOT 0 > 1 OR x < 2");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->ToString(),
            "((((1 + (2 * 3)) = 7) AND NOT ((0 > 1))) OR (x < 2))");
}

TEST(ParserExprTest, BetweenLowersToConjunction) {
  auto e = ParseExpression("extract_serial(tid) BETWEEN 5000 AND 9999");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->ToString(),
            "((extract_serial(tid) >= 5000) AND (extract_serial(tid) <= "
            "9999))");
}

TEST(ParserExprTest, NotBetween) {
  auto e = ParseExpression("x NOT BETWEEN 1 AND 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "NOT (((x >= 1) AND (x <= 2)))");
}

TEST(ParserExprTest, InListLowersToDisjunction) {
  auto e = ParseExpression("loc IN ('dock', 'gate')");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((loc = dock) OR (loc = gate))");
}

TEST(ParserExprTest, NotLike) {
  auto e = ParseExpression("tid NOT LIKE '20.%'");
  ASSERT_TRUE(e.ok());
  const auto& b = static_cast<const BinaryExpr&>(**e);
  EXPECT_EQ(b.op, BinaryOp::kNotLike);
}

TEST(ParserExprTest, CountStar) {
  auto e = ParseExpression("count(*)");
  ASSERT_TRUE(e.ok());
  const auto& f = static_cast<const FuncCallExpr&>(**e);
  EXPECT_TRUE(f.star_arg);
  EXPECT_TRUE(f.args.empty());
}

TEST(ParserExprTest, IntervalLiterals) {
  auto e = ParseExpression("5 SECONDS");
  ASSERT_TRUE(e.ok());
  const auto& lit = static_cast<const LiteralExpr&>(**e);
  EXPECT_EQ(lit.value.int_value(), Seconds(5));
}

TEST(ParserExprTest, BooleanAndNullLiterals) {
  EXPECT_EQ((*ParseExpression("TRUE"))->ToString(), "TRUE");
  EXPECT_EQ((*ParseExpression("false"))->ToString(), "FALSE");
  EXPECT_EQ((*ParseExpression("NULL"))->ToString(), "NULL");
}

TEST(ParserExprTest, UnaryMinus) {
  auto e = ParseExpression("-x + 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(-(x) + 3)");
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = MustParse(
      "SELECT loc, count(tid) FROM tag_locations "
      "GROUP BY loc HAVING count(tid) > 10");
  ASSERT_TRUE(stmt);
  const auto& sel = SelectOf(stmt);
  ASSERT_EQ(sel.group_by.size(), 1u);
  ASSERT_TRUE(sel.having);
}

TEST(ParserTest, SelectItemAliases) {
  auto stmt = MustParse("SELECT tid AS tag, loc location FROM s");
  const auto& sel = SelectOf(stmt);
  EXPECT_EQ(sel.items[0].alias, "tag");
  EXPECT_EQ(sel.items[1].alias, "location");
}

TEST(ParserTest, ScriptWithMultipleStatements) {
  auto script = ParseScript(
      "STREAM a(x, y); STREAM b(z); SELECT x FROM a;");
  ASSERT_TRUE(script.ok()) << script.status();
  EXPECT_EQ(script->size(), 3u);
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

TEST(ParserErrorTest, Malformed) {
  EXPECT_TRUE(ParseStatement("SELECT").status().IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT FROM x").status().IsParseError());
  EXPECT_TRUE(ParseStatement("INSERT cleaned SELECT * FROM r")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT * FROM a WHERE SEQ(a)")
                  .status()
                  .IsParseError());  // SEQ needs >= 2 args
  EXPECT_TRUE(ParseStatement("SELECT * FROM a OVER [x PRECEDING]")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(
      ParseStatement("SELECT * FROM a WHERE SEQ(a, b) MODE bogus")
          .status()
          .IsParseError());
  EXPECT_TRUE(ParseStatement("CREATE VIEW v AS SELECT 1")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseStatement("SELECT FIRST(R1*) FROM r1, r2")
                  .status()
                  .IsParseError());  // FIRST(S*) needs .column
}

TEST(ParserErrorTest, TrailingGarbage) {
  EXPECT_TRUE(
      ParseStatement("SELECT x FROM a extra garbage here 42")
          .status()
          .IsParseError());
}

TEST(ParserErrorTest, WindowMissingDirection) {
  EXPECT_TRUE(ParseStatement(
                  "SELECT * FROM a WHERE SEQ(a,b) OVER [5 SECONDS]")
                  .status()
                  .IsParseError());
}

// ---------------------------------------------------------------------------
// Source positions
// ---------------------------------------------------------------------------

TEST(ParserErrorTest, ErrorPointsAtOffendingToken) {
  const Status status =
      ParseStatement("SELECT * FROM r1 WHERE r1.a = ;").status();
  ASSERT_TRUE(status.IsParseError());
  EXPECT_NE(status.message().find("line 1, column 31"), std::string::npos)
      << status;
}

TEST(ParserErrorTest, ErrorTracksLinesAcrossNewlines) {
  const Status status =
      ParseStatement("SELECT *\nFROM r1\nWHERE = 5").status();
  ASSERT_TRUE(status.IsParseError());
  EXPECT_NE(status.message().find("line 3, column 7"), std::string::npos)
      << status;
}

TEST(ParserSpanTest, StatementSpanCoversFullText) {
  const std::string sql = "SELECT x FROM a WHERE a.x = 1";
  auto stmt = MustParse(sql + ";");
  ASSERT_TRUE(stmt);
  EXPECT_EQ(stmt->span.line, 1);
  EXPECT_EQ(stmt->span.column, 1);
  EXPECT_EQ(stmt->span.offset, 0u);
  EXPECT_EQ(stmt->span.length, sql.size());  // excludes the ';'
}

TEST(ParserSpanTest, WhereExprSpanCoversComparison) {
  auto stmt = MustParse("SELECT x FROM a WHERE a.x = 10;");
  ASSERT_TRUE(stmt);
  const SelectStmt& select = SelectOf(stmt);
  ASSERT_NE(select.where, nullptr);
  EXPECT_EQ(select.where->span.line, 1);
  EXPECT_EQ(select.where->span.column, 23);  // a.x = 10
  EXPECT_EQ(select.where->span.length, 8u);
}

TEST(ParserSpanTest, SeqArgAndWindowSpans) {
  auto stmt = MustParse(
      "SELECT x FROM a, b WHERE SEQ(a*, !b) OVER [5 SECONDS PRECEDING a];");
  ASSERT_TRUE(stmt);
  const SelectStmt& select = SelectOf(stmt);
  ASSERT_NE(select.where, nullptr);
  ASSERT_EQ(select.where->kind, ExprKind::kSeq);
  const auto& seq = static_cast<const SeqExpr&>(*select.where);
  EXPECT_EQ(seq.span.column, 26);
  ASSERT_EQ(seq.args.size(), 2u);
  EXPECT_EQ(seq.args[0].span.column, 30);  // a*
  EXPECT_EQ(seq.args[0].span.length, 2u);
  EXPECT_EQ(seq.args[1].span.column, 34);  // !b
  EXPECT_EQ(seq.args[1].span.length, 2u);
  ASSERT_TRUE(seq.window.has_value());
  EXPECT_EQ(seq.window->span.column, 38);  // OVER [... a]
  EXPECT_EQ(seq.window->span.length, 28u);
}

TEST(ParserSpanTest, BetweenLoweringKeepsConstructSpan) {
  // BETWEEN splits into two conjuncts (and clones its lhs); both halves
  // must keep the full construct's span so later diagnostics point at
  // the source text the user wrote.
  auto stmt = MustParse("SELECT x FROM a WHERE a.x BETWEEN 1 AND 5;");
  ASSERT_TRUE(stmt);
  const SelectStmt& select = SelectOf(stmt);
  ASSERT_NE(select.where, nullptr);
  ASSERT_EQ(select.where->kind, ExprKind::kBinary);
  const auto& conj = static_cast<const BinaryExpr&>(*select.where);
  EXPECT_EQ(conj.span.column, 23);  // a.x BETWEEN 1 AND 5
  EXPECT_EQ(conj.span.length, 19u);
  EXPECT_EQ(conj.lhs->span.column, 23);
  EXPECT_EQ(conj.lhs->span.length, 19u);
  EXPECT_EQ(conj.rhs->span.column, 23);
  EXPECT_EQ(conj.rhs->span.length, 19u);
}

}  // namespace
}  // namespace eslev
