#include "storage/table.h"

#include <gtest/gtest.h>

namespace eslev {
namespace {

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = Schema::Make({{"tagid", TypeId::kString},
                            {"location", TypeId::kString},
                            {"start_time", TypeId::kTimestamp}});
    table_ = std::make_unique<Table>("object_movement", schema_);
  }

  Status Insert(const std::string& tag, const std::string& loc,
                Timestamp ts) {
    return table_->Insert(
        {Value::String(tag), Value::String(loc), Value::Time(ts)}, ts);
  }

  SchemaPtr schema_;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, InsertAndScan) {
  ASSERT_TRUE(Insert("t1", "dock", Seconds(1)).ok());
  ASSERT_TRUE(Insert("t2", "gate", Seconds(2)).ok());
  EXPECT_EQ(table_->num_rows(), 2u);

  std::vector<std::string> tags;
  table_->Scan(nullptr,
               [&](const Tuple& r) { tags.push_back(r.value(0).string_value()); });
  EXPECT_EQ(tags, (std::vector<std::string>{"t1", "t2"}));

  size_t n = table_->Scan(
      [](const Tuple& r) { return r.value(1).string_value() == "gate"; },
      [](const Tuple&) {});
  EXPECT_EQ(n, 1u);
}

TEST_F(TableTest, InsertValidatesSchema) {
  EXPECT_TRUE(table_->Insert({Value::String("t1")}).IsInvalid());
  EXPECT_TRUE(
      table_->Insert({Value::Int(1), Value::String("x"), Value::Time(0)})
          .IsTypeError());
}

TEST_F(TableTest, Any) {
  ASSERT_TRUE(Insert("t1", "dock", 0).ok());
  EXPECT_TRUE(table_->Any(
      [](const Tuple& r) { return r.value(0).string_value() == "t1"; }));
  EXPECT_FALSE(table_->Any(
      [](const Tuple& r) { return r.value(0).string_value() == "zz"; }));
}

TEST_F(TableTest, ScanEqWithoutIndexFallsBackToScan) {
  ASSERT_TRUE(Insert("t1", "dock", 0).ok());
  ASSERT_TRUE(Insert("t1", "gate", 1).ok());
  ASSERT_TRUE(Insert("t2", "dock", 2).ok());
  int hits = 0;
  ASSERT_TRUE(table_->ScanEq("tagid", Value::String("t1"),
                             [&](const Tuple&) { ++hits; })
                  .ok());
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(table_->HasIndex("tagid"));
}

TEST_F(TableTest, HashIndexAcceleratedProbe) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(Insert("tag" + std::to_string(i % 10), "loc", i).ok());
  }
  ASSERT_TRUE(table_->CreateIndex("tagid").ok());
  EXPECT_TRUE(table_->HasIndex("tagid"));
  int hits = 0;
  ASSERT_TRUE(table_->ScanEq("tagid", Value::String("tag3"),
                             [&](const Tuple&) { ++hits; })
                  .ok());
  EXPECT_EQ(hits, 10);
  // Index stays consistent across further inserts.
  ASSERT_TRUE(Insert("tag3", "newloc", 1000).ok());
  hits = 0;
  ASSERT_TRUE(table_->ScanEq("tagid", Value::String("tag3"),
                             [&](const Tuple&) { ++hits; })
                  .ok());
  EXPECT_EQ(hits, 11);
}

TEST_F(TableTest, ScanEqUnknownColumn) {
  EXPECT_TRUE(table_->ScanEq("nope", Value::Int(1), [](const Tuple&) {})
                  .IsNotFound());
}

TEST_F(TableTest, UpdateRewritesMatchingRows) {
  ASSERT_TRUE(Insert("t1", "dock", 0).ok());
  ASSERT_TRUE(Insert("t2", "dock", 1).ok());
  auto n = table_->Update(
      [](const Tuple& r) { return r.value(0).string_value() == "t1"; },
      "location", Value::String("gate"));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  int gates = 0;
  ASSERT_TRUE(table_->ScanEq("location", Value::String("gate"),
                             [&](const Tuple&) { ++gates; })
                  .ok());
  EXPECT_EQ(gates, 1);
}

TEST_F(TableTest, UpdateMaintainsIndexOnIndexedColumn) {
  ASSERT_TRUE(Insert("t1", "dock", 0).ok());
  ASSERT_TRUE(table_->CreateIndex("location").ok());
  ASSERT_TRUE(table_
                  ->Update([](const Tuple&) { return true; }, "location",
                           Value::String("gate"))
                  .ok());
  int hits = 0;
  ASSERT_TRUE(table_->ScanEq("location", Value::String("gate"),
                             [&](const Tuple&) { ++hits; })
                  .ok());
  EXPECT_EQ(hits, 1);
  hits = 0;
  ASSERT_TRUE(table_->ScanEq("location", Value::String("dock"),
                             [&](const Tuple&) { ++hits; })
                  .ok());
  EXPECT_EQ(hits, 0);
}

TEST_F(TableTest, DeleteMaintainsIndex) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(Insert("t" + std::to_string(i), "dock", i).ok());
  }
  ASSERT_TRUE(table_->CreateIndex("tagid").ok());
  size_t removed = table_->Delete(
      [](const Tuple& r) { return r.ts() < 5; });
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(table_->num_rows(), 5u);
  int hits = 0;
  ASSERT_TRUE(table_->ScanEq("tagid", Value::String("t7"),
                             [&](const Tuple&) { ++hits; })
                  .ok());
  EXPECT_EQ(hits, 1);
  hits = 0;
  ASSERT_TRUE(table_->ScanEq("tagid", Value::String("t2"),
                             [&](const Tuple&) { ++hits; })
                  .ok());
  EXPECT_EQ(hits, 0);
}

}  // namespace
}  // namespace eslev
