#include "stream/stream.h"

#include <gtest/gtest.h>

#include "exec/basic_ops.h"
#include "stream/window_buffer.h"

namespace eslev {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make(
      {{"tag", TypeId::kString}, {"ts_col", TypeId::kTimestamp}});
}

Tuple T(const SchemaPtr& s, const std::string& tag, Timestamp ts) {
  return *MakeTuple(s, {Value::String(tag), Value::Time(ts)}, ts);
}

TEST(StreamTest, PushFansOutToOperatorsAndCallbacks) {
  auto schema = TestSchema();
  Stream s("readings", schema);
  CollectOperator sink;
  s.Subscribe(&sink);
  int callback_count = 0;
  s.SubscribeCallback([&](const Tuple&) { ++callback_count; });

  ASSERT_TRUE(s.Push(T(schema, "a", 1)).ok());
  ASSERT_TRUE(s.Push(T(schema, "b", 2)).ok());
  EXPECT_EQ(sink.tuples().size(), 2u);
  EXPECT_EQ(callback_count, 2);
  EXPECT_EQ(s.tuples_pushed(), 2u);
}

TEST(StreamTest, PushValidatesArity) {
  Stream s("readings", TestSchema());
  Tuple wrong(TestSchema(), {Value::String("a")}, 0);
  EXPECT_TRUE(s.Push(wrong).IsInvalid());
}

TEST(StreamTest, SubscriptionOrderIsDeliveryOrder) {
  auto schema = TestSchema();
  Stream s("readings", schema);
  std::vector<int> order;
  CallbackOperator first([&](const Tuple&) { order.push_back(1); });
  CallbackOperator second([&](const Tuple&) { order.push_back(2); });
  s.Subscribe(&first);
  s.Subscribe(&second);
  ASSERT_TRUE(s.Push(T(schema, "a", 1)).ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(StreamTest, RetentionKeepsRecentWindow) {
  auto schema = TestSchema();
  Stream s("locations", schema);
  s.SetRetention(Seconds(10));
  for (int i = 0; i <= 20; ++i) {
    ASSERT_TRUE(s.Push(T(schema, "t", Seconds(i))).ok());
  }
  // Retained: ts in [20s - 10s, 20s].
  EXPECT_EQ(s.retained().size(), 11u);
  EXPECT_EQ(s.retained().front().ts(), Seconds(10));

  // Heartbeats trim further without arrivals.
  ASSERT_TRUE(s.Heartbeat(Seconds(25)).ok());
  EXPECT_EQ(s.retained().size(), 6u);
}

TEST(StreamTest, NoRetentionByDefault) {
  auto schema = TestSchema();
  Stream s("r", schema);
  ASSERT_TRUE(s.Push(T(schema, "t", 1)).ok());
  EXPECT_TRUE(s.retained().empty());
}

TEST(StreamInsertOperatorTest, ForwardsIntoStream) {
  auto schema = TestSchema();
  Stream out("derived", schema);
  CollectOperator sink;
  out.Subscribe(&sink);
  StreamInsertOperator insert(&out);
  ASSERT_TRUE(insert.OnTuple(0, T(schema, "x", 5)).ok());
  EXPECT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(out.tuples_pushed(), 1u);
}

// ---------------------------------------------------------------------------
// WindowBuffer
// ---------------------------------------------------------------------------

TEST(WindowBufferTest, TimeWindowInclusiveBound) {
  auto schema = TestSchema();
  WindowBuffer w(false, Seconds(10));
  w.Add(T(schema, "a", Seconds(0)));
  w.Add(T(schema, "b", Seconds(5)));
  w.Add(T(schema, "c", Seconds(10)));  // 0 is exactly 10s old: kept
  EXPECT_EQ(w.size(), 3u);
  w.Add(T(schema, "d", Seconds(11)));  // 0 is now 11s old: evicted
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.tuples().front().value(0).string_value(), "b");
}

TEST(WindowBufferTest, HeartbeatEviction) {
  auto schema = TestSchema();
  WindowBuffer w(false, Seconds(1));
  w.Add(T(schema, "a", Seconds(1)));
  EXPECT_EQ(w.size(), 1u);
  w.EvictAt(Seconds(3));
  EXPECT_TRUE(w.empty());
}

TEST(WindowBufferTest, RowWindow) {
  auto schema = TestSchema();
  WindowBuffer w(true, 3);
  for (int i = 0; i < 5; ++i) w.Add(T(schema, "t", i));
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.tuples().front().ts(), 2);
  // Time advance does not evict row windows.
  w.EvictAt(Seconds(100));
  EXPECT_EQ(w.size(), 3u);
}

TEST(WindowBufferTest, Clear) {
  auto schema = TestSchema();
  WindowBuffer w(false, Seconds(1));
  w.Add(T(schema, "a", 0));
  w.Clear();
  EXPECT_TRUE(w.empty());
}

}  // namespace
}  // namespace eslev
