#include <gtest/gtest.h>

#include "types/schema.h"
#include "types/tuple.h"

namespace eslev {
namespace {

SchemaPtr ReadingsSchema() {
  return Schema::Make({{"reader_id", TypeId::kString},
                       {"tag_id", TypeId::kString},
                       {"read_time", TypeId::kTimestamp}});
}

TEST(SchemaTest, FieldLookupIsCaseInsensitive) {
  auto s = ReadingsSchema();
  EXPECT_EQ(s->num_fields(), 3u);
  EXPECT_EQ(s->FindField("tag_id"), 1);
  EXPECT_EQ(s->FindField("TAG_ID"), 1);
  EXPECT_EQ(s->FindField("Read_Time"), 2);
  EXPECT_EQ(s->FindField("missing"), -1);
  EXPECT_TRUE(s->FieldIndex("missing").status().IsNotFound());
  EXPECT_EQ(*s->FieldIndex("reader_id"), 0u);
}

TEST(SchemaTest, ToStringAndEquals) {
  auto s = ReadingsSchema();
  EXPECT_EQ(s->ToString(),
            "reader_id VARCHAR, tag_id VARCHAR, read_time TIMESTAMP");
  EXPECT_TRUE(s->Equals(*ReadingsSchema()));
  auto other = Schema::Make({{"x", TypeId::kInt64}});
  EXPECT_FALSE(s->Equals(*other));
}

TEST(TupleTest, MakeTupleValidatesArity) {
  auto s = ReadingsSchema();
  auto bad = MakeTuple(s, {Value::String("r1")}, 0);
  EXPECT_TRUE(bad.status().IsInvalid());
}

TEST(TupleTest, MakeTupleValidatesTypes) {
  auto s = ReadingsSchema();
  auto bad = MakeTuple(
      s, {Value::Int(1), Value::String("t"), Value::Time(0)}, 0);
  EXPECT_TRUE(bad.status().IsTypeError());
}

TEST(TupleTest, MakeTupleCoercesIntToTimestampAndDouble) {
  auto s = Schema::Make({{"ts", TypeId::kTimestamp}, {"d", TypeId::kDouble}});
  auto t = MakeTuple(s, {Value::Int(5), Value::Int(2)}, 7);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->value(0).type(), TypeId::kTimestamp);
  EXPECT_EQ(t->value(0).time_value(), 5);
  EXPECT_EQ(t->value(1).type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(t->value(1).double_value(), 2.0);
}

TEST(TupleTest, NullAllowedAnywhere) {
  auto s = ReadingsSchema();
  auto t = MakeTuple(s, {Value::Null(), Value::Null(), Value::Null()}, 3);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->value(0).is_null());
  EXPECT_EQ(t->ts(), 3);
}

TEST(TupleTest, ValueByNameAndToString) {
  auto s = ReadingsSchema();
  auto t = *MakeTuple(
      s, {Value::String("r1"), Value::String("tagA"), Value::Time(Seconds(2))},
      Seconds(2));
  EXPECT_EQ(t.ValueByName("tag_id")->string_value(), "tagA");
  EXPECT_EQ(t.ValueByName("TAG_ID")->string_value(), "tagA");
  EXPECT_TRUE(t.ValueByName("nope").status().IsNotFound());
  EXPECT_EQ(t.ToString(), "(r1, tagA, 2.000000s)@2.000000s");
}

TEST(TupleTest, Equals) {
  auto s = ReadingsSchema();
  auto a = *MakeTuple(
      s, {Value::String("r"), Value::String("t"), Value::Time(1)}, 1);
  auto b = *MakeTuple(
      s, {Value::String("r"), Value::String("t"), Value::Time(1)}, 1);
  auto c = *MakeTuple(
      s, {Value::String("r"), Value::String("t"), Value::Time(1)}, 2);
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

}  // namespace
}  // namespace eslev
