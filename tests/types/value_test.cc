#include "types/value.h"

#include <gtest/gtest.h>

namespace eslev {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), TypeId::kNull);
  EXPECT_TRUE(Value::Null().is_null());

  Value b = Value::Bool(true);
  EXPECT_EQ(b.type(), TypeId::kBool);
  EXPECT_TRUE(b.bool_value());

  Value i = Value::Int(-7);
  EXPECT_EQ(i.type(), TypeId::kInt64);
  EXPECT_EQ(i.int_value(), -7);

  Value d = Value::Double(2.5);
  EXPECT_EQ(d.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(d.double_value(), 2.5);

  Value s = Value::String("tag42");
  EXPECT_EQ(s.type(), TypeId::kString);
  EXPECT_EQ(s.string_value(), "tag42");

  Value t = Value::Time(Seconds(3));
  EXPECT_EQ(t.type(), TypeId::kTimestamp);
  EXPECT_EQ(t.time_value(), Seconds(3));
}

TEST(ValueTest, NumericCoercions) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Double(4.5).AsDouble(), 4.5);
  EXPECT_EQ(*Value::Time(100).AsInt64(), 100);
  EXPECT_EQ(*Value::Int(100).AsInt64(), 100);
  EXPECT_EQ(*Value::Double(3.9).AsInt64(), 3);
  EXPECT_TRUE(Value::String("x").AsDouble().status().IsTypeError());
  EXPECT_TRUE(Value::Bool(true).AsInt64().status().IsTypeError());
}

TEST(ValueTest, CompareNumericFamily) {
  EXPECT_EQ(*Value::Int(1).Compare(Value::Int(2)), -1);
  EXPECT_EQ(*Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_EQ(*Value::Int(3).Compare(Value::Int(2)), 1);
  EXPECT_EQ(*Value::Int(2).Compare(Value::Double(2.5)), -1);
  EXPECT_EQ(*Value::Double(2.5).Compare(Value::Int(2)), 1);
  EXPECT_EQ(*Value::Time(5).Compare(Value::Int(5)), 0);
  EXPECT_EQ(*Value::Time(5).Compare(Value::Time(9)), -1);
}

TEST(ValueTest, CompareStringsAndBools) {
  EXPECT_EQ(*Value::String("a").Compare(Value::String("b")), -1);
  EXPECT_EQ(*Value::String("b").Compare(Value::String("b")), 0);
  EXPECT_EQ(*Value::String("c").Compare(Value::String("b")), 1);
  EXPECT_EQ(*Value::Bool(false).Compare(Value::Bool(true)), -1);
}

TEST(ValueTest, CompareNullTotalOrder) {
  EXPECT_EQ(*Value::Null().Compare(Value::Null()), 0);
  EXPECT_EQ(*Value::Null().Compare(Value::Int(0)), -1);
  EXPECT_EQ(*Value::Int(0).Compare(Value::Null()), 1);
}

TEST(ValueTest, CompareIncompatibleIsTypeError) {
  EXPECT_TRUE(
      Value::String("a").Compare(Value::Int(1)).status().IsTypeError());
  EXPECT_TRUE(
      Value::Bool(true).Compare(Value::String("t")).status().IsTypeError());
}

TEST(ValueTest, EqualityIsExact) {
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_NE(Value::Int(5), Value::Double(5.0));  // different types
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Time(5), Value::Int(5));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
  EXPECT_EQ(Value::Time(Seconds(1)).ToString(), "1.000000s");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(9).Hash(), Value::Int(9).Hash());
  EXPECT_EQ(Value::String("rfid").Hash(), Value::String("rfid").Hash());
  // Timestamp and Int of same magnitude are != so hashes may differ; just
  // check they're stable.
  EXPECT_EQ(Value::Time(9).Hash(), Value::Time(9).Hash());
}

TEST(TypeNameTest, ParseTypeName) {
  EXPECT_EQ(*ParseTypeName("INT"), TypeId::kInt64);
  EXPECT_EQ(*ParseTypeName("bigint"), TypeId::kInt64);
  EXPECT_EQ(*ParseTypeName("Double"), TypeId::kDouble);
  EXPECT_EQ(*ParseTypeName("VARCHAR"), TypeId::kString);
  EXPECT_EQ(*ParseTypeName("boolean"), TypeId::kBool);
  EXPECT_EQ(*ParseTypeName("TIMESTAMP"), TypeId::kTimestamp);
  EXPECT_TRUE(ParseTypeName("blob").status().IsParseError());
}

}  // namespace
}  // namespace eslev
