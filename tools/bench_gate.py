#!/usr/bin/env python3
"""CI perf-regression gate over google-benchmark JSON output.

Modes:
  check    Compare a fresh bench run against the checked-in baseline
           (bench/baseline.json). A benchmark regresses when its
           items_per_second falls more than --tolerance (default 0.15,
           i.e. -15%) below the baseline. Prints a per-bench delta
           table (markdown, suitable for $GITHUB_STEP_SUMMARY) and
           exits 1 on any regression.
  refresh  Rewrite the baseline from a fresh bench run. Run this on the
           CI runner class the gate executes on (laptop numbers are not
           comparable) and commit the result:

             cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
             cmake --build build-release -j --target bench_e11_end_to_end \
               bench_e16_batching bench_e6_pairing_modes bench_e9_seq_vs_join \
               bench_e17_ingest bench_e18_serving
             mkdir -p /tmp/bench-json
             ESLEV_BENCH_JSON_DIR=/tmp/bench-json ./build-release/bench/bench_e11_end_to_end --benchmark_min_time=0.2s
             ESLEV_BENCH_JSON_DIR=/tmp/bench-json ./build-release/bench/bench_e16_batching --benchmark_min_time=0.2s
             ESLEV_BENCH_JSON_DIR=/tmp/bench-json ./build-release/bench/bench_e6_pairing_modes --benchmark_filter='BM_(Nfa)?Mode' --benchmark_min_time=0.2s
             ESLEV_BENCH_JSON_DIR=/tmp/bench-json ./build-release/bench/bench_e9_seq_vs_join --benchmark_filter='BM_Seq(Star|Chronicle)' --benchmark_min_time=0.2s
             ESLEV_BENCH_JSON_DIR=/tmp/bench-json ./build-release/bench/bench_e17_ingest --benchmark_min_time=0.2s
             ESLEV_BENCH_JSON_DIR=/tmp/bench-json ./build-release/bench/bench_e18_serving --benchmark_min_time=0.2s
             python3 tools/bench_gate.py refresh --json-dir /tmp/bench-json

Only benchmarks present in the baseline gate the build; new benchmarks
are reported as "new" until the baseline is refreshed, so adding a
bench never breaks an unrelated PR. A baseline entry whose benchmark
vanished from the run fails the gate (a silently deleted bench is a
silently dropped guarantee). Tolerance can also be set with the
ESLEV_BENCH_GATE_TOLERANCE environment variable (the flag wins).

Retained-state gate: benches publish peak tuple-state gauges into their
BENCH_*_metrics.json blob under the convention

    stategate.<workload>.history   and   stategate.<workload>.nfa

(bench_e6 per pairing mode, bench_e9 on the star/packing workload).
`check` compares each pair absolutely — no tolerance: the compiled NFA
backend guarantees it retains exactly the history matcher's tuple set,
so any run where stategate.*.nfa exceeds stategate.*.history fails the
gate, as does a workload reporting only one backend (a dropped leg
would silently drop the guarantee). Workloads with no stategate gauges
in the run are simply not gated.

Serve-sharing gate: bench_e18_serving publishes gauges under

    servegate.<workload>.{shared_lo_ips, shared_hi_ips,
                          unshared_hi_ips,
                          shared_hi_pipelines, unshared_hi_pipelines}

(lo/hi = the low/high duplicate-registration counts of the sweep).
`check` enforces the multi-tenant sharing guarantees (DESIGN.md §17):
the shared run must compile strictly fewer pipelines than the unshared
run, must out-run it by at least SERVE_MIN_SPEEDUP at the high
duplicate count (measured gap is ~20x, so the gate only trips on a
genuine sharing break), and quadrupling the duplicate count must cost
less than half the shared throughput (linear cost would cut it to a
quarter — the sub-linear-growth acceptance of E18). A missing leg
fails, as with the retained-state gate. Runs with no servegate gauges
are not gated.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "bench",
    "baseline.json")


def load_run(json_dir):
    """Collect {benchmark name: items_per_second} from BENCH_*.json."""
    results = {}
    found_any = False
    for entry in sorted(os.listdir(json_dir)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        if entry.endswith("_metrics.json"):
            continue  # bench-recorded metrics blobs, not benchmark runs
        path = os.path.join(json_dir, entry)
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        found_any = True
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("name")
            ips = bench.get("items_per_second")
            if name is None or ips is None:
                continue
            # Repetitions: keep the best (least-interfered) observation.
            results[name] = max(results.get(name, 0.0), float(ips))
    if not found_any:
        sys.exit(f"bench_gate: no BENCH_*.json files under {json_dir}")
    if not results:
        sys.exit(f"bench_gate: no items_per_second entries under {json_dir}")
    return results


def load_state_gauges(json_dir):
    """Collect {workload: {backend: peak}} from stategate.* gauges in
    BENCH_*_metrics.json blobs."""
    gauges = {}
    for entry in sorted(os.listdir(json_dir)):
        if not (entry.startswith("BENCH_") and
                entry.endswith("_metrics.json")):
            continue
        path = os.path.join(json_dir, entry)
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        for name, value in doc.get("gauges", {}).items():
            if not name.startswith("stategate."):
                continue
            parts = name.split(".")
            if len(parts) != 3:
                continue
            gauges.setdefault(parts[1], {})[parts[2]] = int(value)
    return gauges


def check_state_gauges(gauges):
    """Returns (rows, failures) for the retained-state table."""
    rows = []
    failures = []
    for workload in sorted(gauges):
        backends = gauges[workload]
        history = backends.get("history")
        nfa = backends.get("nfa")
        if history is None or nfa is None:
            missing = "history" if history is None else "nfa"
            status = "MISSING"
            failures.append(
                f"stategate.{workload}: no {missing} leg in this run")
        elif nfa > history:
            status = "REGRESSED"
            failures.append(
                f"stategate.{workload}: NFA retains {nfa} tuples vs "
                f"history {history} — the shared-run backend must never "
                "hold more tuple-state than the history matcher")
        else:
            status = "ok"
        rows.append((workload, history, nfa, status))
    return rows, failures


SERVE_MIN_SPEEDUP = 1.25
SERVE_LEGS = ("shared_lo_ips", "shared_hi_ips", "unshared_hi_ips",
              "shared_hi_pipelines", "unshared_hi_pipelines")


def load_serve_gauges(json_dir):
    """Collect {workload: {leg: value}} from servegate.* gauges in
    BENCH_*_metrics.json blobs."""
    gauges = {}
    for entry in sorted(os.listdir(json_dir)):
        if not (entry.startswith("BENCH_") and
                entry.endswith("_metrics.json")):
            continue
        path = os.path.join(json_dir, entry)
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        for name, value in doc.get("gauges", {}).items():
            if not name.startswith("servegate."):
                continue
            parts = name.split(".")
            if len(parts) != 3 or parts[2] not in SERVE_LEGS:
                continue
            gauges.setdefault(parts[1], {})[parts[2]] = int(value)
    return gauges


def check_serve_gauges(gauges):
    """Returns (rows, failures) for the serve-sharing table."""
    rows = []
    failures = []
    for workload in sorted(gauges):
        legs = gauges[workload]
        missing = [leg for leg in SERVE_LEGS if leg not in legs]
        if missing:
            failures.append(
                f"servegate.{workload}: missing legs {', '.join(missing)} "
                "in this run")
            rows.append((workload, legs, "MISSING"))
            continue
        problems = []
        if legs["shared_hi_pipelines"] >= legs["unshared_hi_pipelines"]:
            problems.append(
                f"sharing compiled {legs['shared_hi_pipelines']} pipelines "
                f"vs {legs['unshared_hi_pipelines']} unshared — duplicate "
                "registrations no longer collapse onto one pipeline")
        if legs["shared_hi_ips"] < SERVE_MIN_SPEEDUP * legs["unshared_hi_ips"]:
            problems.append(
                f"shared throughput {legs['shared_hi_ips']}/s is under "
                f"{SERVE_MIN_SPEEDUP}x unshared {legs['unshared_hi_ips']}/s "
                "at the high duplicate count")
        if 2 * legs["shared_hi_ips"] < legs["shared_lo_ips"]:
            problems.append(
                f"shared throughput fell from {legs['shared_lo_ips']}/s to "
                f"{legs['shared_hi_ips']}/s across the duplicate sweep — "
                "cost growth is no longer sub-linear in duplicate count")
        if problems:
            for p in problems:
                failures.append(f"servegate.{workload}: {p}")
            rows.append((workload, legs, "REGRESSED"))
        else:
            rows.append((workload, legs, "ok"))
    return rows, failures


def load_baseline(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    benches = doc.get("benchmarks")
    if not isinstance(benches, dict) or not benches:
        sys.exit(f"bench_gate: malformed baseline {path}")
    return doc


def fmt_rate(value):
    if value >= 1e6:
        return f"{value / 1e6:.2f}M/s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k/s"
    return f"{value:.1f}/s"


def cmd_check(args):
    run = load_run(args.json_dir)
    baseline = load_baseline(args.baseline)
    tolerance = args.tolerance
    rows = []
    failures = []
    for name in sorted(baseline["benchmarks"]):
        base = float(baseline["benchmarks"][name])
        if name not in run:
            failures.append(f"{name}: present in baseline but not in run")
            rows.append((name, base, None, None, "MISSING"))
            continue
        now = run[name]
        delta = (now - base) / base
        status = "ok"
        if delta < -tolerance:
            status = "REGRESSED"
            failures.append(
                f"{name}: {fmt_rate(now)} vs baseline {fmt_rate(base)} "
                f"({delta:+.1%}, tolerance -{tolerance:.0%})")
        rows.append((name, base, now, delta, status))
    for name in sorted(set(run) - set(baseline["benchmarks"])):
        rows.append((name, None, run[name], None, "new"))

    print(f"### Bench gate (tolerance -{tolerance:.0%})\n")
    print("| benchmark | baseline | current | delta | status |")
    print("|---|---:|---:|---:|---|")
    for name, base, now, delta, status in rows:
        base_s = fmt_rate(base) if base is not None else "—"
        now_s = fmt_rate(now) if now is not None else "—"
        delta_s = f"{delta:+.1%}" if delta is not None else "—"
        mark = "❌ " if status in ("REGRESSED", "MISSING") else ""
        print(f"| `{name}` | {base_s} | {now_s} | {delta_s} | {mark}{status} |")
    print()

    state_rows, state_failures = check_state_gauges(
        load_state_gauges(args.json_dir))
    if state_rows:
        failures.extend(state_failures)
        print("### Retained-state gate (peak tuples, NFA vs history)\n")
        print("| workload | history | nfa | status |")
        print("|---|---:|---:|---|")
        for workload, history, nfa, status in state_rows:
            history_s = str(history) if history is not None else "—"
            nfa_s = str(nfa) if nfa is not None else "—"
            mark = "❌ " if status != "ok" else ""
            print(f"| `{workload}` | {history_s} | {nfa_s} | {mark}{status} |")
        print()

    serve_rows, serve_failures = check_serve_gauges(
        load_serve_gauges(args.json_dir))
    if serve_rows:
        failures.extend(serve_failures)
        print("### Serve-sharing gate (shared vs unshared pipelines)\n")
        print("| workload | shared lo→hi | unshared hi | pipelines "
              "(shared/unshared) | status |")
        print("|---|---:|---:|---:|---|")
        for workload, legs, status in serve_rows:
            def leg(name):
                return (fmt_rate(float(legs[name]))
                        if name in legs else "—")
            pipes = (f"{legs['shared_hi_pipelines']}/"
                     f"{legs['unshared_hi_pipelines']}"
                     if "shared_hi_pipelines" in legs and
                     "unshared_hi_pipelines" in legs else "—")
            mark = "❌ " if status != "ok" else ""
            print(f"| `{workload}` | {leg('shared_lo_ips')} → "
                  f"{leg('shared_hi_ips')} | {leg('unshared_hi_ips')} | "
                  f"{pipes} | {mark}{status} |")
        print()

    if failures:
        print("Regressions:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"All {sum(1 for r in rows if r[4] == 'ok')} gated benchmarks "
          f"within tolerance; {sum(1 for r in state_rows if r[3] == 'ok')} "
          "retained-state pairs hold; "
          f"{sum(1 for r in serve_rows if r[2] == 'ok')} serve-sharing "
          "workloads hold.")
    return 0


def cmd_refresh(args):
    run = load_run(args.json_dir)
    doc = {
        "comment": (
            "Gated throughput baselines (items_per_second). Refresh with "
            "tools/bench_gate.py refresh on the CI runner class; see the "
            "module docstring for the exact commands."),
        "tolerance_default": args.tolerance,
        "benchmarks": {name: run[name] for name in sorted(run)},
    }
    with open(args.baseline, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_gate: wrote {len(run)} baselines to {args.baseline}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("mode", choices=["check", "refresh"])
    parser.add_argument("--json-dir", required=True,
                        help="directory holding BENCH_*.json from a run")
    parser.add_argument("--baseline", default=os.path.normpath(DEFAULT_BASELINE),
                        help="baseline JSON path (default bench/baseline.json)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("ESLEV_BENCH_GATE_TOLERANCE", "0.15")),
        help="allowed fractional throughput drop before failing "
        "(default 0.15; env ESLEV_BENCH_GATE_TOLERANCE)")
    args = parser.parse_args()
    if not (0.0 < args.tolerance < 1.0):
        sys.exit("bench_gate: --tolerance must be in (0, 1)")
    if args.mode == "check":
        sys.exit(cmd_check(args))
    sys.exit(cmd_refresh(args))


if __name__ == "__main__":
    main()
