// eslev_lint: run the static query analyzer over SQL script files.
//
//   eslev_lint [--cost] [--json[=PATH]] file.sql [file2.sql ...]
//
// Each file is executed as a script first (so DDL registers streams,
// tables and continuous queries for later statements to reference),
// then linted as a whole. Human-readable findings go to stdout; with
// --json the machine-readable `EXPLAIN LINT` shape is written per file
// (to stdout, or to PATH/<stem>.lint.json when PATH is given — the form
// CI archives next to the BENCH_*.json artifacts).
//
// --cost additionally runs the static cost & state-bound analyzer
// (`EXPLAIN COST`, DESIGN.md §16) over every query statement: a
// one-line summary per query in human mode, or a JSON array of
// QueryCostReport objects (to stdout, or PATH/<stem>.cost.json).
//
// Exit status: 0 = no error-severity findings, 1 = at least one error,
// 2 = a file could not be read/parsed/executed (or cost analysis
// crashed). Parse/execution failures take precedence over lint errors.

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Every exit-2 path reports through here so the offending file is
/// always named, in one greppable shape.
int Fail(const std::string& path, const std::string& reason) {
  std::fprintf(stderr, "eslev_lint: %s: %s\n", path.c_str(), reason.c_str());
  return 2;
}

std::string Stem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool cost = false;
  std::string json_dir;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_dir = arg.substr(7);
    } else if (arg == "--cost") {
      cost = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: eslev_lint [--cost] [--json[=DIR]] file.sql ...\n"
          "\n"
          "  --json       emit EXPLAIN LINT JSON per file to stdout\n"
          "  --json=DIR   write DIR/<stem>.lint.json per file instead\n"
          "  --cost       also run the EXPLAIN COST analyzer: per-query\n"
          "               cost & state-bound summary (human mode) or a\n"
          "               JSON report array (stdout, or\n"
          "               DIR/<stem>.cost.json with --json=DIR)\n"
          "\n"
          "exit status:\n"
          "  0  no error-severity lint findings\n"
          "  1  at least one error-severity lint finding\n"
          "  2  a file could not be read, parsed or executed, or the\n"
          "     analyzer itself failed (takes precedence over 1)\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: eslev_lint [--cost] [--json[=DIR]] file.sql ...\n");
    return 2;
  }

  size_t total_errors = 0;
  for (const std::string& path : files) {
    std::string sql;
    errno = 0;
    if (!ReadFile(path, &sql)) {
      const std::string detail =
          errno != 0 ? std::strerror(errno) : "unreadable";
      return Fail(path, "cannot read file (" + detail + ")");
    }
    // Execute first so every statement lints against the catalog state
    // it would actually run under.
    eslev::Engine engine;
    if (eslev::Status status = engine.ExecuteScript(sql); !status.ok()) {
      return Fail(path, status.ToString());
    }
    eslev::Result<std::vector<eslev::Diagnostic>> diags = engine.Lint(sql);
    if (!diags.ok()) {
      return Fail(path, diags.status().ToString());
    }
    total_errors += eslev::CountSeverity(*diags, eslev::Severity::kError);
    if (json) {
      const std::string text = eslev::DiagnosticsToJson(*diags);
      if (json_dir.empty()) {
        std::printf("%s\n", text.c_str());
      } else {
        const std::string out_path =
            json_dir + "/" + Stem(path) + ".lint.json";
        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        if (!out) {
          return Fail(path, "cannot write " + out_path);
        }
        out << text << "\n";
        std::printf("%s: %zu findings -> %s\n", path.c_str(), diags->size(),
                    out_path.c_str());
      }
    } else {
      std::printf("%s: %zu findings\n", path.c_str(), diags->size());
      for (const eslev::Diagnostic& d : *diags) {
        std::printf("  %s\n", d.ToString().c_str());
      }
    }
    if (cost) {
      eslev::Result<std::vector<eslev::QueryCostReport>> reports =
          engine.AnalyzeCost(sql);
      if (!reports.ok()) {
        return Fail(path, "cost analysis failed: " +
                              reports.status().ToString());
      }
      if (json) {
        std::string text = "[";
        for (size_t i = 0; i < reports->size(); ++i) {
          if (i > 0) text += ",";
          text += (*reports)[i].ToJson();
        }
        text += "]";
        if (json_dir.empty()) {
          std::printf("%s\n", text.c_str());
        } else {
          const std::string out_path =
              json_dir + "/" + Stem(path) + ".cost.json";
          std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
          if (!out) {
            return Fail(path, "cannot write " + out_path);
          }
          out << text << "\n";
          std::printf("%s: %zu cost reports -> %s\n", path.c_str(),
                      reports->size(), out_path.c_str());
        }
      } else {
        for (const eslev::QueryCostReport& r : *reports) {
          const std::string state =
              r.state_bounded
                  ? eslev::FormatCostNumber(r.total_state_tuples) + " tuples"
                  : "unbounded +" +
                        eslev::FormatCostNumber(
                            r.total_state_growth_per_sec) +
                        "/s";
          std::printf("  cost: cpu=%s/s state=%s sharding=%s | %.48s\n",
                      eslev::FormatCostNumber(r.total_cpu_cost).c_str(),
                      state.c_str(), r.partitioning.c_str(),
                      r.statement.c_str());
        }
      }
    }
  }
  return total_errors > 0 ? 1 : 0;
}
