#!/usr/bin/env python3
"""End-to-end test for the eslev_lint CLI exit-code contract.

Usage: lint_cli_test.py /path/to/eslev_lint

Covers the three documented exit codes (eslev_lint --help):
  0  no error-severity lint findings
  1  at least one error-severity lint finding
  2  a file could not be read, parsed or executed — and the message
     must name the offending file as `eslev_lint: <path>: <reason>`
     so multi-file invocations are debuggable from stderr alone.
"""

import os
import subprocess
import sys
import tempfile

DDL = "CREATE STREAM R1(readerid, tagid, tagtime);\n" \
      "CREATE STREAM R2(readerid, tagid, tagtime);\n"

# Windowed SEQ: bounded retention, lints clean.
CLEAN_SQL = DDL + (
    "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) OVER "
    "[5 SECONDS PRECEDING R2] AND R1.tagid = R2.tagid;\n")

# Unrestricted SEQ without a window: unbounded-retention, error severity.
ERROR_SQL = DDL + (
    "SELECT R1.tagid FROM R1, R2 WHERE SEQ(R1, R2) "
    "AND R1.tagid = R2.tagid;\n")

MALFORMED_SQL = "SELECT FROM WHERE;\n"


def run(lint, *argv):
    return subprocess.run([lint, *argv], capture_output=True, text=True)


def expect(ok, what, proc=None):
    if ok:
        print(f"ok: {what}")
        return 0
    print(f"FAIL: {what}", file=sys.stderr)
    if proc is not None:
        print(f"  exit={proc.returncode}", file=sys.stderr)
        print(f"  stdout={proc.stdout!r}", file=sys.stderr)
        print(f"  stderr={proc.stderr!r}", file=sys.stderr)
    return 1


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: lint_cli_test.py /path/to/eslev_lint")
    lint = sys.argv[1]
    failures = 0
    with tempfile.TemporaryDirectory(prefix="eslev_lint_cli_") as tmp:
        clean = os.path.join(tmp, "clean.sql")
        errors = os.path.join(tmp, "errors.sql")
        malformed = os.path.join(tmp, "malformed.sql")
        missing = os.path.join(tmp, "does_not_exist.sql")
        with open(clean, "w", encoding="utf-8") as f:
            f.write(CLEAN_SQL)
        with open(errors, "w", encoding="utf-8") as f:
            f.write(ERROR_SQL)
        with open(malformed, "w", encoding="utf-8") as f:
            f.write(MALFORMED_SQL)

        # Exit 0: clean script, findings may exist but none error-level.
        proc = run(lint, clean)
        failures += expect(proc.returncode == 0,
                           "clean script exits 0", proc)

        # Exit 1: error-severity finding (unbounded-retention).
        proc = run(lint, errors)
        failures += expect(proc.returncode == 1,
                           "error-severity finding exits 1", proc)
        failures += expect("unbounded-retention" in proc.stdout,
                           "error finding is reported on stdout", proc)

        # Exit 2: unreadable file — stderr names the file.
        proc = run(lint, missing)
        failures += expect(proc.returncode == 2,
                           "missing file exits 2", proc)
        failures += expect(f"eslev_lint: {missing}: " in proc.stderr,
                           "missing-file message names the file", proc)

        # Exit 2: parse/execution failure — stderr names the file, and
        # it wins over a lint error earlier in the argument list.
        proc = run(lint, errors, malformed)
        failures += expect(proc.returncode == 2,
                           "malformed script exits 2 (over lint errors)",
                           proc)
        failures += expect(f"eslev_lint: {malformed}: " in proc.stderr,
                           "parse-failure message names the file", proc)
        failures += expect(missing not in proc.stderr,
                           "only the offending file is named", proc)

        # Exit 2: no input files at all.
        proc = run(lint)
        failures += expect(proc.returncode == 2, "no-args usage exits 2",
                           proc)

    if failures:
        sys.exit(f"lint_cli_test: {failures} check(s) failed")
    print("lint_cli_test: all exit-code checks passed")


if __name__ == "__main__":
    main()
