#!/usr/bin/env python3
"""Schema-drift gate over the lint/cost JSON artifacts CI archives.

The machine-readable shapes of `eslev_lint --json` (one object per
script, DiagnosticsToJson) and `eslev_lint --cost --json` (an array of
EXPLAIN COST reports per script) are contracts: dashboards parse them,
and tests/analysis/json_schema_test.cc pins them at the unit level.
This script re-checks the *artifacts* CI actually uploads, so a drift
that only shows up on real corpus queries (a conditional field, a
scientific-notation float, a renamed verdict) still fails the build.

Usage:
  python3 tools/lint_schema_check.py --json-dir bench-json

Exits 1 listing every violation; exits 2 when the directory holds no
artifacts at all (an upstream sweep silently produced nothing).
"""

import argparse
import json
import pathlib
import re
import sys

# Key sequences mirror the goldens in tests/analysis/json_schema_test.cc.
LINT_TOP_KEYS = ["diagnostics", "errors", "warnings"]
DIAG_KEYS = ["severity", "rule", "message", "line", "column", "offset", "length"]
SEVERITIES = {"error", "warning"}

COST_REPORT_KEYS = [
    "cost_model_version", "statement", "backend",
    "operators", "totals", "sharding",
]
COST_OP_KEYS = ["op", "label", "in_rate", "out_rate", "cpu_cost",
                "state", "state_gauges"]
COST_STATE_KEYS = ["bounded", "tuples", "growth_per_sec", "formula"]
COST_TOTALS_KEYS = ["cpu_cost", "state_bounded", "state_tuples",
                    "state_growth_per_sec"]
COST_SHARDING_KEYS = ["verdict", "assumed_shards", "single_shard_cost",
                      "per_shard_cost", "fallback_delta"]
COST_MODEL_VERSION = 1
VERDICTS = {"partitionable", "single-shard", "undecided"}

# FormatCostNumber never emits scientific notation, NaN or infinities;
# a digit-e-sign-digit sequence anywhere in the raw text is drift.
SCIENTIFIC = re.compile(r"\d[eE][+-]?\d")


def check_keys(got: dict, want: list, where: str, errors: list) -> bool:
    """Exact ordered key match (json.loads preserves document order)."""
    if list(got.keys()) != want:
        errors.append(f"{where}: keys {list(got.keys())} != {want}")
        return False
    return True


def check_lint_file(path: pathlib.Path, errors: list) -> None:
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict):
        errors.append(f"{path.name}: top level is not an object")
        return
    check_keys(doc, LINT_TOP_KEYS, path.name, errors)
    for i, diag in enumerate(doc.get("diagnostics", [])):
        where = f"{path.name} diagnostics[{i}]"
        keys = list(diag.keys())
        # `hint` is the only optional field and always trails.
        if keys != DIAG_KEYS and keys != DIAG_KEYS + ["hint"]:
            errors.append(f"{where}: keys {keys} != {DIAG_KEYS} (+hint?)")
        if diag.get("severity") not in SEVERITIES:
            errors.append(f"{where}: severity {diag.get('severity')!r}")


def check_cost_file(path: pathlib.Path, errors: list) -> None:
    text = path.read_text()
    if SCIENTIFIC.search(text) or "nan" in text or "inf" in text:
        errors.append(f"{path.name}: scientific notation or non-finite number")
    doc = json.loads(text)
    if not isinstance(doc, list) or not doc:
        errors.append(f"{path.name}: expected a non-empty array of reports")
        return
    for i, report in enumerate(doc):
        where = f"{path.name} report[{i}]"
        if not check_keys(report, COST_REPORT_KEYS, where, errors):
            continue
        if report["cost_model_version"] != COST_MODEL_VERSION:
            errors.append(
                f"{where}: cost_model_version {report['cost_model_version']}"
                f" != {COST_MODEL_VERSION} (schema change without a gate"
                " update?)")
        if not report["operators"]:
            errors.append(f"{where}: empty operators list")
        for k, op in enumerate(report["operators"]):
            opw = f"{where} operators[{k}]"
            if check_keys(op, COST_OP_KEYS, opw, errors):
                check_keys(op["state"], COST_STATE_KEYS, opw + ".state",
                           errors)
        check_keys(report["totals"], COST_TOTALS_KEYS, where + ".totals",
                   errors)
        if check_keys(report["sharding"], COST_SHARDING_KEYS,
                      where + ".sharding", errors):
            if report["sharding"]["verdict"] not in VERDICTS:
                errors.append(
                    f"{where}: verdict {report['sharding']['verdict']!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json-dir", default="bench-json",
                        help="directory holding *.lint.json / *.cost.json")
    args = parser.parse_args()

    root = pathlib.Path(args.json_dir)
    lint_files = sorted(root.glob("*.lint.json"))
    cost_files = sorted(root.glob("*.cost.json"))
    if not lint_files and not cost_files:
        print(f"lint_schema_check: no artifacts under {root}", file=sys.stderr)
        return 2

    errors: list = []
    for path in lint_files:
        try:
            check_lint_file(path, errors)
        except json.JSONDecodeError as e:
            errors.append(f"{path.name}: invalid JSON ({e})")
    for path in cost_files:
        try:
            check_cost_file(path, errors)
        except json.JSONDecodeError as e:
            errors.append(f"{path.name}: invalid JSON ({e})")

    for err in errors:
        print(f"SCHEMA DRIFT: {err}")
    print(f"lint_schema_check: {len(lint_files)} lint + {len(cost_files)} "
          f"cost artifacts, {len(errors)} violations")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
