#!/usr/bin/env python3
"""Fail if build or test artifacts are tracked in git.

CTest run in-source drops Testing/Temporary/, CMake configure drops
CMakeCache.txt/CMakeFiles/, benches drop BENCH_*.json — none of which
belong in history (PR 10 evicted a committed Testing/ tree). The check
runs `git ls-files` and fails on anything matching the artifact
patterns below, printing each offending path. Run it from anywhere
inside the repository; CI runs it on every push.
"""

import fnmatch
import subprocess
import sys

# fnmatch patterns matched against full repo-relative paths ('/' kept
# literal, so 'Testing/*' only hits the top-level Testing tree).
ARTIFACT_PATTERNS = [
    ("Testing/*", "in-source CTest droppings"),
    ("*/Testing/Temporary/*", "in-source CTest droppings"),
    ("build/*", "build tree"),
    ("build-*/*", "build tree"),
    ("cmake-build-*/*", "build tree"),
    ("CMakeCache.txt", "CMake configure output"),
    ("*/CMakeCache.txt", "CMake configure output"),
    ("CMakeFiles/*", "CMake configure output"),
    ("*/CMakeFiles/*", "CMake configure output"),
    ("*.o", "object file"),
    ("*.obj", "object file"),
    ("*.a", "static library"),
    ("*.so", "shared library"),
    ("BENCH_*.json", "bench output archive"),
    ("*/BENCH_*.json", "bench output archive"),
    ("compile_commands.json", "tooling droppings"),
]


def main():
    files = subprocess.run(
        ["git", "ls-files"], check=True, capture_output=True,
        text=True).stdout.splitlines()
    offenders = []
    for path in files:
        for pattern, why in ARTIFACT_PATTERNS:
            if fnmatch.fnmatchcase(path, pattern):
                offenders.append((path, why))
                break
    if offenders:
        print("tree_hygiene_check: build/test artifacts are tracked in git:",
              file=sys.stderr)
        for path, why in offenders:
            print(f"  {path} ({why})", file=sys.stderr)
        print("Remove them with `git rm -r --cached <path>` and make sure "
              ".gitignore covers the pattern.", file=sys.stderr)
        return 1
    print(f"tree_hygiene_check: {len(files)} tracked files clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
